"""Unit tests for the distance functions."""

import math

import pytest

from repro.core.cluster.distance import (
    chebyshev,
    cosine,
    euclidean,
    get_distance,
    manhattan,
)


class TestEuclidean:
    def test_classic_345(self):
        assert euclidean((0, 0), (3, 4)) == 5.0

    def test_identical_points(self):
        assert euclidean((1, 2, 3), (1, 2, 3)) == 0.0

    def test_one_dimension(self):
        assert euclidean((10,), (4,)) == 6.0

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            euclidean((1, 2), (1,))


class TestOtherDistances:
    def test_manhattan(self):
        assert manhattan((0, 0), (3, 4)) == 7.0

    def test_chebyshev(self):
        assert chebyshev((0, 0), (3, 4)) == 4.0

    def test_cosine_orthogonal(self):
        assert cosine((1, 0), (0, 1)) == pytest.approx(1.0)

    def test_cosine_parallel(self):
        assert cosine((1, 1), (2, 2)) == pytest.approx(0.0)

    def test_cosine_zero_vector(self):
        assert cosine((0, 0), (1, 1)) == 1.0


class TestRegistry:
    def test_ed_code_is_euclidean(self):
        assert get_distance("ed") is euclidean

    def test_codes_are_case_insensitive(self):
        assert get_distance("ED") is euclidean

    def test_manhattan_codes(self):
        assert get_distance("md") is manhattan
        assert get_distance("l1") is manhattan

    def test_unknown_code_raises(self):
        with pytest.raises(ValueError):
            get_distance("hamming")
