"""Unit tests for the k-means clustering ablation."""

import pytest

from repro.core.cluster.dbscan import NOISE
from repro.core.cluster.kmeans import KMeans, kmeans


class TestKMeans:
    def test_two_well_separated_blobs(self):
        points = [(0.0,), (1.0,), (2.0,), (100.0,), (101.0,), (102.0,)]
        result = kmeans(points, n_clusters=2, seed=3)
        assert len(set(result.labels[:3])) == 1
        assert len(set(result.labels[3:])) == 1
        assert result.labels[0] != result.labels[3]

    def test_empty_input(self):
        result = kmeans([], n_clusters=2)
        assert result.labels == []

    def test_fewer_points_than_clusters(self):
        result = kmeans([(1.0,), (2.0,)], n_clusters=5)
        assert len(result.labels) == 2

    def test_keys_are_attached(self):
        result = kmeans([(0.0,), (100.0,)], n_clusters=2, keys=["a", "b"])
        assert set(result.keys) == {"a", "b"}

    def test_outlier_labelling(self):
        points = [(0.0,), (1.0,), (2.0,), (1.5,), (0.5,), (500.0,)]
        result = KMeans(n_clusters=1, outlier_factor=3.0).fit(points)
        assert result.labels[-1] == NOISE

    def test_deterministic_given_seed(self):
        points = [(float(i),) for i in range(20)]
        first = KMeans(n_clusters=3, seed=11).fit(points)
        second = KMeans(n_clusters=3, seed=11).fit(points)
        assert first.labels == second.labels

    def test_invalid_cluster_count_raises(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=0)

    def test_mismatched_keys_raises(self):
        with pytest.raises(ValueError):
            kmeans([(0.0,)], n_clusters=1, keys=["a", "b"])
