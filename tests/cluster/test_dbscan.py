"""Unit tests for the from-scratch DBSCAN implementation."""

import pytest

from repro.core.cluster.dbscan import DBSCAN, NOISE, dbscan
from repro.core.cluster.distance import manhattan


def _two_blobs_and_outlier():
    """Two dense 1-D blobs plus one far-away point."""
    blob_a = [(float(value),) for value in (1, 2, 3, 4, 5)]
    blob_b = [(float(value),) for value in (100, 101, 102, 103, 104)]
    outlier = [(1000.0,)]
    return blob_a + blob_b + outlier


class TestDBSCANClustering:
    def test_finds_two_clusters(self):
        result = dbscan(_two_blobs_and_outlier(), eps=2.0, min_pts=3)
        assert result.n_clusters == 2

    def test_far_point_is_noise(self):
        result = dbscan(_two_blobs_and_outlier(), eps=2.0, min_pts=3)
        assert result.labels[-1] == NOISE

    def test_cluster_members_share_label(self):
        result = dbscan(_two_blobs_and_outlier(), eps=2.0, min_pts=3)
        assert len(set(result.labels[:5])) == 1
        assert len(set(result.labels[5:10])) == 1
        assert result.labels[0] != result.labels[5]

    def test_all_noise_when_min_pts_too_high(self):
        result = dbscan([(0.0,), (10.0,), (20.0,)], eps=1.0, min_pts=2)
        assert result.labels == [NOISE, NOISE, NOISE]
        assert result.n_clusters == 0

    def test_single_dense_cluster(self):
        points = [(float(value),) for value in range(10)]
        result = dbscan(points, eps=1.5, min_pts=2)
        assert result.n_clusters == 1
        assert NOISE not in result.labels

    def test_empty_input(self):
        result = dbscan([], eps=1.0, min_pts=2)
        assert result.labels == []
        assert result.n_clusters == 0

    def test_border_point_joins_cluster(self):
        # 5.5 is within eps of the last core point but has few neighbours.
        points = [(1.0,), (2.0,), (3.0,), (4.0,), (5.5,)]
        result = dbscan(points, eps=1.6, min_pts=3)
        assert result.labels[-1] == result.labels[0]

    def test_custom_distance(self):
        points = [(0.0, 0.0), (1.0, 1.0), (0.5, 0.5), (50.0, 50.0)]
        result = DBSCAN(eps=2.5, min_pts=2, distance=manhattan).fit(points)
        assert result.labels[-1] == NOISE

    def test_two_dimensional_points(self):
        points = [(0, 0), (0, 1), (1, 0), (1, 1), (30, 30)]
        result = dbscan(points, eps=1.5, min_pts=3)
        assert result.labels[-1] == NOISE
        assert result.n_clusters == 1


class TestClusterResult:
    def test_keys_default_to_indices(self):
        result = dbscan([(0.0,), (0.5,), (100.0,)], eps=1.0, min_pts=2)
        assert result.keys == [0, 1, 2]

    def test_is_outlier_by_key(self):
        result = dbscan([(0.0,), (0.5,), (100.0,)], eps=1.0, min_pts=2,
                        keys=["a", "b", "evil"])
        assert result.is_outlier("evil")
        assert not result.is_outlier("a")

    def test_is_outlier_unknown_key_is_false(self):
        result = dbscan([(0.0,)], eps=1.0, min_pts=1, keys=["a"])
        assert not result.is_outlier("zzz")

    def test_label_of(self):
        result = dbscan([(0.0,), (0.5,), (100.0,)], eps=1.0, min_pts=2,
                        keys=["a", "b", "evil"])
        assert result.label_of("a") == result.label_of("b")
        assert result.label_of("evil") == NOISE
        assert result.label_of("missing") is None

    def test_outlier_indices(self):
        result = dbscan([(0.0,), (0.5,), (100.0,)], eps=1.0, min_pts=2)
        assert result.outlier_indices == [2]

    def test_mismatched_keys_length_raises(self):
        with pytest.raises(ValueError):
            dbscan([(0.0,)], eps=1.0, min_pts=1, keys=["a", "b"])


class TestParameterValidation:
    def test_eps_must_be_positive(self):
        with pytest.raises(ValueError):
            DBSCAN(eps=0, min_pts=1)

    def test_min_pts_must_be_positive(self):
        with pytest.raises(ValueError):
            DBSCAN(eps=1.0, min_pts=0)
