"""Unit tests for the SAQL tokenizer."""

import pytest

from repro.core.errors import SAQLParseError
from repro.core.language.tokens import Token, TokenType, tokenize


def kinds(text):
    return [token.type for token in tokenize(text)][:-1]  # drop EOF


def values(text):
    return [token.value for token in tokenize(text)][:-1]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_identifiers_and_numbers(self):
        assert kinds("proc p1 10") == [TokenType.IDENT, TokenType.IDENT,
                                       TokenType.NUMBER]

    def test_float_number(self):
        tokens = tokenize("3.14")
        assert tokens[0].type is TokenType.NUMBER
        assert tokens[0].value == "3.14"

    def test_string_literal(self):
        tokens = tokenize('"%cmd.exe"')
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "%cmd.exe"

    def test_string_with_escape(self):
        tokens = tokenize(r'"a\"b"')
        assert tokens[0].value == 'a"b'

    def test_unterminated_string_raises(self):
        with pytest.raises(SAQLParseError):
            tokenize('"no closing quote')

    def test_unexpected_character_raises(self):
        with pytest.raises(SAQLParseError):
            tokenize("proc @ file")


class TestOperators:
    def test_two_char_operators(self):
        assert kinds("|| && -> := == != <= >=") == [
            TokenType.OROR, TokenType.ANDAND, TokenType.ARROW,
            TokenType.ASSIGN, TokenType.EQEQ, TokenType.NEQ,
            TokenType.LTE, TokenType.GTE]

    def test_single_char_operators(self):
        assert kinds("( ) [ ] { } , . # | ! = < > + - * / %") == [
            TokenType.LPAREN, TokenType.RPAREN, TokenType.LBRACKET,
            TokenType.RBRACKET, TokenType.LBRACE, TokenType.RBRACE,
            TokenType.COMMA, TokenType.DOT, TokenType.HASH, TokenType.PIPE,
            TokenType.NOT, TokenType.EQ, TokenType.LT, TokenType.GT,
            TokenType.PLUS, TokenType.MINUS, TokenType.STAR, TokenType.SLASH,
            TokenType.PERCENT]

    def test_pipe_vs_oror(self):
        assert kinds("| ||") == [TokenType.PIPE, TokenType.OROR]


class TestCommentsAndPositions:
    def test_comments_are_skipped(self):
        assert values("proc // a comment\n p") == ["proc", "p"]

    def test_comment_at_end_of_input(self):
        assert values("proc // trailing") == ["proc"]

    def test_line_and_column_tracking(self):
        tokens = tokenize("proc\n  p1")
        assert tokens[0].line == 1 and tokens[0].column == 1
        assert tokens[1].line == 2 and tokens[1].column == 3


class TestRealQueryFragments:
    def test_event_pattern_line(self):
        text = 'proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1'
        assert values(text) == ["proc", "p1", "[", "%cmd.exe", "]", "start",
                                "proc", "p2", "[", "%osql.exe", "]", "as",
                                "evt1"]

    def test_window_spec(self):
        assert values("#time(10 min)") == ["#", "time", "(", "10", "min", ")"]

    def test_sizeof_expression(self):
        assert kinds("|ss.set_proc diff a| > 0") == [
            TokenType.PIPE, TokenType.IDENT, TokenType.DOT, TokenType.IDENT,
            TokenType.IDENT, TokenType.IDENT, TokenType.PIPE, TokenType.GT,
            TokenType.NUMBER]
