"""Unit tests for the SAQL recursive-descent parser."""

import pytest

from repro.core.errors import SAQLParseError
from repro.core.language import ast
from repro.core.language.parser import parse

QUERY1 = '''
agentid = "db-server"
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
proc p4["%sbblv.exe"] read file f1 as evt3
proc p4 read || write ip i1[dstip="203.0.113.129"] as evt4
with evt1 -> evt2 -> evt3 -> evt4
return distinct p1, p2, p3, f1, p4, i1
'''

QUERY2 = '''
proc p write ip i as evt #time(10 min)
state[3] ss {
  avg_amount := avg(evt.amount)
} group by p
alert (ss[0].avg_amount > (ss[0].avg_amount + ss[1].avg_amount + ss[2].avg_amount) / 3) && (ss[0].avg_amount > 10000)
return p, ss[0].avg_amount, ss[1].avg_amount, ss[2].avg_amount
'''

QUERY3 = '''
proc p1["%apache.exe"] start proc p2 as evt #time(10 s)
state ss {
  set_proc := set(p2.exe_name)
} group by p1
invariant[10][offline] {
  a := empty_set
  a = a union ss.set_proc
}
alert |ss.set_proc diff a| > 0
return p1, ss.set_proc
'''

QUERY4 = '''
agentid = "db-server"
proc p["%sqlservr.exe"] read || write ip i as evt #time(10 min)
state ss {
  amt := sum(evt.amount)
} group by i.dstip
cluster(points=all(ss.amt), distance="ed", method="DBSCAN(100000, 5)")
alert cluster.outlier && ss.amt > 1000000
return i.dstip, ss.amt
'''


class TestRuleQueryParsing:
    def test_global_constraint(self):
        query = parse(QUERY1)
        assert len(query.global_constraints) == 1
        constraint = query.global_constraints[0]
        assert constraint.attr == "agentid"
        assert constraint.value == "db-server"

    def test_pattern_count_and_aliases(self):
        query = parse(QUERY1)
        assert [pattern.alias for pattern in query.patterns] == [
            "evt1", "evt2", "evt3", "evt4"]

    def test_entity_types(self):
        query = parse(QUERY1)
        assert query.patterns[1].object.entity_type == "file"
        assert query.patterns[3].object.entity_type == "ip"

    def test_default_attribute_constraint_uses_like(self):
        query = parse(QUERY1)
        constraint = query.patterns[0].subject.constraints[0]
        assert constraint.attr is None
        assert constraint.op == "like"
        assert constraint.value == "%cmd.exe"

    def test_named_attribute_constraint(self):
        query = parse(QUERY1)
        constraint = query.patterns[3].object.constraints[0]
        assert constraint.attr == "dstip"
        assert constraint.value == "203.0.113.129"

    def test_operation_alternation(self):
        query = parse(QUERY1)
        assert query.patterns[3].operations == ("read", "write")

    def test_temporal_order(self):
        query = parse(QUERY1)
        assert query.temporal_order.aliases == ("evt1", "evt2", "evt3",
                                                "evt4")

    def test_return_distinct(self):
        query = parse(QUERY1)
        assert query.returns.distinct is True
        assert len(query.returns.items) == 6

    def test_model_kind_is_rule(self):
        assert parse(QUERY1).model_kind == "rule"


class TestTimeSeriesQueryParsing:
    def test_window_is_600_seconds(self):
        query = parse(QUERY2)
        assert query.window.kind == "time"
        assert query.window.length == 600.0

    def test_state_history(self):
        query = parse(QUERY2)
        assert query.state.history == 3
        assert query.state.name == "ss"

    def test_state_definition(self):
        definition = parse(QUERY2).state.definitions[0]
        assert definition.name == "avg_amount"
        assert isinstance(definition.expr, ast.FuncCall)
        assert definition.expr.name == "avg"

    def test_group_by(self):
        query = parse(QUERY2)
        assert len(query.state.group_by) == 1
        assert isinstance(query.state.group_by[0], ast.Identifier)

    def test_alert_condition_is_boolean_expression(self):
        query = parse(QUERY2)
        assert isinstance(query.alert.condition, ast.BinaryOp)
        assert query.alert.condition.op == "&&"

    def test_model_kind_is_time_series(self):
        assert parse(QUERY2).model_kind == "time-series"


class TestInvariantQueryParsing:
    def test_window_in_seconds(self):
        assert parse(QUERY3).window.length == 10.0

    def test_invariant_header(self):
        invariant = parse(QUERY3).invariant
        assert invariant.training_windows == 10
        assert invariant.mode == "offline"

    def test_init_and_update_statements(self):
        invariant = parse(QUERY3).invariant
        assert len(invariant.init_statements) == 1
        assert len(invariant.update_statements) == 1
        assert isinstance(invariant.init_statements[0].expr, ast.EmptySet)

    def test_alert_uses_sizeof(self):
        query = parse(QUERY3)
        condition = query.alert.condition
        assert isinstance(condition, ast.BinaryOp)
        assert isinstance(condition.left, ast.SizeOf)

    def test_model_kind_is_invariant(self):
        assert parse(QUERY3).model_kind == "invariant"


class TestOutlierQueryParsing:
    def test_cluster_method_and_args(self):
        cluster = parse(QUERY4).cluster
        assert cluster.method == "DBSCAN"
        assert cluster.method_args == (100000.0, 5.0)
        assert cluster.distance == "ed"

    def test_cluster_points_is_all_call(self):
        cluster = parse(QUERY4).cluster
        assert isinstance(cluster.points, ast.FuncCall)
        assert cluster.points.name == "all"

    def test_group_by_attribute(self):
        query = parse(QUERY4)
        key = query.state.group_by[0]
        assert isinstance(key, ast.AttributeRef)
        assert key.attr == "dstip"

    def test_model_kind_is_outlier(self):
        assert parse(QUERY4).model_kind == "outlier"


class TestWindowSpecs:
    def test_count_window(self):
        query = parse("proc p write file f as evt #count(100)\nreturn p")
        assert query.window.kind == "count"
        assert query.window.length == 100.0

    def test_time_window_with_hop(self):
        query = parse("proc p write file f as evt #time(10 min, 1 min)\n"
                      "return p")
        assert query.window.length == 600.0
        assert query.window.hop == 60.0

    def test_hour_unit(self):
        query = parse("proc p write file f as evt #time(2 h)\nreturn p")
        assert query.window.length == 7200.0

    def test_unknown_unit_raises(self):
        with pytest.raises(SAQLParseError):
            parse("proc p write file f as evt #time(10 fortnight)\nreturn p")

    def test_unknown_window_kind_raises(self):
        with pytest.raises(SAQLParseError):
            parse("proc p write file f as evt #hop(10)\nreturn p")


class TestParserErrors:
    def test_missing_patterns_raises(self):
        with pytest.raises(SAQLParseError):
            parse("return p")

    def test_missing_operation_raises(self):
        with pytest.raises(SAQLParseError):
            parse("proc p file f as evt\nreturn p")

    def test_unclosed_bracket_raises(self):
        with pytest.raises(SAQLParseError):
            parse('proc p["%x" write file f as evt\nreturn p')

    def test_trailing_garbage_raises(self):
        with pytest.raises(SAQLParseError):
            parse("proc p write file f as evt\nreturn p\nbogus trailing")

    def test_error_carries_location(self):
        try:
            parse("proc p write file f as evt\nreturn p ??")
        except SAQLParseError as error:
            assert error.line == 2
        else:  # pragma: no cover
            pytest.fail("expected a parse error")

    def test_auto_alias_when_as_is_omitted(self):
        query = parse("proc p write file f #time(10 s)\n"
                      "state ss { c := count(evt.amount) } group by p\n"
                      "return p")
        assert query.patterns[0].alias == "evt1"

    def test_single_pattern_without_temporal_clause(self):
        query = parse("proc p write file f as e\nreturn p, f")
        assert query.temporal_order is None


class TestExpressionParsing:
    def _alert_expr(self, text):
        return parse(f"proc p write file f as evt #time(10 s)\n"
                     f"state ss {{ v := sum(evt.amount) }} group by p\n"
                     f"alert {text}\nreturn p").alert.condition

    def test_precedence_of_and_over_or(self):
        expr = self._alert_expr("ss.v > 1 || ss.v > 2 && ss.v > 3")
        assert expr.op == "||"
        assert expr.right.op == "&&"

    def test_arithmetic_precedence(self):
        expr = self._alert_expr("ss.v > 1 + 2 * 3")
        assert expr.op == ">"
        assert expr.right.op == "+"
        assert expr.right.right.op == "*"

    def test_parentheses_override(self):
        expr = self._alert_expr("ss.v > (1 + 2) * 3")
        assert expr.right.op == "*"
        assert expr.right.left.op == "+"

    def test_unary_not(self):
        expr = self._alert_expr("!(ss.v > 5)")
        assert isinstance(expr, ast.UnaryOp)
        assert expr.op == "!"

    def test_set_operator(self):
        expr = self._alert_expr("|ss.v union ss.v| > 0")
        assert isinstance(expr.left, ast.SizeOf)
        assert expr.left.operand.op == "union"

    def test_index_and_attribute_chain(self):
        expr = self._alert_expr("ss[0].v > 1")
        left = expr.left
        assert isinstance(left, ast.AttributeRef)
        assert isinstance(left.base, ast.IndexRef)
