"""Unit tests for the semantic analyzer."""

import pytest

from repro.core.errors import SAQLSemanticError
from repro.core.language import parse_query
from repro.core.language.parser import parse
from repro.core.language.analyzer import analyze_query


BASE_STATEFUL = '''
proc p write ip i as evt #time(10 min)
state[2] ss {{
  v := sum(evt.amount)
}} group by p
alert {alert}
return {returns}
'''


class TestSymbolCollection:
    def test_entity_variables_collected(self):
        query = parse_query("proc p write file f as e\nreturn p, f")
        assert set(query.entity_variables) == {"p", "f"}

    def test_pattern_aliases_collected(self):
        query = parse_query("proc p write file f as e\nreturn p")
        assert set(query.pattern_aliases) == {"e"}

    def test_shared_variable_same_type_is_allowed(self):
        query = parse_query(
            "proc a write file f as e1\nproc b read file f as e2\nreturn f")
        assert query.entity_variables["f"].entity_type == "file"

    def test_variable_type_conflict_rejected(self):
        with pytest.raises(SAQLSemanticError):
            parse_query("proc x write file f as e1\n"
                        "proc p read ip x as e2\nreturn p")

    def test_duplicate_alias_rejected(self):
        with pytest.raises(SAQLSemanticError):
            parse_query("proc p write file f as e\n"
                        "proc p read file f as e\nreturn p")


class TestClauseChecks:
    def test_missing_return_rejected(self):
        with pytest.raises(SAQLSemanticError):
            parse_query("proc p write file f as e")

    def test_temporal_order_unknown_alias_rejected(self):
        with pytest.raises(SAQLSemanticError):
            parse_query("proc p write file f as e1\n"
                        "proc p read file f as e2\n"
                        "with e1 -> e9\nreturn p")

    def test_state_requires_window(self):
        with pytest.raises(SAQLSemanticError):
            parse_query("proc p write ip i as evt\n"
                        "state ss { v := sum(evt.amount) } group by p\n"
                        "return p")

    def test_invariant_requires_state(self):
        with pytest.raises(SAQLSemanticError):
            parse_query("proc p write ip i as evt #time(10 s)\n"
                        "invariant[5][offline] { a := empty_set }\n"
                        "return p")

    def test_cluster_requires_state(self):
        with pytest.raises(SAQLSemanticError):
            parse_query('proc p write ip i as evt #time(10 s)\n'
                        'cluster(points=all(i), distance="ed", '
                        'method="DBSCAN(1, 1)")\nreturn p')

    def test_invariant_update_of_undeclared_variable_rejected(self):
        with pytest.raises(SAQLSemanticError):
            parse_query("proc p write ip i as evt #time(10 s)\n"
                        "state ss { v := set(i.dstip) } group by p\n"
                        "invariant[5][offline] {\n"
                        "  a := empty_set\n"
                        "  b = b union ss.v\n"
                        "}\nalert |ss.v diff a| > 0\nreturn p")

    def test_unknown_cluster_method_rejected(self):
        with pytest.raises(SAQLSemanticError):
            parse_query('proc p write ip i as evt #time(10 min)\n'
                        'state ss { v := sum(evt.amount) } group by i.dstip\n'
                        'cluster(points=all(ss.v), distance="ed", '
                        'method="OPTICS(1, 2)")\n'
                        'alert cluster.outlier\nreturn i.dstip')


class TestExpressionChecks:
    def _query(self, alert="ss[0].v > 1", returns="p, ss[0].v"):
        return parse_query(BASE_STATEFUL.format(alert=alert,
                                                returns=returns))

    def test_valid_stateful_query_passes(self):
        query = self._query()
        assert query.state is not None

    def test_unknown_name_in_alert_rejected(self):
        with pytest.raises(SAQLSemanticError):
            self._query(alert="zz.v > 1")

    def test_unknown_name_in_return_rejected(self):
        with pytest.raises(SAQLSemanticError):
            self._query(returns="p, qq")

    def test_unknown_function_rejected(self):
        with pytest.raises(SAQLSemanticError):
            self._query(alert="frobnicate(ss[0].v) > 1")

    def test_aggregation_in_alert_rejected(self):
        with pytest.raises(SAQLSemanticError):
            self._query(alert="avg(evt.amount) > 1")

    def test_history_index_out_of_range_rejected(self):
        with pytest.raises(SAQLSemanticError):
            self._query(alert="ss[2].v > 1")

    def test_history_index_in_range_accepted(self):
        query = self._query(alert="ss[1].v > 1")
        assert query.alert is not None

    def test_duplicate_state_field_rejected(self):
        with pytest.raises(SAQLSemanticError):
            parse_query("proc p write ip i as evt #time(10 s)\n"
                        "state ss { v := sum(evt.amount)\n"
                        "  v := avg(evt.amount) } group by p\n"
                        "alert ss.v > 1\nreturn p")

    def test_group_by_unknown_name_rejected(self):
        with pytest.raises(SAQLSemanticError):
            parse_query("proc p write ip i as evt #time(10 s)\n"
                        "state ss { v := sum(evt.amount) } group by zz\n"
                        "alert ss.v > 1\nreturn p")

    def test_analyze_is_idempotent(self):
        query = parse("proc p write file f as e\nreturn p")
        analyze_query(query)
        analyze_query(query)
        assert set(query.entity_variables) == {"p", "f"}
