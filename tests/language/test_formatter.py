"""Round-trip tests for the query formatter (parse -> format -> parse)."""

import pytest

from repro.core.language import format_query, parse_query
from repro.core.language.formatter import format_expression
from repro.core.language.parser import parse
from repro.queries import DEMO_QUERIES


class TestExpressionFormatting:
    def _expr(self, text):
        query = parse(f"proc p write ip i as evt #time(10 s)\n"
                      f"state ss {{ v := sum(evt.amount) }} group by p\n"
                      f"alert {text}\nreturn p")
        return query.alert.condition

    def test_simple_comparison(self):
        assert format_expression(self._expr("ss.v > 10")) == "ss.v > 10"

    def test_nested_precedence_gets_parentheses(self):
        text = format_expression(self._expr("(ss.v + 1) * 2 > 3"))
        assert "(ss.v + 1) * 2" in text

    def test_sizeof(self):
        assert format_expression(
            self._expr("|ss.v union ss.v| > 0")).startswith("|")

    def test_function_call(self):
        assert format_expression(self._expr("abs(ss.v) > 1")) == \
            "abs(ss.v) > 1"

    def test_string_literal_quoted(self):
        text = format_expression(self._expr('ss.v == "x"'))
        assert '"x"' in text


class TestQueryRoundTrip:
    @pytest.mark.parametrize("name", sorted(DEMO_QUERIES))
    def test_demo_queries_round_trip(self, name):
        original = parse_query(DEMO_QUERIES[name])
        formatted = format_query(original)
        reparsed = parse_query(formatted)
        assert len(reparsed.patterns) == len(original.patterns)
        assert reparsed.model_kind == original.model_kind
        assert (reparsed.returns.distinct == original.returns.distinct)
        # Formatting the reparsed query again is stable.
        assert format_query(reparsed) == formatted

    def test_formatted_text_contains_window(self):
        query = parse_query("proc p write ip i as evt #time(10 min)\n"
                            "state ss { v := sum(evt.amount) } group by p\n"
                            "alert ss.v > 1\nreturn p")
        assert "#time(10 min)" in format_query(query)

    def test_formatted_text_contains_invariant(self):
        text = DEMO_QUERIES["invariant-excel-children"]
        formatted = format_query(parse_query(text))
        assert "invariant[3][offline]" in formatted

    def test_formatted_text_contains_cluster(self):
        text = DEMO_QUERIES["outlier-exfiltration"]
        formatted = format_query(parse_query(text))
        assert 'method="DBSCAN(' in formatted
