"""Tests for the stream replayer."""

import pytest

from repro.events.event import Operation
from repro.storage import EventDatabase, ReplaySpec, StreamReplayer
from repro.storage.replayer_cli import main as replay_main
from tests.conftest import make_event, make_file, make_process


def _database():
    events = []
    for host in ("db-server", "client-01"):
        proc = make_process("app.exe", 1, host=host)
        for index in range(10):
            events.append(make_event(proc, Operation.WRITE,
                                      make_file("/x", host=host),
                                      float(index * 10), agentid=host))
    return EventDatabase(events)


class TestReplayer:
    def test_replays_everything_by_default(self):
        replayer = StreamReplayer(_database())
        assert len(list(replayer)) == 20
        assert replayer.events_replayed == 20

    def test_host_selection(self):
        replayer = StreamReplayer(_database(),
                                  ReplaySpec(hosts=["db-server"]))
        events = list(replayer)
        assert len(events) == 10
        assert all(event.agentid == "db-server" for event in events)

    def test_time_selection(self):
        replayer = StreamReplayer(_database(),
                                  ReplaySpec(start_time=30.0, end_time=60.0))
        assert all(30.0 <= event.timestamp < 60.0 for event in replayer)

    def test_with_spec_builds_new_replayer(self):
        replayer = StreamReplayer(_database())
        narrowed = replayer.with_spec(ReplaySpec(hosts=["client-01"]))
        assert len(list(narrowed)) == 10

    def test_replay_preserves_time_order(self):
        timestamps = [event.timestamp for event in StreamReplayer(_database())]
        assert timestamps == sorted(timestamps)

    def test_throttled_replay_sleeps_between_events(self):
        sleeps = []
        replayer = StreamReplayer(_database(),
                                  ReplaySpec(hosts=["db-server"], speed=10.0),
                                  sleep=sleeps.append)
        list(replayer)
        assert len(sleeps) == 9
        assert all(abs(gap - 1.0) < 1e-9 for gap in sleeps)

    def test_unthrottled_replay_never_sleeps(self):
        sleeps = []
        replayer = StreamReplayer(_database(), ReplaySpec(),
                                  sleep=sleeps.append)
        list(replayer)
        assert sleeps == []


class TestBatchReplay:
    def test_batches_cover_the_selection_in_order(self):
        database = _database()
        replayer = StreamReplayer(database)
        batches = list(replayer.iter_batches(7))
        flattened = [event for batch in batches for event in batch]
        assert flattened == list(StreamReplayer(database))
        assert [len(batch) for batch in batches] == [7, 7, 6]
        assert replayer.events_replayed == 20

    def test_batches_honor_host_and_time_selection(self):
        spec = ReplaySpec(hosts=["db-server"], start_time=30.0)
        replayer = StreamReplayer(_database(), spec)
        events = [event for batch in replayer.iter_batches(4)
                  for event in batch]
        assert events
        assert all(event.agentid == "db-server" for event in events)
        assert all(event.timestamp >= 30.0 for event in events)

    def test_throttled_batches_sleep_once_per_batch(self):
        # 10 db-server events, 10 s apart (t=0..90), at speed 10 in
        # batches of 5: each batch is due when its last event is due, so
        # the sleeps are (40-0)/10 and (90-40)/10 — and the total equals
        # the 9 s that per-event replay sleeps.
        sleeps = []
        replayer = StreamReplayer(_database(),
                                  ReplaySpec(hosts=["db-server"], speed=10.0),
                                  sleep=sleeps.append)
        list(replayer.iter_batches(5))
        assert len(sleeps) == 2
        assert abs(sleeps[0] - 4.0) < 1e-9
        assert abs(sleeps[1] - 5.0) < 1e-9
        assert abs(sum(sleeps) - 9.0) < 1e-9

    def test_unthrottled_batches_never_sleep(self):
        sleeps = []
        replayer = StreamReplayer(_database(), ReplaySpec(),
                                  sleep=sleeps.append)
        list(replayer.iter_batches(3))
        assert sleeps == []


class TestReplayerCli:
    def test_stats_flag(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        _database().save(path)
        assert replay_main([str(path), "--stats"]) == 0
        output = capsys.readouterr().out
        assert "events: 20" in output

    def test_replay_to_output_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _database().save(path)
        out = tmp_path / "slice.jsonl"
        code = replay_main([str(path), "--hosts", "db-server",
                            "--output", str(out)])
        assert code == 0
        assert len(out.read_text().strip().splitlines()) == 10
