"""Checkpoint content verification: checksummed containers.

The store's atomic rename already rules out torn writes through its own
API, but a file that was silently damaged *after* landing (bit rot, a
partial overwrite by a backup tool, a filesystem reordering writes
across a crash) can still parse as JSON.  Format 2 wraps every snapshot
in a checksummed container so such damage fails verification and
``latest`` falls back to the previous checkpoint — same degradation as
a parse error, instead of restoring silently-wrong state.
"""

from __future__ import annotations

import json

import pytest

from repro.storage.checkpoints import (
    CHECKPOINT_FORMAT,
    CheckpointStore,
    CorruptCheckpoint,
    snapshot_checksum,
)
from repro.testing import corrupt_checkpoint, truncate_checkpoint


def snap(n):
    return {"version": 1, "kind": "test", "value": n,
            "nested": {"hosts": [f"host-{i}" for i in range(n)]}}


def test_save_writes_a_checksummed_container(tmp_path):
    store = CheckpointStore(tmp_path)
    path = store.save(snap(3))
    container = json.loads(path.read_text(encoding="utf-8"))
    assert container["format"] == CHECKPOINT_FORMAT
    assert container["checksum"] == snapshot_checksum(snap(3))
    assert container["checksum"].startswith("sha256:")
    assert container["snapshot"] == snap(3)
    assert store.latest() == snap(3)


def test_checksum_is_canonical_over_key_order():
    assert snapshot_checksum({"a": 1, "b": 2}) == \
        snapshot_checksum({"b": 2, "a": 1})
    assert snapshot_checksum({"a": 1}) != snapshot_checksum({"a": 2})


def test_corrupted_content_falls_back_to_previous_checkpoint(tmp_path):
    store = CheckpointStore(tmp_path, keep=3)
    store.save(snap(1))
    newest = store.save(snap(2))
    # Damage the newest file's content without breaking its JSON syntax:
    # only the checksum can catch this.
    corrupt_checkpoint(newest)
    assert json.loads(newest.read_text(encoding="utf-8"))  # still parses
    assert store.latest() == snap(1)


def test_truncated_file_falls_back_to_previous_checkpoint(tmp_path):
    store = CheckpointStore(tmp_path, keep=3)
    store.save(snap(1))
    newest = store.save(snap(2))
    truncate_checkpoint(newest, keep_bytes=40)
    assert store.latest() == snap(1)


def test_all_checkpoints_damaged_means_empty_store(tmp_path):
    store = CheckpointStore(tmp_path, keep=3)
    for n in (1, 2):
        corrupt_checkpoint(store.save(snap(n)))
    assert store.latest() is None


def test_pre_format2_bare_snapshots_still_load(tmp_path):
    store = CheckpointStore(tmp_path)
    path = tmp_path / "checkpoint-00000001.json"
    path.write_text(json.dumps(snap(5)), encoding="utf-8")
    assert store.latest() == snap(5)


def test_verify_rejects_malformed_containers():
    with pytest.raises(CorruptCheckpoint):
        CheckpointStore._verify({"format": 2, "snapshot": "not-a-dict",
                                 "checksum": "sha256:0"})
    with pytest.raises(CorruptCheckpoint):
        CheckpointStore._verify({"format": 2, "snapshot": {"a": 1},
                                 "checksum": "sha256:wrong"})
    with pytest.raises(CorruptCheckpoint):
        CheckpointStore._verify(["not", "an", "object"])
