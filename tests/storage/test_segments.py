"""Crash-injection and parity tests for the segment-based event store.

The store's contract: any sequence of appends, seals, compactions,
process restarts, torn journal tails, lost index sidecars and
mid-seal crashes yields exactly the events a plain sorted list would
hold, in the canonical ``(timestamp, event_id)`` order, for every
host/time/type selection — while narrow selections read only a
correspondingly narrow part of the store.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.snapshot.recovery import ResumeCursor, resume_events
from repro.events.event import Operation
from repro.storage import EventDatabase, ReplaySpec, SegmentStore, StreamReplayer
from repro.storage.segments import DiskSegment, event_key
from repro.testing import tear_journal_tail
from tests.conftest import make_connection, make_event, make_file, make_process

HOSTS = ["web-01", "db-server", "client-01", "build-07"]


def _event(timestamp, host, index):
    """One deterministic event; cycles through the three entity types."""
    process = make_process("worker.exe", 100 + index, host=host)
    if index % 3 == 0:
        obj = make_file(f"/var/log/{index}", host=host)
    elif index % 3 == 1:
        obj = make_connection("203.0.113.9")
    else:
        obj = make_process("child.exe", 200 + index, host=host)
    return make_event(process, Operation.WRITE, obj, float(timestamp),
                      agentid=host, amount=float(index))


def _stream(count, stride=1.0, shuffle_seed=None):
    events = [_event(index * stride, HOSTS[index % len(HOSTS)], index)
              for index in range(count)]
    if shuffle_seed is not None:
        import random
        random.Random(shuffle_seed).shuffle(events)
    return events


def _oracle(events, start=None, end=None, hosts=None, types=None):
    selected = [event for event in sorted(events, key=event_key)
                if (start is None or event.timestamp >= start)
                and (end is None or event.timestamp < end)
                and (hosts is None or event.agentid in hosts)
                and (types is None or event.event_type.value in types)]
    return selected


class TestMemoryStore:
    def test_seals_and_stays_query_equivalent(self):
        store = SegmentStore(segment_events=16)
        events = _stream(100)
        store.append_many(events)
        assert store.stats().sealed_segments >= 5
        assert store.query() == _oracle(events)
        assert store.query(start_time=20.0, end_time=60.0) == _oracle(
            events, start=20.0, end=60.0)

    def test_out_of_order_appends_keep_global_order(self):
        store = SegmentStore(segment_events=8)
        events = _stream(64, shuffle_seed=3)
        for event in events:
            store.append(event)
        keys = [event_key(event) for event in store.scan()]
        assert keys == sorted(keys)
        assert len(store) == 64

    def test_compaction_preserves_contents(self):
        store = SegmentStore(segment_events=8)
        events = _stream(60, shuffle_seed=11)
        store.append_many(events[:30])
        store.append_many(events[30:])
        before = store.query()
        segments_before = store.segment_count
        merges = store.compact()
        assert merges >= 1
        assert store.segment_count < segments_before
        assert store.query() == before

    def test_type_filter_uses_type_index(self):
        store = SegmentStore(segment_events=16)
        events = _stream(90)
        store.append_many(events)
        assert store.query(event_types=["network"]) == _oracle(
            events, types={"network"})


class TestDiskStore:
    def test_reopen_round_trip(self, tmp_path):
        events = _stream(120)
        store = SegmentStore(tmp_path / "db", segment_events=32)
        store.append_many(events)
        store.close()
        reopened = SegmentStore(tmp_path / "db", segment_events=32)
        assert reopened.query() == _oracle(events)
        assert reopened.hosts == sorted(set(HOSTS))

    def test_journal_tail_survives_without_seal(self, tmp_path):
        events = _stream(10)  # below every seal threshold
        store = SegmentStore(tmp_path / "db", segment_events=1000)
        store.append_many(events)
        store.close()
        reopened = SegmentStore(tmp_path / "db", segment_events=1000)
        assert reopened.stats().sealed_segments == 0
        assert reopened.query() == _oracle(events)

    def test_narrow_query_prunes_segments_and_rows(self, tmp_path):
        events = _stream(400)
        store = SegmentStore(tmp_path / "db", segment_events=50)
        store.append_many(events)
        store.seal_tail()
        selected = store.query(start_time=300.0, end_time=320.0)
        assert selected == _oracle(events, start=300.0, end=320.0)
        stats = store.stats()
        assert stats.segments_pruned > 0
        # An indexed seek reads a small multiple of the answer, never
        # the whole store.
        assert stats.rows_read < len(events) / 2

    def test_host_query_reads_only_that_hosts_rows(self, tmp_path):
        events = _stream(300)
        store = SegmentStore(tmp_path / "db", segment_events=64)
        store.append_many(events)
        store.seal_tail()
        host = HOSTS[1]
        selected = store.query(hosts=[host])
        assert selected == _oracle(events, hosts={host})
        assert store.stats().rows_read <= len(selected) * 2

    def test_compaction_survives_reopen(self, tmp_path):
        events = _stream(90, shuffle_seed=5)
        store = SegmentStore(tmp_path / "db", segment_events=16)
        store.append_many(events)
        store.seal_tail()
        store.compact()
        store.close()
        reopened = SegmentStore(tmp_path / "db", segment_events=16)
        assert reopened.query() == _oracle(events)


class TestCrashRecovery:
    def test_torn_journal_tail_truncated_on_open(self, tmp_path):
        events = _stream(20)
        store = SegmentStore(tmp_path / "db", segment_events=1000)
        store.append_many(events)
        store.close()
        tear_journal_tail(tmp_path / "db" / "journal.jsonl", cut_bytes=13)
        reopened = SegmentStore(tmp_path / "db", segment_events=1000)
        stats = reopened.stats()
        assert stats.torn_bytes_truncated > 0
        recovered = reopened.query()
        # The torn record (and only a tail) is lost; the prefix survives
        # intact and the journal stays appendable.
        assert 0 < len(recovered) < len(events)
        assert recovered == _oracle(events)[:len(recovered)]
        reopened.append(_event(999.0, "web-01", 999))
        assert len(reopened) == len(recovered) + 1

    def test_missing_footer_rebuilt_from_segment_data(self, tmp_path):
        events = _stream(80)
        store = SegmentStore(tmp_path / "db", segment_events=32)
        store.append_many(events)
        store.close()
        sidecars = list((tmp_path / "db" / "segments").glob("*.idx.json"))
        assert sidecars
        for sidecar in sidecars:
            sidecar.unlink()
        reopened = SegmentStore(tmp_path / "db", segment_events=32)
        assert reopened.stats().footers_rebuilt == len(sidecars)
        assert reopened.query() == _oracle(events)
        # The rebuilt sidecars are persisted, and indexed selection
        # works off them.
        host = HOSTS[0]
        assert reopened.query(hosts=[host]) == _oracle(events, hosts={host})

    def test_corrupt_footer_rebuilt(self, tmp_path):
        events = _stream(80)
        store = SegmentStore(tmp_path / "db", segment_events=32)
        store.append_many(events)
        store.close()
        sidecar = next((tmp_path / "db" / "segments").glob("*.idx.json"))
        sidecar.write_text("{not json", encoding="utf-8")
        reopened = SegmentStore(tmp_path / "db", segment_events=32)
        assert reopened.stats().footers_rebuilt == 1
        assert reopened.query() == _oracle(events)

    def test_orphan_segment_from_crashed_seal_removed(self, tmp_path):
        events = _stream(60)
        store = SegmentStore(tmp_path / "db", segment_events=16)
        store.append_many(events)
        store.close()
        # A crash between segment write and manifest commit leaves a
        # data file the manifest does not name.
        segment_dir = tmp_path / "db" / "segments"
        source = next(segment_dir.glob("segment-*.jsonl"))
        orphan = segment_dir / "segment-00000099.jsonl"
        orphan.write_bytes(source.read_bytes())
        reopened = SegmentStore(tmp_path / "db", segment_events=16)
        assert reopened.stats().orphan_segments_removed == 1
        assert not orphan.exists()
        assert reopened.query() == _oracle(events)  # nothing double-counted

    def test_crash_between_manifest_and_journal_truncate(self, tmp_path):
        events = _stream(40)
        store = SegmentStore(tmp_path / "db", segment_events=16)
        store.append_many(events)
        store.seal_tail()
        store.close()
        # Re-append the newest sealed segment's lines to the journal:
        # exactly the state a crash after the manifest commit but before
        # the journal truncation leaves behind.
        segment_dir = tmp_path / "db" / "segments"
        newest = sorted(segment_dir.glob("segment-*.jsonl"))[-1]
        journal = tmp_path / "db" / "journal.jsonl"
        journal.write_bytes(journal.read_bytes() + newest.read_bytes())
        reopened = SegmentStore(tmp_path / "db", segment_events=16)
        assert reopened.stats().journal_duplicates_dropped > 0
        assert reopened.query() == _oracle(events)

    def test_unsorted_foreign_segment_data_is_normalized(self, tmp_path):
        # A hand-edited (or foreign) segment file in arrival order must
        # not poison sorted-order assumptions after a footer rebuild.
        events = _stream(30, shuffle_seed=9)
        path = tmp_path / "seg.jsonl"
        from repro.events.serialization import event_to_json
        path.write_text("".join(event_to_json(event) + "\n"
                                for event in events), encoding="utf-8")
        segment, rebuilt = DiskSegment.open(path, sequence=1, stride=4)
        assert rebuilt
        keys = [event_key(event) for event in segment.iter_events()]
        assert keys == sorted(keys)


class TestResumeSeek:
    def _database_and_cursor(self, tmp_path, count=500):
        events = _stream(count)
        database = EventDatabase.open(tmp_path / "db", segment_events=50)
        database.insert_many(events)
        database.store.seal_tail()
        ordered = _oracle(events)
        cut = int(count * 0.95)
        cursor = ResumeCursor(
            watermark=ordered[cut - 1].timestamp,
            last_event_id=ordered[cut - 1].event_id,
            frontier_ids=frozenset(
                event.event_id for event in ordered
                if event.timestamp == ordered[cut - 1].timestamp),
            events_ingested=cut,
        )
        return database, events, ordered, cursor, cut

    def test_cursor_seek_matches_full_replay_filter(self, tmp_path):
        database, events, ordered, cursor, cut = self._database_and_cursor(
            tmp_path)
        expected = [event for event in ordered if not cursor.covers(event)]
        assert list(database.events_from_cursor(cursor)) == expected

    def test_cursor_seek_skips_pre_cursor_rows(self, tmp_path):
        database, events, ordered, cursor, cut = self._database_and_cursor(
            tmp_path)
        baseline = database.store.stats().rows_read
        resumed = list(database.events_from_cursor(cursor))
        rows_read = database.store.stats().rows_read - baseline
        # The seek must touch only a sliver of the pre-cursor history:
        # >= 90% of the events before the cursor are never read.
        assert rows_read <= len(resumed) + 0.1 * cut

    def test_replayer_resume_uses_seek(self, tmp_path):
        database, events, ordered, cursor, cut = self._database_and_cursor(
            tmp_path)
        replayer = StreamReplayer(database)
        expected = [event for event in ordered if not cursor.covers(event)]
        assert list(resume_events(replayer, cursor)) == expected
        assert replayer.events_replayed == len(expected)

    def test_replayer_spec_composes_with_cursor(self, tmp_path):
        database, events, ordered, cursor, cut = self._database_and_cursor(
            tmp_path)
        host = HOSTS[2]
        replayer = StreamReplayer(database, ReplaySpec(hosts=[host]))
        expected = [event for event in ordered
                    if event.agentid == host and not cursor.covers(event)]
        assert list(resume_events(replayer, cursor)) == expected

    def test_none_cursor_replays_everything(self, tmp_path):
        database, events, ordered, cursor, cut = self._database_and_cursor(
            tmp_path, count=100)
        replayer = StreamReplayer(database)
        assert list(resume_events(replayer, None)) == ordered


class TestDatabaseFacade:
    def test_legacy_jsonl_round_trip_bit_identical(self, tmp_path):
        events = _stream(50)
        database = EventDatabase(events)
        first = tmp_path / "capture.jsonl"
        database.save(first)
        reloaded = EventDatabase.load(first)
        second = tmp_path / "again.jsonl"
        reloaded.save(second)
        assert first.read_bytes() == second.read_bytes()

    def test_directory_save_and_load(self, tmp_path):
        events = _stream(70)
        database = EventDatabase(events)
        target = tmp_path / "segmented"
        written = database.save(target)
        assert written == len(events)
        assert (target / "MANIFEST.json").exists()
        reloaded = EventDatabase.load(target)
        assert reloaded.query() == _oracle(events)

    def test_events_for_host_and_between(self, tmp_path):
        events = _stream(80)
        database = EventDatabase(events)
        host = HOSTS[3]
        assert database.events_for_host(host) == _oracle(events,
                                                         hosts={host})
        assert database.events_between(10.0, 30.0) == _oracle(
            events, start=10.0, end=30.0)

    def test_stats_carry_storage_counters(self):
        database = EventDatabase(_stream(40))
        stats = database.stats()
        assert stats.total_events == 40
        assert stats.storage is not None
        assert stats.storage.total_events == 40


@st.composite
def _batches(draw):
    count = draw(st.integers(min_value=0, max_value=4))
    batches = []
    index = 0
    for _ in range(count):
        size = draw(st.integers(min_value=1, max_value=20))
        batch = []
        for _ in range(size):
            timestamp = draw(st.integers(min_value=0, max_value=50))
            host = draw(st.sampled_from(HOSTS))
            batch.append(_event(float(timestamp), host, index))
            index += 1
        batches.append(batch)
    return batches


class TestStoreOracleProperty:
    @settings(max_examples=40, deadline=None)
    @given(batches=_batches(),
           start=st.one_of(st.none(),
                           st.integers(min_value=0, max_value=50)),
           span=st.integers(min_value=1, max_value=30),
           host=st.one_of(st.none(), st.sampled_from(HOSTS)))
    def test_query_matches_sorted_list_oracle(self, batches, start, span,
                                              host):
        store = SegmentStore(segment_events=16)
        everything = []
        for batch in batches:
            store.append_many(batch)
            everything.extend(batch)
        end = None if start is None else float(start + span)
        begin = None if start is None else float(start)
        hosts = None if host is None else [host]
        expected = _oracle(everything, start=begin, end=end,
                           hosts=None if host is None else {host})
        assert store.query(begin, end, hosts) == expected

    @settings(max_examples=15, deadline=None)
    @given(batches=_batches())
    def test_disk_reopen_matches_oracle(self, batches, tmp_path_factory):
        directory = tmp_path_factory.mktemp("segstore")
        store = SegmentStore(directory, segment_events=12)
        everything = []
        for batch in batches:
            store.append_many(batch)
            everything.extend(batch)
        store.close()
        reopened = SegmentStore(directory, segment_events=12)
        assert reopened.query() == _oracle(everything)
        reopened.compact()
        assert reopened.query() == _oracle(everything)
