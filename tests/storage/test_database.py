"""Tests for the embedded event database."""

import pytest

from repro.events.event import Operation
from repro.storage import EventDatabase
from tests.conftest import make_connection, make_event, make_file, make_process


def _events():
    db_proc = make_process("sqlservr.exe", 1, host="db-server")
    client_proc = make_process("excel.exe", 2, host="client-01")
    events = []
    for index in range(10):
        events.append(make_event(db_proc, Operation.WRITE,
                                 make_file("/db/log", host="db-server"),
                                 float(index * 10), agentid="db-server",
                                 amount=100))
    for index in range(5):
        events.append(make_event(client_proc, Operation.WRITE,
                                 make_connection("8.8.8.8"),
                                 float(index * 20 + 5), agentid="client-01",
                                 amount=10))
    return events


class TestIngestion:
    def test_insert_many_and_len(self):
        database = EventDatabase(_events())
        assert len(database) == 15

    def test_single_insert_keeps_order(self):
        database = EventDatabase()
        events = _events()
        database.insert(events[3])
        database.insert(events[0])
        timestamps = [event.timestamp for event in database.scan()]
        assert timestamps == sorted(timestamps)

    def test_insert_empty_batch(self):
        database = EventDatabase()
        assert database.insert_many([]) == 0


class TestQueries:
    def test_time_range_query(self):
        database = EventDatabase(_events())
        results = database.query(start_time=20.0, end_time=50.0)
        assert all(20.0 <= event.timestamp < 50.0 for event in results)
        assert results

    def test_host_filter(self):
        database = EventDatabase(_events())
        results = database.query(hosts=["client-01"])
        assert len(results) == 5
        assert all(event.agentid == "client-01" for event in results)

    def test_event_type_filter(self):
        database = EventDatabase(_events())
        results = database.query(event_types=["network"])
        assert len(results) == 5

    def test_combined_filters(self):
        database = EventDatabase(_events())
        results = database.query(start_time=0.0, end_time=50.0,
                                 hosts=["db-server"],
                                 event_types=["file"])
        assert all(event.agentid == "db-server" for event in results)
        assert all(event.timestamp < 50.0 for event in results)

    def test_hosts_listing(self):
        database = EventDatabase(_events())
        assert database.hosts == ["client-01", "db-server"]

    def test_time_range_property(self):
        database = EventDatabase(_events())
        first, last = database.time_range
        assert first == 0.0
        assert last == 90.0

    def test_empty_database(self):
        database = EventDatabase()
        assert database.time_range is None
        assert database.query() == []

    def test_stats(self):
        stats = EventDatabase(_events()).stats()
        assert stats.total_events == 15
        assert stats.by_type == {"file": 10, "network": 5}


class TestPersistence:
    def test_save_and_load_round_trip(self, tmp_path):
        database = EventDatabase(_events())
        path = tmp_path / "day1.jsonl"
        written = database.save(path)
        assert written == 15
        loaded = EventDatabase.load(path)
        assert len(loaded) == 15
        assert loaded.hosts == database.hosts
        assert loaded.time_range == database.time_range


class TestIncrementalIngestion:
    """Order and index consistency under interleaved insert/insert_many."""

    def test_interleaved_inserts_keep_canonical_order(self):
        events = _events()
        database = EventDatabase()
        database.insert(events[7])
        database.insert_many(events[0:4])
        database.insert(events[12])
        database.insert_many(events[4:7] + events[8:12])
        database.insert_many(events[13:])
        assert len(database) == len(events)
        keys = [(event.timestamp, event.event_id)
                for event in database.scan()]
        assert keys == sorted(keys)

    def test_interleaved_inserts_keep_indexes_consistent(self):
        events = _events()
        database = EventDatabase()
        for position, event in enumerate(events):
            if position % 3 == 0:
                database.insert(event)
            elif position % 3 == 1:
                database.insert_many([event])
        database.insert_many(events[2::3])
        # Host index vs a scan-derived ground truth.
        assert database.hosts == sorted({event.agentid for event in events})
        stats = database.stats()
        by_type = {}
        for event in database.scan():
            key = event.event_type.value
            by_type[key] = by_type.get(key, 0) + 1
        assert stats.by_type == by_type
        assert stats.total_events == len(events)

    def test_append_heavy_batches_merge_with_out_of_order_tail(self):
        events = _events()
        database = EventDatabase(events[:5])
        # A batch that straddles the existing range forces a real merge.
        database.insert_many(list(reversed(events[5:])))
        keys = [(event.timestamp, event.event_id)
                for event in database.scan()]
        assert keys == sorted(keys)
        assert database.query(start_time=20.0, end_time=50.0)

    def test_queries_agree_after_mixed_ingestion(self):
        events = _events()
        reference = EventDatabase(events)
        mixed = EventDatabase()
        mixed.insert_many(events[8:])
        for event in events[:8]:
            mixed.insert(event)
        for hosts in (None, ["db-server"]):
            left = reference.query(start_time=10.0, end_time=80.0,
                                   hosts=hosts)
            right = mixed.query(start_time=10.0, end_time=80.0, hosts=hosts)
            assert [e.event_id for e in left] == [e.event_id for e in right]
