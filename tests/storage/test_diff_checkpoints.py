"""Tests for format-3 differential checkpoints.

Contract: a diff-mode store recovers exactly the snapshot a full-mode
store would, under chain growth, rebase, process restart, and damage
anywhere in a chain — and pruning counts restorable *chains*, never
orphaning a base some delta still needs.  Old format-1 (bare dict) and
format-2 (checksummed container) files restore bit-identically.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.checkpoints import (
    CHECKPOINT_FORMAT,
    CheckpointStore,
    CorruptCheckpoint,
    apply_delta,
    snapshot_checksum,
    snapshot_delta,
)
from repro.testing import corrupt_checkpoint, truncate_checkpoint


def _canonical(value):
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def make_snap(step, hosts=20, churn=1):
    """A scheduler-shaped snapshot: assoc pair-lists + growing ledgers.

    ``churn`` hosts change per step; the rest of the state is static —
    the regime differential checkpoints exist for.
    """
    return {
        "version": 1,
        "kind": "scheduler",
        "queries": ["exfil", "priv-esc"],
        "engines": {
            "exfil": {
                "alerts": [f"alert-{index}" for index in range(step)],
                "histories": [
                    [["host", index],
                     {"count": (step if index < churn else 3),
                      "window": [1.0, 2.0], "blob": "x" * 40}]
                    for index in range(hosts)
                ],
                "seen_distinct": [f"value-{index}"
                                  for index in range(step * 2)],
            },
            "priv-esc": {"alerts": [], "watermark": 100.0 + step},
        },
        "cursor": {"watermark": 100.0 + step,
                   "last_event_id": step * 10,
                   "frontier_ids": [step * 10],
                   "events_ingested": step * 1000},
    }


class TestDeltaPrimitives:
    def test_round_trip_dicts_and_assoc_lists(self):
        old = make_snap(3)
        new = make_snap(4)
        ops = snapshot_delta(old, new)
        assert ops  # something changed
        rebuilt = apply_delta(old, ops)
        assert _canonical(rebuilt) == _canonical(new)

    def test_identical_snapshots_produce_empty_delta(self):
        snap = make_snap(5)
        assert snapshot_delta(snap, json.loads(json.dumps(snap))) == []

    def test_bool_int_distinction_not_dropped(self):
        # True == 1 in Python but not in canonical JSON; the delta must
        # record the change.
        ops = snapshot_delta({"flag": True}, {"flag": 1})
        assert ops
        assert _canonical(apply_delta({"flag": True}, ops)) == '{"flag":1}'

    def test_append_only_ledger_becomes_ext_op(self):
        old = {"alerts": ["a", "b"]}
        new = {"alerts": ["a", "b", "c", "d"]}
        ops = snapshot_delta(old, new)
        assert ops == [{"p": ["alerts"], "o": "ext", "v": ["c", "d"]}]
        assert apply_delta(old, ops) == new

    def test_assoc_key_removal_and_addition(self):
        old = {"m": [[["k", 1], "one"], [["k", 2], "two"]]}
        new = {"m": [[["k", 2], "two"], [["k", 3], "three"]]}
        ops = snapshot_delta(old, new)
        rebuilt = apply_delta(old, ops)
        # Entry order may differ (append-at-end), but the mapping and
        # every value must match.
        assert sorted(map(_canonical, rebuilt["m"])) == sorted(
            map(_canonical, new["m"]))

    def test_apply_delta_rejects_misfit_ops(self):
        with pytest.raises(CorruptCheckpoint):
            apply_delta({"a": 1}, [{"p": ["missing", "deep"], "o": "set",
                                    "v": 2}])

    def test_input_not_mutated(self):
        old = {"alerts": ["a"], "n": 1}
        ops = snapshot_delta(old, {"alerts": ["a", "b"], "n": 2})
        apply_delta(old, ops)
        assert old == {"alerts": ["a"], "n": 1}

    @settings(max_examples=60, deadline=None)
    @given(st.recursive(
        st.one_of(st.none(), st.booleans(),
                  st.integers(min_value=-1000, max_value=1000),
                  st.text(max_size=8)),
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(st.text(max_size=6), children, max_size=4)),
        max_leaves=12), st.data())
    def test_any_json_pair_round_trips(self, old, data):
        new = data.draw(st.recursive(
            st.one_of(st.none(), st.booleans(),
                      st.integers(min_value=-1000, max_value=1000),
                      st.text(max_size=8)),
            lambda children: st.one_of(
                st.lists(children, max_size=4),
                st.dictionaries(st.text(max_size=6), children, max_size=4)),
            max_leaves=12))
        ops = snapshot_delta(old, new)
        rebuilt = apply_delta(old, ops)
        assert _canonical(rebuilt) == _canonical(new)


class TestDiffChains:
    def _store(self, directory, **kwargs):
        options = {"keep": 3, "mode": "diff", "rebase_interval": 4}
        options.update(kwargs)
        return CheckpointStore(directory, **options)

    def test_chain_shape_and_latest_parity(self, tmp_path):
        store = self._store(tmp_path)
        snaps = [make_snap(step) for step in range(10)]
        for snap in snaps:
            store.save(snap)
        assert store.full_writes >= 2  # base + at least one rebase
        assert store.delta_writes > store.full_writes
        assert _canonical(store.latest()) == _canonical(snaps[-1])

    def test_fresh_instance_resumes_the_chain(self, tmp_path):
        store = self._store(tmp_path)
        for step in range(3):
            store.save(make_snap(step))
        resumed = self._store(tmp_path)
        assert _canonical(resumed.latest()) == _canonical(make_snap(2))
        resumed.save(make_snap(3))
        assert resumed.last_save["kind"] == "delta"
        assert _canonical(resumed.latest()) == _canonical(make_snap(3))

    def test_corrupt_delta_mid_chain_falls_back_before_it(self, tmp_path):
        store = self._store(tmp_path, rebase_interval=50)  # one long chain
        snaps = [make_snap(step) for step in range(8)]
        for snap in snaps:
            store.save(snap)
        paths = store.paths()
        # Damage the 5th record (a delta): recovery must surface the 4th
        # snapshot, not fail and not return anything after the damage.
        corrupt_checkpoint(paths[4])
        recovered = CheckpointStore(tmp_path, mode="diff").latest()
        assert _canonical(recovered) == _canonical(snaps[3])

    def test_corrupt_base_falls_back_to_previous_chain(self, tmp_path):
        store = self._store(tmp_path, rebase_interval=3)
        snaps = [make_snap(step) for step in range(8)]
        for snap in snaps:
            store.save(snap)
        # Find the newest full record (the open chain's base) and
        # destroy it: every delta above it is unrecoverable, so latest()
        # must fall back to the previous chain's tip.
        paths = store.paths()
        kinds = {path: json.loads(path.read_text()).get("kind")
                 for path in paths}
        newest_full = [path for path in paths
                       if kinds[path] == "full"][-1]
        truncate_checkpoint(newest_full)
        recovered = CheckpointStore(tmp_path, mode="diff").latest()
        assert recovered is not None
        base_seq = int(newest_full.stem.split("-")[1])
        expected_tip = max(int(path.stem.split("-")[1]) for path in paths
                           if int(path.stem.split("-")[1]) < base_seq)
        assert _canonical(recovered) == _canonical(
            snaps[expected_tip - 1])  # sequences are 1-based

    def test_pruning_counts_chains_not_files(self, tmp_path):
        store = self._store(tmp_path, keep=2, rebase_interval=3)
        for step in range(14):
            store.save(make_snap(step))
        paths = store.paths()
        payloads = [json.loads(path.read_text()) for path in paths]
        # Every surviving delta's base must also survive.
        sequences = {int(path.stem.split("-")[1]) for path in paths}
        for payload in payloads:
            if payload.get("kind") == "delta":
                assert payload["base"] in sequences
        # Exactly `keep` restorable chains remain.
        fulls = [payload for payload in payloads
                 if payload.get("kind") == "full"]
        assert len(fulls) == 2
        assert _canonical(store.latest()) == _canonical(make_snap(13))

    def test_high_churn_falls_back_to_full_records(self, tmp_path):
        store = self._store(tmp_path)
        # Every field changes every step: a delta would be as big as the
        # full dump, so the writer must keep writing fulls.
        for step in range(4):
            store.save(make_snap(step, hosts=4, churn=4))
        assert store.delta_writes == 0 or store.full_writes >= 1
        assert _canonical(store.latest()) == _canonical(
            make_snap(3, hosts=4, churn=4))

    def test_diff_mode_is_smaller_at_low_churn(self, tmp_path):
        diff_store = self._store(tmp_path / "diff", rebase_interval=8)
        full_store = CheckpointStore(tmp_path / "full", mode="full")
        for step in range(10):
            snap = make_snap(step, hosts=60, churn=1)
            diff_store.save(snap)
            full_store.save(snap)
        assert diff_store.bytes_written < full_store.bytes_written / 2
        assert _canonical(diff_store.latest()) == _canonical(
            full_store.latest())


class TestFormatCompat:
    def test_format1_bare_snapshot_restores_bit_identically(self, tmp_path):
        snapshot = make_snap(4)
        path = tmp_path / "checkpoint-00000001.json"
        path.write_text(json.dumps(snapshot), encoding="utf-8")
        for mode in ("full", "diff"):
            loaded = CheckpointStore(tmp_path, mode=mode).latest()
            assert _canonical(loaded) == _canonical(snapshot)

    def test_format2_container_restores_bit_identically(self, tmp_path):
        snapshot = make_snap(6)
        container = {"format": 2,
                     "checksum": snapshot_checksum(snapshot),
                     "snapshot": snapshot}
        path = tmp_path / "checkpoint-00000001.json"
        path.write_text(json.dumps(container), encoding="utf-8")
        for mode in ("full", "diff"):
            loaded = CheckpointStore(tmp_path, mode=mode).latest()
            assert _canonical(loaded) == _canonical(snapshot)

    def test_diff_chain_can_grow_on_top_of_format2_history(self, tmp_path):
        old = make_snap(2)
        container = {"format": 2,
                     "checksum": snapshot_checksum(old),
                     "snapshot": old}
        (tmp_path / "checkpoint-00000001.json").write_text(
            json.dumps(container), encoding="utf-8")
        store = CheckpointStore(tmp_path, mode="diff", rebase_interval=4)
        store.save(make_snap(3))
        assert _canonical(store.latest()) == _canonical(make_snap(3))

    def test_full_mode_still_writes_plain_containers(self, tmp_path):
        store = CheckpointStore(tmp_path)
        snapshot = make_snap(1)
        path = store.save(snapshot)
        container = json.loads(path.read_text())
        assert container["format"] == CHECKPOINT_FORMAT
        assert container["kind"] == "full"
        assert container["checksum"] == snapshot_checksum(snapshot)
        assert _canonical(container["snapshot"]) == _canonical(snapshot)
