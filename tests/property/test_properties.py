"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster.dbscan import NOISE, dbscan
from repro.core.cluster.distance import euclidean, manhattan
from repro.core.engine.state import StateHistory, WindowState
from repro.core.engine.windows import WindowAssigner, WindowKey
from repro.core.expr import functions
from repro.core.expr.values import (
    as_set,
    like_match,
    set_diff,
    set_intersect,
    set_union,
    size_of,
)
from repro.core.language import ast
from repro.events.entities import ProcessEntity
from repro.events.event import Event, Operation
from repro.events.serialization import event_from_dict, event_to_dict
from repro.events.stream import ListStream

finite_floats = st.floats(min_value=-1e9, max_value=1e9,
                          allow_nan=False, allow_infinity=False)
amounts = st.floats(min_value=0.0, max_value=1e9, allow_nan=False,
                    allow_infinity=False)


class TestAggregationProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_avg_is_bounded_by_min_and_max(self, values):
        average = functions.agg_avg(values)
        assert functions.agg_min(values) - 1e-6 <= average
        assert average <= functions.agg_max(values) + 1e-6

    @given(st.lists(finite_floats, max_size=50))
    def test_count_matches_length(self, values):
        assert functions.agg_count(values) == len(values)

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_median_is_bounded(self, values):
        median = functions.agg_median(values)
        assert min(values) <= median <= max(values)

    @given(st.lists(st.text(max_size=5), max_size=30))
    def test_set_size_never_exceeds_count(self, values):
        assert len(functions.agg_set(values)) <= len(values)

    @given(st.lists(finite_floats, min_size=1, max_size=50),
           st.floats(min_value=0, max_value=100))
    def test_percentile_is_a_member(self, values, rank):
        assert functions.agg_percentile(values, rank) in values


class TestSetOperatorProperties:
    sets = st.frozensets(st.integers(min_value=0, max_value=20), max_size=10)

    @given(sets, sets)
    def test_union_is_commutative(self, left, right):
        assert set_union(left, right) == set_union(right, left)

    @given(sets, sets)
    def test_diff_is_disjoint_from_right(self, left, right):
        assert set_intersect(set_diff(left, right), right) == frozenset()

    @given(sets, sets)
    def test_union_size_bounds(self, left, right):
        union = set_union(left, right)
        assert max(len(left), len(right)) <= len(union) <= (len(left)
                                                            + len(right))

    @given(st.one_of(st.integers(), st.text(max_size=5), st.none()))
    def test_as_set_of_scalar_has_size_at_most_one(self, value):
        assert len(as_set(value)) <= 1

    @given(sets)
    def test_size_of_matches_len(self, value):
        assert size_of(value) == len(value)


class TestLikeMatchProperties:
    @given(st.text(alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
                   max_size=20))
    def test_percent_matches_everything(self, text):
        assert like_match(text, "%")

    @given(st.text(alphabet="abcXYZ09._-", max_size=15))
    def test_exact_text_matches_itself(self, text):
        assert like_match(text, text)

    @given(st.text(alphabet="abc", min_size=1, max_size=10))
    def test_suffix_pattern(self, text):
        assert like_match("prefix/" + text, "%" + text)


class TestDistanceProperties:
    vectors = st.lists(finite_floats, min_size=1, max_size=4)

    @given(vectors)
    def test_distance_to_self_is_zero(self, vector):
        assert euclidean(vector, vector) == 0.0
        assert manhattan(vector, vector) == 0.0

    @given(st.integers(1, 4).flatmap(
        lambda n: st.tuples(
            st.lists(finite_floats, min_size=n, max_size=n),
            st.lists(finite_floats, min_size=n, max_size=n))))
    def test_symmetry(self, pair):
        left, right = pair
        assert euclidean(left, right) == euclidean(right, left)
        assert manhattan(left, right) == manhattan(right, left)

    @given(st.integers(1, 3).flatmap(
        lambda n: st.tuples(
            st.lists(finite_floats, min_size=n, max_size=n),
            st.lists(finite_floats, min_size=n, max_size=n),
            st.lists(finite_floats, min_size=n, max_size=n))))
    def test_triangle_inequality(self, triple):
        a, b, c = triple
        assert euclidean(a, c) <= euclidean(a, b) + euclidean(b, c) + 1e-6


class TestDBSCANProperties:
    points = st.lists(
        st.tuples(st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)),
        min_size=1, max_size=30)

    @settings(max_examples=30)
    @given(points, st.floats(min_value=0.1, max_value=100.0),
           st.integers(min_value=1, max_value=5))
    def test_every_point_gets_a_label(self, pts, eps, min_pts):
        result = dbscan(pts, eps=eps, min_pts=min_pts)
        assert len(result.labels) == len(pts)
        assert all(label == NOISE or label >= 0 for label in result.labels)

    @settings(max_examples=30)
    @given(points)
    def test_min_pts_one_means_no_noise(self, pts):
        result = dbscan(pts, eps=1.0, min_pts=1)
        assert NOISE not in result.labels


class TestWindowProperties:
    @given(st.floats(min_value=0, max_value=1e8, allow_nan=False),
           st.floats(min_value=1.0, max_value=1e5))
    def test_time_window_contains_its_event(self, timestamp, length):
        assigner = WindowAssigner(ast.WindowSpec(kind="time", length=length))
        keys = assigner.assign(timestamp)
        assert len(keys) == 1
        assert keys[0].contains(timestamp)

    @given(st.floats(min_value=0, max_value=1e8, allow_nan=False),
           st.floats(min_value=1.0, max_value=1e4),
           st.integers(min_value=1, max_value=5))
    def test_hopping_windows_all_contain_the_event(self, timestamp, hop,
                                                   factor):
        spec = ast.WindowSpec(kind="time", length=hop * factor, hop=hop)
        keys = WindowAssigner(spec).assign(timestamp)
        assert keys
        assert all(key.contains(timestamp) for key in keys)
        assert len(keys) <= factor


class TestStateHistoryProperties:
    @given(st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=20))
    def test_history_never_exceeds_capacity(self, capacity, pushes):
        history = StateHistory(capacity)
        for index in range(pushes):
            history.push(WindowState(group_key="g",
                                     window=WindowKey(index, 0.0, 1.0),
                                     fields={"n": index}))
        assert history.length == min(capacity, pushes)
        if pushes:
            assert history.get(0).fields["n"] == pushes - 1


class TestSerializationProperties:
    @settings(max_examples=50)
    @given(st.text(alphabet="abcdefXYZ.-_ ", min_size=1, max_size=20),
           st.integers(min_value=1, max_value=1 << 20),
           amounts,
           st.floats(min_value=0, max_value=1e9, allow_nan=False))
    def test_event_dict_round_trip(self, exe, pid, amount, timestamp):
        proc = ProcessEntity.make(exe, pid, host="h1")
        child = ProcessEntity.make("child.exe", pid + 1, host="h1")
        event = Event(subject=proc, operation=Operation.START, obj=child,
                      timestamp=timestamp, agentid="h1", amount=amount)
        rebuilt = event_from_dict(event_to_dict(event))
        assert rebuilt.subject == event.subject
        assert rebuilt.obj == event.obj
        assert rebuilt.timestamp == event.timestamp
        assert rebuilt.amount == event.amount


class TestStreamProperties:
    @settings(max_examples=30)
    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                    max_size=50))
    def test_list_stream_is_always_sorted(self, timestamps):
        proc = ProcessEntity.make("a.exe", 1, host="h")
        events = [Event(subject=proc, operation=Operation.START,
                        obj=ProcessEntity.make("b.exe", 2, host="h"),
                        timestamp=t, agentid="h") for t in timestamps]
        ordered = [event.timestamp for event in ListStream(events)]
        assert ordered == sorted(ordered)
