"""Unit tests for alert records, sinks and the error reporter."""

import pytest

from repro.core.engine.alerts import Alert, CallbackSink, CollectingSink
from repro.core.engine.error_reporter import ErrorReporter
from repro.core.errors import SAQLExecutionError


def _alert(**overrides):
    defaults = dict(query_name="q1", timestamp=100.0,
                    data=(("p", "cmd.exe"), ("amount", 5.0)),
                    model_kind="rule")
    defaults.update(overrides)
    return Alert(**defaults)


class TestAlert:
    def test_record_is_a_dict(self):
        assert _alert().record == {"p": "cmd.exe", "amount": 5.0}

    def test_describe_contains_query_and_fields(self):
        text = _alert().describe()
        assert "q1" in text
        assert "p=cmd.exe" in text

    def test_describe_includes_window_when_present(self):
        alert = _alert(window_start=0.0, window_end=600.0)
        assert "window=[0,600)" in alert.describe()

    def test_alerts_are_hashable(self):
        assert len({_alert(), _alert()}) == 1


class TestSinks:
    def test_collecting_sink(self):
        sink = CollectingSink()
        sink.emit(_alert())
        sink.emit(_alert(timestamp=200.0))
        assert len(sink) == 2
        assert [alert.timestamp for alert in sink] == [100.0, 200.0]

    def test_callback_sink(self):
        received = []
        sink = CallbackSink(received.append)
        sink.emit(_alert())
        assert len(received) == 1


class TestErrorReporter:
    def test_report_stores_record(self):
        reporter = ErrorReporter()
        reporter.report("q1", SAQLExecutionError("boom"), timestamp=5.0)
        assert reporter.has_errors()
        record = reporter.records[0]
        assert record.query_name == "q1"
        assert "boom" in record.message
        assert record.timestamp == 5.0

    def test_describe(self):
        reporter = ErrorReporter()
        record = reporter.report("q1", ValueError("bad"))
        assert "q1" in record.describe()
        assert "bad" in record.describe()

    def test_cap_and_dropped_counter(self):
        reporter = ErrorReporter(max_records=2)
        for index in range(5):
            reporter.report("q", ValueError(str(index)))
        assert len(reporter.records) == 2
        assert reporter.dropped == 3

    def test_clear(self):
        reporter = ErrorReporter()
        reporter.report("q", ValueError("x"))
        reporter.clear()
        assert not reporter.has_errors()
        assert reporter.dropped == 0


class TestProjectable:
    """Return-clause value normalization (engine values -> alert payloads)."""

    def test_integral_floats_normalize_to_int(self):
        from repro.core.engine.query_engine import _projectable

        value = _projectable(500000.0)
        assert value == 500000
        assert isinstance(value, int)

    def test_fractional_floats_stay_float(self):
        from repro.core.engine.query_engine import _projectable

        value = _projectable(2.5)
        assert value == 2.5
        assert isinstance(value, float)

    def test_sets_become_sorted_tuples(self):
        from repro.core.engine.query_engine import _projectable

        assert _projectable({"b", "a"}) == ("a", "b")

    def test_alert_payload_is_stable_across_float_arithmetic(self):
        # sum() over integral byte counts goes through float arithmetic;
        # the projected payload must come out as a plain int.
        from repro.core import QueryEngine
        from repro.events.event import Operation
        from tests.conftest import make_connection, make_event, make_process

        engine = QueryEngine('''
proc p write ip i as evt #time(10 sec)
state ss { total := sum(evt.amount) }
group by evt.agentid
alert ss.total > 0
return ss.total
''')
        proc = make_process("sqlservr.exe", 5)
        conn = make_connection("10.0.2.11")
        engine.process_event(make_event(proc, Operation.WRITE, conn, 1.0,
                                        amount=1000.0))
        engine.process_event(make_event(proc, Operation.WRITE, conn, 2.0,
                                        amount=500.0))
        alerts = engine.finish()
        assert len(alerts) == 1
        (label, value), = alerts[0].data
        assert label == "ss.total"
        assert value == 1500
        assert isinstance(value, int)
