"""Unit tests for the cluster-statement evaluator."""

import pytest

from repro.core.engine.clustering import ClusterEvaluator
from repro.core.engine.state import StateHistory, WindowState
from repro.core.engine.windows import WindowKey
from repro.core.language import parse_query

QUERY = '''
proc p read || write ip i as evt #time(10 min)
state ss {
  amt := sum(evt.amount)
} group by i.dstip
cluster(points=all(ss.amt), distance="ed", method="DBSCAN(1000, 3)")
alert cluster.outlier && ss.amt > 0
return i.dstip, ss.amt
'''

WINDOW = WindowKey(0, 0.0, 600.0)


def _window_states(amounts):
    """Build per-group states and histories for one window."""
    states = []
    histories = {}
    for key, amount in amounts.items():
        state = WindowState(group_key=key, window=WINDOW,
                            fields={"amt": amount})
        history = StateHistory(1)
        history.push(state)
        states.append(state)
        histories[key] = history
    return states, histories


def _evaluator(query_text=QUERY):
    query = parse_query(query_text)
    return ClusterEvaluator(query.cluster, query.state.name)


class TestPointExtraction:
    def test_point_for_group(self):
        evaluator = _evaluator()
        states, histories = _window_states({"10.0.0.1": 500.0})
        point = evaluator.point_for("10.0.0.1", histories["10.0.0.1"],
                                    states[0])
        assert point == [500.0]

    def test_missing_field_gives_no_point(self):
        evaluator = _evaluator()
        history = StateHistory(1)
        history.push(WindowState(group_key="g", window=WINDOW, fields={}))
        state = history.current
        assert evaluator.point_for("g", history, state) is None


class TestWindowClustering:
    def test_outlier_detection_across_groups(self):
        evaluator = _evaluator()
        amounts = {f"10.0.2.{i}": 1000.0 + i * 10 for i in range(6)}
        amounts["203.0.113.129"] = 500000.0
        states, histories = _window_states(amounts)
        result = evaluator.evaluate_window(states, histories)
        assert result is not None
        assert result.is_outlier("203.0.113.129")
        assert not result.is_outlier("10.0.2.0")

    def test_no_points_returns_none(self):
        evaluator = _evaluator()
        assert evaluator.evaluate_window([], {}) is None

    def test_kmeans_method(self):
        text = QUERY.replace('method="DBSCAN(1000, 3)"',
                             'method="KMEANS(2)"')
        evaluator = _evaluator(text)
        amounts = {f"g{i}": float(i) for i in range(4)}
        states, histories = _window_states(amounts)
        result = evaluator.evaluate_window(states, histories)
        assert result is not None
        assert len(result.labels) == 4

    def test_default_dbscan_parameters(self):
        text = QUERY.replace('method="DBSCAN(1000, 3)"', 'method="DBSCAN"')
        evaluator = _evaluator(text)
        amounts = {f"g{i}": 100.0 for i in range(4)}
        states, histories = _window_states(amounts)
        result = evaluator.evaluate_window(states, histories)
        assert result is not None
