"""End-to-end tests of the query engine on rule-based queries."""

import pytest

from repro.core import QueryEngine
from repro.core.engine.alerts import CollectingSink
from repro.core.engine.error_reporter import ErrorReporter
from repro.events.event import Operation
from repro.events.stream import ListStream
from tests.conftest import make_connection, make_event, make_file, make_process

EXFIL_QUERY = '''
agentid = "db-server"
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
proc p4["%sbblv.exe"] read file f1 as evt3
proc p4 read || write ip i1[dstip="203.0.113.129"] as evt4
with evt1 -> evt2 -> evt3 -> evt4
return distinct p1, p2, p3, f1, p4, i1
'''


def _exfil_events(agentid="db-server"):
    cmd = make_process("cmd.exe", 1)
    osql = make_process("osql.exe", 2)
    sqlservr = make_process("sqlservr.exe", 3)
    sbblv = make_process("sbblv.exe", 4)
    dump = make_file("D:/backup/backup1.dmp")
    attacker = make_connection("203.0.113.129")
    return [
        make_event(cmd, Operation.START, osql, 10.0, agentid=agentid),
        make_event(sqlservr, Operation.WRITE, dump, 20.0, agentid=agentid,
                   amount=5e6),
        make_event(sbblv, Operation.READ, dump, 30.0, agentid=agentid,
                   amount=5e6),
        make_event(sbblv, Operation.WRITE, attacker, 40.0, agentid=agentid,
                   amount=5e6),
    ]


class TestRuleQueryDetection:
    def test_attack_sequence_is_detected_once(self):
        engine = QueryEngine(EXFIL_QUERY, name="exfil")
        alerts = engine.execute(ListStream(_exfil_events()))
        assert len(alerts) == 1

    def test_alert_projects_context_aware_values(self):
        engine = QueryEngine(EXFIL_QUERY)
        record = engine.execute(ListStream(_exfil_events()))[0].record
        assert record["p1"] == "cmd.exe"
        assert record["f1"] == "D:/backup/backup1.dmp"
        assert record["i1"] == "203.0.113.129"

    def test_alert_metadata(self):
        engine = QueryEngine(EXFIL_QUERY, name="exfil")
        alert = engine.execute(ListStream(_exfil_events()))[0]
        assert alert.query_name == "exfil"
        assert alert.model_kind == "rule"
        assert alert.timestamp == 40.0
        assert alert.agentid == "db-server"

    def test_wrong_agent_is_ignored(self):
        engine = QueryEngine(EXFIL_QUERY)
        alerts = engine.execute(ListStream(_exfil_events(agentid="desktop")))
        assert alerts == []

    def test_missing_step_prevents_detection(self):
        engine = QueryEngine(EXFIL_QUERY)
        events = _exfil_events()
        del events[2]  # the dump is never read by the malware
        assert engine.execute(ListStream(events)) == []

    def test_distinct_suppresses_duplicate_alerts(self):
        engine = QueryEngine(EXFIL_QUERY)
        events = _exfil_events()
        # A second exfiltration write produces the same projected values.
        extra = make_event(make_process("sbblv.exe", 4), Operation.WRITE,
                           make_connection("203.0.113.129"), 50.0,
                           agentid="db-server", amount=1e6)
        alerts = engine.execute(ListStream(events + [extra]))
        assert len(alerts) == 1

    def test_benign_background_produces_no_alerts(self):
        engine = QueryEngine(EXFIL_QUERY)
        benign = [
            make_event(make_process("sqlservr.exe", 3), Operation.WRITE,
                       make_file("D:/data/enterprise.ldf"), float(t),
                       agentid="db-server", amount=1000)
            for t in range(50)
        ]
        assert engine.execute(ListStream(benign)) == []

    def test_alerts_are_sent_to_sink(self):
        sink = CollectingSink()
        engine = QueryEngine(EXFIL_QUERY, sink=sink)
        engine.execute(ListStream(_exfil_events()))
        assert len(sink) == 1

    def test_events_processed_counter(self):
        engine = QueryEngine(EXFIL_QUERY)
        engine.execute(ListStream(_exfil_events()))
        assert engine.events_processed == 4
        assert engine.alerts_emitted == 1


class TestRuleQueryWithAlertClause:
    QUERY = '''
proc p["%sbblv.exe"] write ip i as evt
alert evt.amount > 1000000
return p, i, evt.amount
'''

    def test_alert_condition_filters_matches(self):
        engine = QueryEngine(self.QUERY)
        small = make_event(make_process("sbblv.exe"), Operation.WRITE,
                           make_connection("8.8.8.8"), 1.0, amount=10.0)
        large = make_event(make_process("sbblv.exe"), Operation.WRITE,
                           make_connection("8.8.8.8"), 2.0, amount=5e6)
        alerts = engine.execute(ListStream([small, large]))
        assert len(alerts) == 1
        assert alerts[0].record["evt.amount"] == 5e6


class TestErrorHandling:
    def test_parse_from_string_in_constructor(self):
        engine = QueryEngine("proc p write file f as e\nreturn p, f")
        assert engine.query.model_kind == "rule"

    def test_error_reporter_captures_runtime_errors(self):
        # Indexing an entity is a runtime execution error.
        query = "proc p write file f as e\nreturn p[0]"
        reporter = ErrorReporter()
        engine = QueryEngine(query, error_reporter=reporter)
        event = make_event(make_process("x.exe"), Operation.WRITE,
                           make_file("/x"), 1.0)
        alerts = engine.execute(ListStream([event]))
        assert alerts == []
        assert reporter.has_errors()

    def test_runtime_error_raises_without_reporter(self):
        query = "proc p write file f as e\nreturn p[0]"
        engine = QueryEngine(query)
        event = make_event(make_process("x.exe"), Operation.WRITE,
                           make_file("/x"), 1.0)
        with pytest.raises(Exception):
            engine.execute(ListStream([event]))
