"""Unit tests for the sliding-window assigner."""

import pytest

from repro.core.engine.windows import WindowAssigner, WindowKey
from repro.core.language import ast


def time_spec(length, hop=None):
    return ast.WindowSpec(kind="time", length=float(length), hop=hop)


def count_spec(length):
    return ast.WindowSpec(kind="count", length=float(length))


class TestWindowKey:
    def test_contains(self):
        key = WindowKey(index=1, start=600.0, end=1200.0)
        assert key.contains(600.0)
        assert key.contains(1199.9)
        assert not key.contains(1200.0)
        assert not key.contains(10.0)


class TestTumblingTimeWindows:
    def test_assigns_single_window(self):
        assigner = WindowAssigner(time_spec(600))
        keys = assigner.assign(650.0)
        assert len(keys) == 1
        assert keys[0].start == 600.0
        assert keys[0].end == 1200.0

    def test_boundary_belongs_to_next_window(self):
        assigner = WindowAssigner(time_spec(600))
        keys = assigner.assign(600.0)
        assert keys[0].start == 600.0

    def test_time_zero(self):
        assigner = WindowAssigner(time_spec(600))
        keys = assigner.assign(0.0)
        assert keys[0].index == 0

    def test_is_windowed(self):
        assert WindowAssigner(time_spec(10)).is_windowed
        assert not WindowAssigner(None).is_windowed

    def test_no_spec_assigns_nothing(self):
        assert WindowAssigner(None).assign(123.0) == ()

    def test_tumbling_fast_path_result_is_immutable(self):
        """The cached one-element result must not be caller-corruptible.

        The tumbling fast path returns the *same* container to every call
        that hits the same window.  When that container was a list, a
        caller that mutated or retained-and-extended its result silently
        corrupted every subsequent assignment into the window; a tuple
        makes the aliasing harmless.
        """
        assigner = WindowAssigner(time_spec(600))
        first = assigner.assign(650.0)
        assert isinstance(first, tuple)
        with pytest.raises((TypeError, AttributeError)):
            first.append(WindowKey(index=9, start=0.0, end=1.0))  # type: ignore[attr-defined]
        # The shared cache is untouched by the attempted mutation.
        second = assigner.assign(660.0)
        assert second is first          # the cache is the point
        assert second == (WindowKey(index=1, start=600.0, end=1200.0),)

    def test_all_paths_return_tuples(self):
        assert isinstance(WindowAssigner(time_spec(600)).assign(1.0), tuple)
        assert isinstance(WindowAssigner(time_spec(600, hop=300)).assign(650.0),
                          tuple)
        assert isinstance(WindowAssigner(count_spec(3)).assign(0.0), tuple)
        assert isinstance(WindowAssigner(None).assign(0.0), tuple)


class TestHoppingTimeWindows:
    def test_event_belongs_to_multiple_windows(self):
        assigner = WindowAssigner(time_spec(600, hop=300))
        keys = assigner.assign(650.0)
        starts = [key.start for key in keys]
        assert starts == [300.0, 600.0]

    def test_hop_equal_length_is_tumbling(self):
        assigner = WindowAssigner(time_spec(600, hop=600))
        assert len(assigner.assign(650.0)) == 1

    def test_effective_hop_defaults_to_length(self):
        assert time_spec(600).effective_hop == 600.0
        assert time_spec(600, hop=60).effective_hop == 60.0


class TestCountWindows:
    def test_every_n_events_forms_a_window(self):
        assigner = WindowAssigner(count_spec(3))
        indices = [assigner.assign(float(i))[0].index for i in range(7)]
        assert indices == [0, 0, 0, 1, 1, 1, 2]

    def test_count_window_bounds(self):
        assigner = WindowAssigner(count_spec(5))
        key = assigner.assign(99.0)[0]
        assert key.start == 0.0
        assert key.end == 5.0


class TestClosedBefore:
    def test_closed_before_returns_due_windows_sorted(self):
        assigner = WindowAssigner(time_spec(600))
        windows = [WindowKey(1, 600.0, 1200.0), WindowKey(0, 0.0, 600.0),
                   WindowKey(2, 1200.0, 1800.0)]
        due = assigner.closed_before(windows, watermark=1200.0)
        assert [key.index for key in due] == [0, 1]

    def test_closed_before_none_due(self):
        assigner = WindowAssigner(time_spec(600))
        windows = [WindowKey(0, 0.0, 600.0)]
        assert assigner.closed_before(windows, watermark=10.0) == []
