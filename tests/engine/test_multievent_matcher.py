"""Unit tests for the multievent (sequence) matcher."""

import pytest

from repro.core.engine.multievent_matcher import MultieventMatcher
from repro.core.language.parser import parse
from repro.core.language.analyzer import analyze_query
from repro.events.event import Operation
from tests.conftest import make_connection, make_event, make_file, make_process

SEQUENCE_QUERY = '''
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
proc p4["%sbblv.exe"] read file f1 as evt3
with evt1 -> evt2 -> evt3
return p1, p2, p3, f1, p4
'''


def _matcher(text=SEQUENCE_QUERY, **kwargs):
    query = parse(text)
    analyze_query(query)
    return MultieventMatcher(query, **kwargs)


def _attack_events(file_name="/db/backup1.dmp", start=0.0):
    cmd = make_process("cmd.exe", 1)
    osql = make_process("osql.exe", 2)
    sqlservr = make_process("sqlservr.exe", 3)
    sbblv = make_process("sbblv.exe", 4)
    dump = make_file(file_name)
    return [
        make_event(cmd, Operation.START, osql, start + 1),
        make_event(sqlservr, Operation.WRITE, dump, start + 2),
        make_event(sbblv, Operation.READ, dump, start + 3),
    ]


class TestOrderedSequences:
    def test_full_sequence_completes(self):
        matcher = _matcher()
        completed = []
        for event in _attack_events():
            completed.extend(matcher.process_event(event))
        assert len(completed) == 1
        assert set(completed[0].events) == {"evt1", "evt2", "evt3"}

    def test_out_of_order_does_not_complete(self):
        matcher = _matcher()
        events = _attack_events()
        reordered = [events[1], events[0], events[2]]
        completed = []
        for event in reordered:
            completed.extend(matcher.process_event(event))
        assert completed == []

    def test_shared_file_variable_must_bind_same_entity(self):
        matcher = _matcher()
        events = _attack_events()
        # The exfiltration reads a *different* dump file: no match.
        other_read = make_event(make_process("sbblv.exe", 4), Operation.READ,
                                make_file("/db/other_backup1.dmp"), 5.0)
        completed = []
        for event in [events[0], events[1], other_read]:
            completed.extend(matcher.process_event(event))
        assert completed == []

    def test_sequence_timestamp_is_last_event(self):
        matcher = _matcher()
        completed = []
        for event in _attack_events(start=100.0):
            completed.extend(matcher.process_event(event))
        assert completed[0].timestamp == 103.0

    def test_bindings_are_merged_across_matches(self):
        matcher = _matcher()
        completed = []
        for event in _attack_events():
            completed.extend(matcher.process_event(event))
        bindings = completed[0].bindings
        assert set(bindings) == {"p1", "p2", "p3", "p4", "f1"}

    def test_expired_partial_sequences_are_dropped(self):
        matcher = _matcher(horizon=10.0)
        events = _attack_events()
        matcher.process_event(events[0])
        # Much later than the horizon: the partial sequence has expired.
        late = make_event(make_process("sqlservr.exe", 3), Operation.WRITE,
                          make_file("/db/backup1.dmp"), 1000.0)
        matcher.process_event(late)
        final = make_event(make_process("sbblv.exe", 4), Operation.READ,
                           make_file("/db/backup1.dmp"), 1001.0)
        assert matcher.process_event(final) == []

    def test_pending_sequences_bounded(self):
        matcher = _matcher(max_partial_sequences=5)
        cmd = make_process("cmd.exe", 1)
        for index in range(20):
            osql = make_process("osql.exe", 100 + index)
            matcher.process_event(
                make_event(cmd, Operation.START, osql, float(index)))
        assert matcher.pending_sequences <= 5


class TestUnorderedQueries:
    UNORDERED = '''
proc p1["%a.exe"] write file f1 as e1
proc p2["%b.exe"] write file f2 as e2
return p1, p2
'''

    def test_any_order_completes(self):
        matcher = _matcher(self.UNORDERED)
        first = make_event(make_process("b.exe", 2), Operation.WRITE,
                           make_file("/2"), 1.0)
        second = make_event(make_process("a.exe", 1), Operation.WRITE,
                            make_file("/1"), 2.0)
        completed = []
        for event in (first, second):
            completed.extend(matcher.process_event(event))
        assert len(completed) == 1

    def test_single_pattern_completes_immediately(self):
        matcher = _matcher("proc p write file f as e\nreturn p")
        event = make_event(make_process("x.exe"), Operation.WRITE,
                           make_file("/x"), 1.0)
        assert len(matcher.process_event(event)) == 1
