"""Unit tests for single-pattern matching and constraint checks."""

import pytest

from repro.core.engine.matching import (
    PatternMatcher,
    check_constraint,
    check_global_constraint,
    entity_matches,
)
from repro.core.language import ast
from repro.core.language.parser import parse
from repro.events.event import Operation
from tests.conftest import make_connection, make_event, make_file, make_process


def _query(text):
    return parse(text)


class TestConstraintChecks:
    def test_default_attribute_like(self):
        constraint = ast.AttributeConstraint(attr=None, op="like",
                                             value="%cmd.exe")
        assert check_constraint(make_process("cmd.exe"), constraint)
        assert not check_constraint(make_process("powershell.exe"),
                                    constraint)

    def test_named_attribute_equality(self):
        constraint = ast.AttributeConstraint(attr="dstip", op="==",
                                             value="203.0.113.129")
        assert check_constraint(make_connection("203.0.113.129"), constraint)
        assert not check_constraint(make_connection("8.8.8.8"), constraint)

    def test_numeric_comparison_constraint(self):
        constraint = ast.AttributeConstraint(attr="dstport", op=">",
                                             value=1000)
        assert check_constraint(make_connection("1.2.3.4", dstport=8080),
                                constraint)
        assert not check_constraint(make_connection("1.2.3.4", dstport=80),
                                    constraint)

    def test_global_constraint_on_agentid(self):
        constraint = ast.GlobalConstraint(attr="agentid", op="==",
                                          value="db-server")
        event = make_event(make_process("a.exe"), Operation.WRITE,
                           make_file("/x"), 1.0, agentid="db-server")
        assert check_global_constraint(event, constraint)

    def test_global_constraint_falls_back_to_subject(self):
        constraint = ast.GlobalConstraint(attr="exe_name", op="==",
                                          value="a.exe")
        event = make_event(make_process("a.exe"), Operation.WRITE,
                           make_file("/x"), 1.0)
        assert check_global_constraint(event, constraint)

    def test_entity_matches_checks_type(self):
        declaration = ast.EntityDeclaration(entity_type="file", variable="f")
        assert entity_matches(make_file("/x"), declaration)
        assert not entity_matches(make_process("x.exe"), declaration)


class TestPatternMatcher:
    QUERY = '''
agentid = "db-server"
proc p1["%sqlservr.exe"] write file f1["%backup%"] as evt1
proc p2["%sbblv.exe"] read || write ip i1 as evt2
return p1, f1, p2, i1
'''

    def _matcher(self):
        return PatternMatcher(_query(self.QUERY))

    def test_event_matching_first_pattern(self):
        matcher = self._matcher()
        event = make_event(make_process("sqlservr.exe"), Operation.WRITE,
                           make_file("/backup/1.dmp"), 1.0)
        matches = matcher.match_event(event)
        assert len(matches) == 1
        assert matches[0].alias == "evt1"

    def test_bindings_capture_entities(self):
        matcher = self._matcher()
        proc = make_process("sqlservr.exe")
        file = make_file("/backup/1.dmp")
        event = make_event(proc, Operation.WRITE, file, 1.0)
        match = matcher.match_event(event)[0]
        assert match.bindings["p1"] == proc
        assert match.bindings["f1"] == file

    def test_wrong_agent_fails_global_constraint(self):
        matcher = self._matcher()
        event = make_event(make_process("sqlservr.exe"), Operation.WRITE,
                           make_file("/backup/1.dmp"), 1.0,
                           agentid="other-host")
        assert matcher.match_event(event) == []

    def test_operation_alternation(self):
        matcher = self._matcher()
        conn = make_connection("8.8.8.8")
        for operation in (Operation.READ, Operation.WRITE):
            event = make_event(make_process("sbblv.exe"), operation, conn,
                               1.0)
            assert len(matcher.match_event(event)) == 1

    def test_non_listed_operation_rejected(self):
        matcher = self._matcher()
        event = make_event(make_process("sbblv.exe"), Operation.CONNECT,
                           make_connection("8.8.8.8"), 1.0)
        assert matcher.match_event(event) == []

    def test_wrong_object_type_rejected(self):
        matcher = self._matcher()
        event = make_event(make_process("sqlservr.exe"), Operation.WRITE,
                           make_connection("8.8.8.8"), 1.0)
        assert matcher.match_event(event) == []

    def test_statistics_and_selectivity(self):
        matcher = self._matcher()
        matching = make_event(make_process("sqlservr.exe"), Operation.WRITE,
                              make_file("/backup/1.dmp"), 1.0)
        non_matching = make_event(make_process("explorer.exe"),
                                  Operation.WRITE, make_file("/tmp/x"), 2.0)
        matcher.match_event(matching)
        matcher.match_event(non_matching)
        assert matcher.events_seen == 2
        assert matcher.events_matched == 1
        assert matcher.selectivity == 0.5

    def test_selectivity_with_no_events(self):
        assert self._matcher().selectivity == 0.0

    def test_event_can_match_multiple_patterns(self):
        query = _query("proc a write file f as e1\n"
                       "proc b write file g as e2\nreturn a")
        matcher = PatternMatcher(query)
        event = make_event(make_process("x.exe"), Operation.WRITE,
                           make_file("/x"), 1.0)
        assert len(matcher.match_event(event)) == 2
