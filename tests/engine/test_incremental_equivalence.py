"""Incremental-vs-recompute equivalence for window aggregation.

The incremental aggregation runtime (streaming accumulators, pane sharing
for overlapping windows, match-buffer elision) is a pure performance
artifact: for every query and every stream it must produce the same
alerts — and the same ``WindowState.fields`` within float tolerance — as
the buffered-recompute path, whose ``compiled=False`` variant is the
AST-walking interpreter oracle.

The property suite drives randomized (hypothesis) streams through three
engines per query — incremental (the default), compiled-buffered
(``incremental=False``) and the interpreter (``compiled=False``) — across
tumbling windows, sliding hop < length windows and unwindowed (rule)
queries, with the full aggregation battery including ``percentile``,
``stddev`` and empty-group / all-missing-value edges.  Amounts are drawn
as integers so every aggregation except ``stddev`` is float-exact
regardless of how pane merging associates the additions; ``stddev``
(Welford vs the interpreter's two-pass formula) is compared within
tolerance.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QueryEngine
from repro.core.engine.state import StateMaintainer, _pane_geometry
from repro.core.language import ast, parse_query
from repro.events.stream import ListStream
from tests.conftest import make_connection, make_event, make_process
from repro.events.event import Operation

# Aggregation battery: every streaming accumulator kind, plus scalar
# combinations over aggregation results and a per-record reference that
# resolves against the representative match.
STATE_DEFINITIONS = """
state[2] ss {{
  cnt := count(evt.extra)
  total := sum(evt.extra)
  mean := avg(evt.extra)
  lo := min(evt.extra)
  hi := max(evt.extra)
  sd := stddev(evt.extra)
  med := median(evt.extra)
  p90 := percentile(evt.extra, 90)
  peers := set(i.dstip)
  npeers := distinct_count(i.dstip)
  head := first(evt.extra)
  tail := last(evt.extra)
  span := max(evt.extra) - min(evt.extra)
  who := p
}}{group_by}
"""

RETURNS = ("return p, ss[0].cnt, ss[0].total, ss[0].mean, ss[0].lo, "
           "ss[0].hi, ss[0].sd, ss[0].med, ss[0].p90, ss[0].peers, "
           "ss[0].npeers, ss[0].head, ss[0].tail, ss[0].span, ss[0].who, "
           "ss[1].total")


def stateful_query(window: str, group_by: str = " group by p") -> str:
    return (f"proc p write ip i as evt {window}\n"
            + STATE_DEFINITIONS.format(group_by=group_by)
            + "alert ss[0].cnt >= 0\n"  # fires per closed group: exposes
                                        # every field for comparison
            + RETURNS)


WINDOWS = [
    "#time(60)",            # tumbling
    "#time(80, 10)",        # sliding, hop = length/8 (pane = hop)
    "#time(60, 25)",        # sliding, gcd(hop, length) = 5 < hop
    "#time(30, 45)",        # gapped (hop > length): dead time between windows
]

EXES = ["sql.exe", "web.exe", "idle.exe"]
IPS = ["10.0.0.1", "10.0.0.2", "10.0.0.3"]


@st.composite
def event_streams(draw):
    """Monotone streams with integer timestamps/amounts and missing values.

    ``extra`` is the aggregated attribute: None models a missing
    monitoring field, and the exe ``idle.exe`` *never* carries it, giving
    whole groups whose numeric aggregations see no values.
    """
    count = draw(st.integers(min_value=1, max_value=90))
    deltas = draw(st.lists(st.integers(min_value=0, max_value=30),
                           min_size=count, max_size=count))
    choices = draw(st.lists(
        st.tuples(st.sampled_from(EXES), st.sampled_from(IPS),
                  st.one_of(st.none(),
                            st.integers(min_value=0, max_value=10**6))),
        min_size=count, max_size=count))
    events = []
    timestamp = 0
    for delta, (exe, dstip, extra) in zip(deltas, choices):
        timestamp += delta
        attrs = {}
        if extra is not None and exe != "idle.exe":
            attrs["extra"] = extra
        events.append(make_event(
            make_process(exe, pid=1), Operation.WRITE,
            make_connection(dstip), float(timestamp), **attrs))
    return events


def run_engine(query_text, events, **kwargs):
    engine = QueryEngine(query_text, **kwargs)
    engine.execute(ListStream(events, presorted=True))
    return engine


def alert_rows(engine):
    return [(alert.timestamp, alert.group_key, alert.window_start,
             alert.window_end, alert.agentid, alert.data)
            for alert in engine.alerts]


def assert_rows_match(fast_rows, slow_rows):
    assert len(fast_rows) == len(slow_rows)
    for fast, slow in zip(fast_rows, slow_rows):
        assert fast[:5] == slow[:5]
        fast_data, slow_data = fast[5], slow[5]
        assert len(fast_data) == len(slow_data)
        for (fast_label, fast_value), (slow_label, slow_value) in zip(
                fast_data, slow_data):
            assert fast_label == slow_label
            # Numeric fields compare within tolerance across int/float:
            # Welford stddev can land within one ulp of an integer, which
            # _projectable then normalizes to int in one mode only.
            if (isinstance(fast_value, (int, float))
                    and isinstance(slow_value, (int, float))
                    and not isinstance(fast_value, bool)
                    and not isinstance(slow_value, bool)):
                assert math.isclose(fast_value, slow_value,
                                    rel_tol=1e-9, abs_tol=1e-9), (
                    fast_label, fast_value, slow_value)
            else:
                assert fast_value == slow_value, (
                    fast_label, fast_value, slow_value)


@pytest.mark.parametrize("window", WINDOWS)
@pytest.mark.parametrize("group_by", [" group by p", " group by i.dstip", ""])
@settings(max_examples=25, deadline=None)
@given(events=event_streams())
def test_incremental_matches_interpreter_and_buffered(window, group_by,
                                                      events):
    """Alert-for-alert parity across all three execution modes."""
    text = stateful_query(window, group_by)
    incremental = run_engine(text, events)
    buffered = run_engine(text, events, incremental=False)
    interpreted = run_engine(text, events, compiled=False)
    # The incremental engine must actually be incremental for the claim
    # to mean anything.
    assert incremental._state_maintainer.incremental
    assert not buffered._state_maintainer.incremental
    rows = alert_rows(incremental)
    assert_rows_match(rows, alert_rows(buffered))
    assert_rows_match(rows, alert_rows(interpreted))


@settings(max_examples=25, deadline=None)
@given(events=event_streams())
def test_unwindowed_rule_query_equivalence(events):
    """Rule (unwindowed) queries: compiled path vs interpreter oracle."""
    text = ('proc p write ip i["10.0.0.1"] as evt\n'
            "alert evt.extra > 1000\n"
            "return p, i.dstip, evt.extra")
    assert (alert_rows(run_engine(text, events))
            == alert_rows(run_engine(text, events, compiled=False)))


@settings(max_examples=20, deadline=None)
@given(events=event_streams())
def test_sliding_elision_never_buffers_more_than_buffered_mode(events):
    """Elision retains at most one representative per open bucket group."""
    text = stateful_query("#time(80, 10)")
    incremental = run_engine(text, events)
    buffered = run_engine(text, events, incremental=False)
    assert (incremental.state_peak_buffered_matches
            <= buffered.state_peak_buffered_matches)
    # No per-window match lists may exist under elision.
    assert not incremental._state_maintainer._pending


# ---------------------------------------------------------------------------
# Deterministic edges the random streams may miss
# ---------------------------------------------------------------------------

def _events_at(timestamps, extras=None, exe="sql.exe", dstip="10.0.0.1"):
    events = []
    for position, timestamp in enumerate(timestamps):
        attrs = {}
        if extras is not None and extras[position] is not None:
            attrs["extra"] = extras[position]
        events.append(make_event(make_process(exe, pid=1), Operation.WRITE,
                                 make_connection(dstip), float(timestamp),
                                 **attrs))
    return events


def test_out_of_order_events_within_open_windows():
    """Late events (still inside open windows) agree across modes."""
    text = stateful_query("#time(40, 10)")
    events = _events_at([12, 5, 31, 18, 55, 41, 90],
                        extras=[5, None, 7, 2, 9, None, 1])
    rows = alert_rows(run_engine(text, events))
    assert_rows_match(rows, alert_rows(run_engine(text, events,
                                                  incremental=False)))
    assert_rows_match(rows, alert_rows(run_engine(text, events,
                                                  compiled=False)))


def test_out_of_order_multi_group_emission_order():
    """Groups of one window emit in first-arrival order, not pane order.

    A web.exe match arriving *before* an older sql.exe match means the
    buffered path's group dict inserts web first for the windows both
    fall into; pane-index iteration would yield sql first.  Order matters
    downstream (alert streams, and clustering seeds centroids from the
    states list).
    """
    text = stateful_query("#time(40, 10)")
    events = []
    for timestamp, exe, extra in [(5, "sql.exe", 1), (32, "web.exe", 2),
                                  (26, "sql.exe", 3), (48, "web.exe", 4),
                                  (44, "sql.exe", 5), (95, "sql.exe", 6)]:
        events.append(make_event(make_process(exe, pid=1), Operation.WRITE,
                                 make_connection("10.0.0.1"),
                                 float(timestamp), extra=extra))
    rows = alert_rows(run_engine(text, events))
    assert_rows_match(rows, alert_rows(run_engine(text, events,
                                                  incremental=False)))
    assert_rows_match(rows, alert_rows(run_engine(text, events,
                                                  compiled=False)))


def test_int_valued_window_spec_fields():
    """Programmatically built specs may carry ints (py3.11: no
    int.is_integer); pane geometry must still engage."""
    from repro.core.engine.state import _pane_geometry
    spec = ast.WindowSpec(kind="time", length=480, hop=60)
    assert _pane_geometry(spec) == (60.0, 1, 8)


def test_fractional_second_windows_fall_back_but_stay_equivalent():
    """Boundary timestamps on fractional-second windows keep parity.

    With #time(0.5, 0.3) an event at t=0.3 belongs to windows {0, 1} per
    the assigner's float math, but a 0.1s pane grid would bin it into a
    pane covering window 0 only (3 * 0.1 > 0.3); such geometry must take
    the per-window bucket path instead of pane sharing.
    """
    text = stateful_query("#time(0.5, 0.3)")
    events = _events_at([0.0, 0.3, 0.45, 0.6, 2.0],
                        extras=[1, 2, 3, 4, 5])
    engine = run_engine(text, events)
    assert engine._state_maintainer.incremental
    assert not engine._state_maintainer.shares_panes
    rows = alert_rows(engine)
    assert_rows_match(rows, alert_rows(run_engine(text, events,
                                                  compiled=False)))


def test_count_windows_stay_equivalent():
    """Count-based windows use per-window buckets, still incremental."""
    text = stateful_query("#count(4)")
    events = _events_at(range(0, 40, 3),
                        extras=[k if k % 3 else None for k in range(14)])
    engine = run_engine(text, events)
    assert engine._state_maintainer.incremental
    assert not engine._state_maintainer.shares_panes
    rows = alert_rows(engine)
    assert_rows_match(rows, alert_rows(run_engine(text, events,
                                                  compiled=False)))


def test_pane_geometry_selection():
    def spec(length, hop=None, kind="time"):
        return ast.WindowSpec(kind=kind, length=float(length), hop=hop)

    assert _pane_geometry(spec(80, 10.0)) == (10.0, 1, 8)
    assert _pane_geometry(spec(60, 25.0)) == (5.0, 5, 12)
    assert _pane_geometry(spec(60)) is None            # tumbling
    assert _pane_geometry(spec(30, 45.0)) is None      # gapped
    assert _pane_geometry(spec(4, 2.0, kind="count")) is None
    assert _pane_geometry(None) is None
    # Fractional-second geometry falls back to per-window buckets: its
    # pane boundaries would not be float-exact against i * hop.
    assert _pane_geometry(spec(1.5, 0.5)) is None
    assert _pane_geometry(spec(0.5, 0.3)) is None


def test_pane_geometry_fallback_boundary_hop_half_vs_one():
    """The exact fallback edge: hop=0.5 falls back, hop=1 shares panes.

    Same window length, the only difference the integral-second rule —
    the smallest change that flips the pane-sharing decision.
    """
    def spec(length, hop):
        return ast.WindowSpec(kind="time", length=float(length), hop=hop)

    assert _pane_geometry(spec(4, 0.5)) is None
    assert _pane_geometry(spec(4, 1.0)) == (1.0, 1, 4)
    # Length fractional with integral hop also falls back: both fields
    # must be integral for boundaries to be float-exact.
    assert _pane_geometry(spec(4.5, 1.0)) is None


@pytest.mark.parametrize("window", ["#time(4, 0.5)", "#time(4, 1)"])
def test_order_stats_on_all_missing_groups_at_fallback_boundary(window):
    """median/percentile over all-missing groups: 3-mode parity either
    side of the pane-sharing fallback edge (hop=0.5 vs hop=1).

    ``idle.exe`` never carries the aggregated attribute, so its group's
    order-statistic accumulators finalize over an empty value buffer —
    ``agg_median``/``agg_percentile`` must produce the interpreter's 0.0,
    not raise — while ``sql.exe`` interleaves at window-boundary
    timestamps to stress the containment math on both paths.
    """
    text = stateful_query(window)
    timestamps = [0.0, 0.5, 1.0, 2.0, 3.5, 4.0, 4.5, 8.0, 12.0]
    events = []
    for position, timestamp in enumerate(timestamps):
        exe = "idle.exe" if position % 2 == 0 else "sql.exe"
        extra = None if exe == "idle.exe" else position * 10
        attrs = {} if extra is None else {"extra": extra}
        events.append(make_event(make_process(exe, pid=1), Operation.WRITE,
                                 make_connection("10.0.0.1"),
                                 timestamp, **attrs))
    incremental = run_engine(text, events)
    assert incremental._state_maintainer.incremental
    # hop=1 shares panes, hop=0.5 takes the per-window fallback: the
    # parity claim is only meaningful if the modes actually differ.
    assert incremental._state_maintainer.shares_panes == (window
                                                          == "#time(4, 1)")
    rows = alert_rows(incremental)
    assert rows  # the all-missing idle.exe group must still emit
    assert_rows_match(rows, alert_rows(run_engine(text, events,
                                                  incremental=False)))
    assert_rows_match(rows, alert_rows(run_engine(text, events,
                                                  compiled=False)))


def test_order_stat_accumulator_empty_buffer_matches_reducers():
    """An all-missing group's order-stat accumulators mirror the empty-
    sequence reducers exactly (0.0, not an error)."""
    from repro.core.compile.accumulators import _OrderStatAcc
    from repro.core.expr import functions

    median_acc = _OrderStatAcc(None)
    median_acc.add(None, 0)  # missing values never enter the buffer
    assert median_acc.result() == functions.agg_median([]) == 0.0
    percentile_acc = _OrderStatAcc(90.0)
    percentile_acc.add(None, 0)
    assert percentile_acc.result() == functions.agg_percentile([], 90.0) == 0.0


def test_unstreamable_state_blocks_fall_back_to_buffered():
    indexed = parse_query(
        "proc p write ip i as evt #time(60)\n"
        "state ss { odd := sum(evt.extra) }\n"
        "alert ss.odd >= 0\nreturn ss.odd")
    assert StateMaintainer(indexed).incremental
    for definitions in (
            "nested := sum(avg(evt.extra))",     # nested aggregation
            "param := percentile(evt.extra, 9, 9)",  # bad arity
    ):
        query = parse_query(
            "proc p write ip i as evt #time(60)\n"
            "state ss { " + definitions + " }\n"
            "alert 1 > 0\nreturn p")
        maintainer = StateMaintainer(query)
        assert not maintainer.incremental
        # The buffered fallback still runs end to end (errors surface at
        # close through the engine's reporter, as before).
        engine = QueryEngine(query)
        assert not engine._state_maintainer.incremental
    # Constructs the analyzer rejects in query text still lower safely
    # when a state block is built programmatically.
    from repro.core.compile.accumulators import compile_accumulator_plan
    agg = ast.FuncCall(name="sum", args=(ast.AttributeRef(
        base=ast.Identifier("evt"), attr="extra"),))
    for expr in (
            ast.FuncCall(name="mystery", args=(agg,)),  # unknown function
            ast.IndexRef(base=agg, index=ast.Literal(0)),  # indexing
            ast.BinaryOp(op="??", left=agg, right=ast.Literal(1)),
            ast.FuncCall(name="sum", args=(agg,),
                         kwargs=(("k", ast.Literal(1)),)),
    ):
        block = ast.StateBlock(name="ss", history=1, definitions=(
            ast.StateDefinition(name="x", expr=expr),))
        assert compile_accumulator_plan(block) is None


def test_buffered_match_counter_balances_when_close_raises():
    """A state definition raising at close must not leak retained-match
    accounting (the lists leave _pending whether or not state computes)."""
    from repro.core.engine.error_reporter import ErrorReporter

    text = ("proc p write ip i as evt #time(10)\n"
            "state ss { bad := sum(evt.extra.sub) }\n"
            "alert 1 > 0\nreturn p")
    reporter = ErrorReporter()
    for kwargs in ({"incremental": False}, {}):
        engine = QueryEngine(text, error_reporter=reporter, **kwargs)
        engine.execute(ListStream(
            _events_at([1, 4, 12, 25], extras=["boom"] * 4),
            presorted=True))
        assert reporter.has_errors()
        assert engine.state_buffered_matches == 0


def test_forced_buffered_mode_flag():
    query = parse_query(stateful_query("#time(80, 10)"))
    assert StateMaintainer(query, incremental=False).incremental is False
    assert StateMaintainer(query, compiled=False).incremental is False
    maintainer = StateMaintainer(query)
    assert maintainer.incremental and maintainer.shares_panes
    assert maintainer.pane_size == 10.0
