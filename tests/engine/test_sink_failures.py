"""Alert-sink failure hardening: a raising sink must not kill the run.

The contract (PR 8 satellite): a sink callback that raises is routed
through the error-reporting path — recorded as a fatal error against
the emitting query, alert preserved in the engine's ledger — and, under
a scheduler with a quarantine budget, a persistently failing sink trips
the same circuit-breaker a crashing closure would.
"""

from __future__ import annotations

import pytest

from repro.core.engine.alerts import CallbackSink, CollectingSink
from repro.core.engine.error_reporter import ErrorReporter
from repro.core.engine.query_engine import QueryEngine
from repro.core.language import parse_query
from repro.core.scheduler.concurrent import ConcurrentQueryScheduler
from repro.events.entities import NetworkEntity, ProcessEntity
from repro.events.event import Event, Operation

QUERY = """
proc p send ip i as evt #time(10)
state ss { t := sum(evt.amount) } group by evt.agentid
alert ss.t > 100
return ss.t"""


def send_event(index: int, host: str = "h1") -> Event:
    return Event(subject=ProcessEntity.make("x.exe", pid=2, host=host),
                 operation=Operation.SEND,
                 obj=NetworkEntity.make("10.0.0.1", "10.0.0.2", dstport=443),
                 timestamp=float(index), agentid=host, amount=50.0,
                 event_id=index + 1)


def raising_sink() -> CallbackSink:
    def boom(alert):
        raise RuntimeError("sink exploded")
    return CallbackSink(boom)


class TestEngineSinkFailure:
    def test_reported_not_raised_with_reporter(self):
        reporter = ErrorReporter()
        engine = QueryEngine(parse_query(QUERY), name="q",
                             sink=raising_sink(), error_reporter=reporter)
        for index in range(40):
            engine.process_event(send_event(index))
        engine.finish()
        # The stream survived, the alerts are all in the ledger, and
        # every failed emission was recorded as fatal against the query.
        assert len(engine.alerts) >= 3
        assert reporter.fatal_count("q") == len(engine.alerts)
        assert all(record.fatal for record in reporter.records)

    def test_raises_without_reporter(self):
        engine = QueryEngine(parse_query(QUERY), name="q",
                             sink=raising_sink())
        with pytest.raises(RuntimeError, match="sink exploded"):
            for index in range(40):
                engine.process_event(send_event(index))

    def test_alert_ledger_keeps_alert_despite_sink_failure(self):
        reporter = ErrorReporter()
        engine = QueryEngine(parse_query(QUERY), name="q",
                             sink=raising_sink(), error_reporter=reporter)
        for index in range(40):
            engine.process_event(send_event(index))
        healthy = CollectingSink()
        for alert in engine.alerts:
            healthy.emit(alert)  # the ledger makes redelivery possible
        assert len(healthy) == len(engine.alerts)


class TestSchedulerSinkQuarantine:
    def test_persistent_sink_failure_trips_quarantine(self):
        scheduler = ConcurrentQueryScheduler(sink=raising_sink(),
                                             quarantine_errors=2)
        scheduler.add_query(QUERY, name="q")
        events = [send_event(index) for index in range(80)]
        for start in range(0, len(events), 8):
            scheduler.process_events(events[start:start + 8])
        assert "q" in scheduler.quarantined
        assert scheduler.quarantined["q"]["errors"] >= 2
        assert scheduler.stats.quarantined["q"] >= 2

    def test_sink_failures_do_not_quarantine_without_budget(self):
        scheduler = ConcurrentQueryScheduler(sink=raising_sink())
        scheduler.add_query(QUERY, name="q")
        events = [send_event(index) for index in range(40)]
        scheduler.process_events(events)
        assert scheduler.quarantined == {}
        assert scheduler.error_reporter.fatal_count("q") >= 1

    def test_healthy_queries_keep_alerting_after_sink_quarantine(self):
        """One query with a poisoned sink; the other keeps delivering."""
        collected = CollectingSink()

        def selective_boom(alert):
            if alert.query_name == "poisoned":
                raise RuntimeError("sink rejects this query")
            collected.emit(alert)

        scheduler = ConcurrentQueryScheduler(sink=CallbackSink(selective_boom),
                                             quarantine_errors=2)
        scheduler.add_query(QUERY, name="poisoned")
        scheduler.add_query(QUERY, name="healthy")
        events = [send_event(index) for index in range(120)]
        for start in range(0, len(events), 8):
            scheduler.process_events(events[start:start + 8])
        scheduler.finish()
        assert "poisoned" in scheduler.quarantined
        assert "healthy" not in scheduler.quarantined
        assert all(alert.query_name == "healthy" for alert in collected)
        assert len(collected) >= 3