"""Unit tests for invariant training and checking."""

import pytest

from repro.core.engine.invariant import InvariantMaintainer
from repro.core.engine.state import StateHistory, WindowState
from repro.core.engine.windows import WindowKey
from repro.core.language import parse_query

QUERY = '''
proc p1["%apache%"] start proc p2 as evt #time(10 s)
state ss {
  children := set(p2.exe_name)
} group by p1
invariant[TRAINING][MODE] {
  known := empty_set
  known = known union ss.children
}
alert |ss.children diff known| > 0
return p1, ss.children
'''


def _maintainer(training=2, mode="offline"):
    text = QUERY.replace("TRAINING", str(training)).replace("MODE", mode)
    query = parse_query(text)
    return InvariantMaintainer(query.invariant, query.state.name), query


def _history_with(children, window_index=0):
    history = StateHistory(1)
    history.push(WindowState(
        group_key="apache.exe",
        window=WindowKey(window_index, window_index * 10.0,
                         (window_index + 1) * 10.0),
        fields={"children": frozenset(children)}))
    return history


class TestInitialization:
    def test_initial_values_from_init_statements(self):
        maintainer, _ = _maintainer()
        assert maintainer.values_for("apache.exe") == {"known": frozenset()}

    def test_training_windows_and_mode(self):
        maintainer, _ = _maintainer(training=7, mode="online")
        assert maintainer.training_windows == 7
        assert maintainer.mode == "online"

    def test_groups_are_independent(self):
        maintainer, _ = _maintainer()
        maintainer.observe_window("a", _history_with({"x.exe"}))
        assert maintainer.values_for("a")["known"] == frozenset({"x.exe"})
        assert maintainer.values_for("b")["known"] == frozenset()
        assert maintainer.group_count == 2


class TestOfflineTraining:
    def test_training_absorbs_observations(self):
        maintainer, _ = _maintainer(training=2)
        assert maintainer.observe_window("g", _history_with({"php.exe"}))
        assert maintainer.observe_window("g", _history_with({"cgi.exe"}))
        assert maintainer.values_for("g")["known"] == frozenset(
            {"php.exe", "cgi.exe"})

    def test_is_training_flag(self):
        maintainer, _ = _maintainer(training=1)
        assert maintainer.is_training("g")
        maintainer.observe_window("g", _history_with({"php.exe"}))
        assert not maintainer.is_training("g")

    def test_offline_freezes_after_training(self):
        maintainer, _ = _maintainer(training=1)
        maintainer.observe_window("g", _history_with({"php.exe"}))
        # Post-training windows are *not* absorbed in offline mode.
        was_training = maintainer.observe_window(
            "g", _history_with({"malware.exe"}))
        assert was_training is False
        assert maintainer.values_for("g")["known"] == frozenset({"php.exe"})


class TestOnlineTraining:
    def test_online_keeps_absorbing_after_training(self):
        maintainer, _ = _maintainer(training=1, mode="online")
        maintainer.observe_window("g", _history_with({"php.exe"}))
        maintainer.observe_window("g", _history_with({"malware.exe"}))
        assert maintainer.values_for("g")["known"] == frozenset(
            {"php.exe", "malware.exe"})

    def test_online_still_reports_training_phase(self):
        maintainer, _ = _maintainer(training=2, mode="online")
        assert maintainer.observe_window("g", _history_with({"a"})) is True
        assert maintainer.observe_window("g", _history_with({"b"})) is True
        assert maintainer.observe_window("g", _history_with({"c"})) is False
