"""End-to-end tests of the query engine on stateful queries.

Covers the three advanced anomaly models of the paper: time-series (SMA),
invariant-based, and outlier-based (DBSCAN) queries.
"""

import pytest

from repro.core import QueryEngine
from repro.events.event import Operation
from repro.events.stream import ListStream
from tests.conftest import make_connection, make_event, make_file, make_process

SMA_QUERY = '''
proc p write ip i as evt #time(10 min)
state[3] ss {
  avg_amount := avg(evt.amount)
} group by p
alert (ss[0].avg_amount > (ss[0].avg_amount + ss[1].avg_amount + ss[2].avg_amount) / 3) && (ss[0].avg_amount > 10000)
return p, ss[0].avg_amount, ss[1].avg_amount, ss[2].avg_amount
'''

INVARIANT_QUERY = '''
proc p1["%apache%"] start proc p2 as evt #time(10 s)
state ss {
  set_proc := set(p2.exe_name)
} group by p1
invariant[3][offline] {
  a := empty_set
  a = a union ss.set_proc
}
alert |ss.set_proc diff a| > 0
return p1, ss.set_proc
'''

OUTLIER_QUERY = '''
proc p read || write ip i as evt #time(10 min)
state ss {
  amt := sum(evt.amount)
} group by i.dstip
cluster(points=all(ss.amt), distance="ed", method="DBSCAN(100000, 3)")
alert cluster.outlier && ss.amt > 1000000
return i.dstip, ss.amt
'''


def _network_writes(process, amounts_per_window, window_seconds=600,
                    dstip="8.8.8.8", events_per_window=5):
    """One process writing to one IP, with a given mean amount per window."""
    events = []
    conn = make_connection(dstip)
    for window, amount in enumerate(amounts_per_window):
        for k in range(events_per_window):
            events.append(make_event(
                process, Operation.WRITE, conn,
                timestamp=window * window_seconds + 10 * (k + 1),
                amount=amount))
    return events


class TestTimeSeriesQuery:
    def test_spike_is_detected(self):
        proc = make_process("app.exe", 10)
        events = _network_writes(proc, [1000, 1000, 1000, 1000, 900000])
        alerts = QueryEngine(SMA_QUERY).execute(ListStream(events))
        assert len(alerts) == 1
        record = alerts[0].record
        assert record["p"] == "app.exe"
        assert record["ss[0].avg_amount"] == 900000.0
        assert record["ss[1].avg_amount"] == 1000.0

    def test_steady_traffic_raises_no_alert_once_history_exists(self):
        # Missing past windows count as zero, so the first two windows of a
        # brand-new high-volume group may alert; once the SMA history is
        # populated, steady traffic must stay silent.
        proc = make_process("app.exe", 10)
        events = _network_writes(proc, [50000] * 6)
        alerts = QueryEngine(SMA_QUERY).execute(ListStream(events))
        assert all(alert.window_start < 1200.0 for alert in alerts)
        assert not any(alert.window_start >= 1200.0 for alert in alerts)

    def test_small_spike_below_floor_is_ignored(self):
        proc = make_process("app.exe", 10)
        events = _network_writes(proc, [100, 100, 100, 100, 5000])
        assert QueryEngine(SMA_QUERY).execute(ListStream(events)) == []

    def test_groups_are_independent(self):
        quiet = make_process("quiet.exe", 11)
        noisy = make_process("noisy.exe", 12)
        events = (_network_writes(quiet, [1000] * 5)
                  + _network_writes(noisy, [1000, 1000, 1000, 1000, 500000]))
        alerts = QueryEngine(SMA_QUERY).execute(ListStream(events))
        assert len(alerts) == 1
        assert alerts[0].record["p"] == "noisy.exe"
        assert alerts[0].group_key == "noisy.exe"

    def test_window_metadata_on_alert(self):
        proc = make_process("app.exe", 10)
        events = _network_writes(proc, [1000, 1000, 1000, 1000, 900000])
        alert = QueryEngine(SMA_QUERY).execute(ListStream(events))[0]
        assert alert.window_start == 4 * 600.0
        assert alert.window_end == 5 * 600.0
        assert alert.model_kind == "time-series"


class TestInvariantQuery:
    def _spawn(self, parent, child_name, pid, timestamp):
        child = make_process(child_name, pid)
        return make_event(parent, Operation.START, child, timestamp)

    def test_new_child_after_training_alerts(self):
        apache = make_process("apache.exe", 50)
        events = [self._spawn(apache, "php.exe", 100 + w, w * 10 + 1)
                  for w in range(3)]              # training windows
        events.append(self._spawn(apache, "php.exe", 200, 31))   # benign
        events.append(self._spawn(apache, "malware.exe", 201, 41))
        events.append(self._spawn(apache, "php.exe", 202, 51))
        alerts = QueryEngine(INVARIANT_QUERY).execute(ListStream(events))
        assert len(alerts) == 1
        assert alerts[0].record["ss.set_proc"] == ("malware.exe",)

    def test_no_alert_during_training(self):
        apache = make_process("apache.exe", 50)
        events = [self._spawn(apache, f"child{w}.exe", 100 + w, w * 10 + 1)
                  for w in range(3)]
        assert QueryEngine(INVARIANT_QUERY).execute(ListStream(events)) == []

    def test_known_children_never_alert(self):
        apache = make_process("apache.exe", 50)
        events = [self._spawn(apache, "php.exe", 100 + w, w * 10 + 1)
                  for w in range(8)]
        assert QueryEngine(INVARIANT_QUERY).execute(ListStream(events)) == []

    def test_non_matching_parent_is_ignored(self):
        nginx = make_process("nginx.exe", 60)
        events = [self._spawn(nginx, "sh.exe", 100 + w, w * 10 + 1)
                  for w in range(6)]
        assert QueryEngine(INVARIANT_QUERY).execute(ListStream(events)) == []


class TestOutlierQuery:
    def test_exfiltration_destination_is_outlier(self):
        sql = make_process("sqlservr.exe", 70)
        events = []
        # Twelve destinations with similar volume, one with a huge volume.
        for index in range(12):
            conn = make_connection(f"10.0.2.{index + 10}")
            for k in range(5):
                events.append(make_event(sql, Operation.WRITE, conn,
                                         timestamp=10 * (k + 1) + index,
                                         amount=50000))
        attacker = make_connection("203.0.113.129")
        events.append(make_event(make_process("sbblv.exe", 71),
                                 Operation.WRITE, attacker, timestamp=400,
                                 amount=6e7))
        # An event in the next window closes the first one.
        events.append(make_event(sql, Operation.WRITE,
                                 make_connection("10.0.2.10"),
                                 timestamp=700, amount=50000))
        alerts = QueryEngine(OUTLIER_QUERY).execute(ListStream(events))
        outlier_ips = {alert.record["i.dstip"] for alert in alerts}
        assert outlier_ips == {"203.0.113.129"}

    def test_homogeneous_traffic_has_no_outlier(self):
        sql = make_process("sqlservr.exe", 70)
        events = []
        for index in range(8):
            conn = make_connection(f"10.0.2.{index + 10}")
            for k in range(5):
                events.append(make_event(sql, Operation.WRITE, conn,
                                         timestamp=10 * (k + 1) + index,
                                         amount=2_000_000))
        assert QueryEngine(OUTLIER_QUERY).execute(ListStream(events)) == []

    def test_small_outlier_below_floor_is_suppressed(self):
        sql = make_process("sqlservr.exe", 70)
        events = []
        for index in range(8):
            conn = make_connection(f"10.0.2.{index + 10}")
            events.append(make_event(sql, Operation.WRITE, conn,
                                     timestamp=10 + index, amount=500000))
        # Far from the cluster but below the 1 MB alert floor.
        events.append(make_event(sql, Operation.WRITE,
                                 make_connection("198.51.100.9"),
                                 timestamp=100, amount=10))
        assert QueryEngine(OUTLIER_QUERY).execute(ListStream(events)) == []


class TestWindowLifecycle:
    COUNT_QUERY = '''
proc p write ip i as evt #count(3)
state ss {
  total := sum(evt.amount)
} group by p
alert ss.total > 0
return p, ss.total
'''

    def test_count_windows_close_every_n_matches(self):
        proc = make_process("app.exe", 10)
        conn = make_connection("8.8.8.8")
        events = [make_event(proc, Operation.WRITE, conn, float(i),
                             amount=10.0) for i in range(7)]
        alerts = QueryEngine(self.COUNT_QUERY).execute(ListStream(events))
        # Two full windows of three events, plus the final flush of one.
        assert [alert.record["ss.total"] for alert in alerts] == [
            30.0, 30.0, 10.0]

    def test_finish_flushes_open_windows(self):
        proc = make_process("app.exe", 10)
        events = _network_writes(proc, [20000])
        engine = QueryEngine(SMA_QUERY)
        for event in events:
            engine.process_event(event)
        assert engine.alerts == []
        engine.finish()
        assert len(engine.alerts) == 1

    def test_incremental_and_batch_agree(self):
        proc = make_process("app.exe", 10)
        events = _network_writes(proc, [1000, 1000, 1000, 1000, 900000])
        batch = QueryEngine(SMA_QUERY).execute(ListStream(events))
        incremental_engine = QueryEngine(SMA_QUERY)
        incremental = []
        for event in ListStream(events):
            incremental.extend(incremental_engine.process_event(event))
        incremental.extend(incremental_engine.finish())
        assert len(batch) == len(incremental) == 1
        assert batch[0].record == incremental[0].record
