"""Unit tests for the state maintainer and window-state history."""

import pytest

from repro.core.engine.matching import PatternMatch
from repro.core.engine.state import StateHistory, StateMaintainer, WindowState
from repro.core.engine.windows import WindowKey
from repro.core.language import parse_query
from repro.events.event import Operation
from tests.conftest import make_connection, make_event, make_process

QUERY = '''
proc p write ip i as evt #time(10 min)
state[3] ss {
  total := sum(evt.amount)
  average := avg(evt.amount)
  destinations := set(i.dstip)
} group by p
alert ss[0].total > 0
return p, ss[0].total
'''

GROUP_BY_ATTR_QUERY = '''
proc p write ip i as evt #time(10 min)
state ss {
  total := sum(evt.amount)
} group by i.dstip
alert ss.total > 0
return i.dstip
'''


def _match(query, exe="app.exe", dstip="8.8.8.8", timestamp=1.0, amount=100.0,
           pid=1):
    proc = make_process(exe, pid)
    conn = make_connection(dstip)
    event = make_event(proc, Operation.WRITE, conn, timestamp, amount=amount)
    pattern = query.patterns[0]
    return PatternMatch(alias=pattern.alias, event=event,
                        bindings={pattern.subject.variable: proc,
                                  pattern.object.variable: conn})


WINDOW = WindowKey(index=0, start=0.0, end=600.0)


class TestStateHistory:
    def test_push_and_get(self):
        history = StateHistory(3)
        for index in range(3):
            history.push(WindowState(group_key="g", window=WINDOW,
                                     fields={"n": index}))
        assert history.get(0).fields["n"] == 2
        assert history.get(2).fields["n"] == 0

    def test_bounded_capacity(self):
        history = StateHistory(2)
        for index in range(5):
            history.push(WindowState(group_key="g", window=WINDOW,
                                     fields={"n": index}))
        assert history.length == 2
        assert history.get(0).fields["n"] == 4

    def test_out_of_range_returns_none(self):
        history = StateHistory(3)
        assert history.get(0) is None
        assert history.get(5) is None
        assert history.get(-1) is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            StateHistory(0)


class TestStateMaintainer:
    def test_requires_state_block(self):
        query = parse_query("proc p write file f as e\nreturn p")
        with pytest.raises(ValueError):
            StateMaintainer(query)

    def test_group_key_for_entity_variable(self):
        query = parse_query(QUERY)
        maintainer = StateMaintainer(query)
        match = _match(query, exe="sqlservr.exe")
        assert maintainer.group_key_for(match) == "sqlservr.exe"

    def test_group_key_for_attribute(self):
        query = parse_query(GROUP_BY_ATTR_QUERY)
        maintainer = StateMaintainer(query)
        match = _match(query, dstip="203.0.113.129")
        assert maintainer.group_key_for(match) == "203.0.113.129"

    def test_close_window_computes_aggregates(self):
        query = parse_query(QUERY)
        maintainer = StateMaintainer(query)
        for amount in (100.0, 200.0, 300.0):
            maintainer.add_match(WINDOW, _match(query, amount=amount))
        states = maintainer.close_window(WINDOW)
        assert len(states) == 1
        fields = states[0].fields
        assert fields["total"] == 600.0
        assert fields["average"] == 200.0
        assert fields["destinations"] == frozenset({"8.8.8.8"})

    def test_groups_are_separated(self):
        query = parse_query(QUERY)
        maintainer = StateMaintainer(query)
        maintainer.add_match(WINDOW, _match(query, exe="a.exe", pid=1))
        maintainer.add_match(WINDOW, _match(query, exe="b.exe", pid=2))
        states = maintainer.close_window(WINDOW)
        assert {state.group_key for state in states} == {"a.exe", "b.exe"}

    def test_history_is_per_group(self):
        query = parse_query(QUERY)
        maintainer = StateMaintainer(query)
        maintainer.add_match(WINDOW, _match(query, exe="a.exe"))
        maintainer.close_window(WINDOW)
        assert maintainer.history_for("a.exe").length == 1
        assert maintainer.history_for("b.exe").length == 0

    def test_close_unknown_window_returns_empty(self):
        query = parse_query(QUERY)
        maintainer = StateMaintainer(query)
        assert maintainer.close_window(WINDOW) == []

    def test_match_count_and_representative(self):
        query = parse_query(QUERY)
        maintainer = StateMaintainer(query)
        maintainer.add_match(WINDOW, _match(query, timestamp=1.0))
        maintainer.add_match(WINDOW, _match(query, timestamp=2.0))
        state = maintainer.close_window(WINDOW)[0]
        assert state.match_count == 2
        assert state.representative.timestamp == 2.0

    def test_no_group_by_uses_single_group(self):
        query = parse_query(
            "proc p write ip i as evt #time(10 min)\n"
            "state ss { total := sum(evt.amount) }\n"
            "alert ss.total > 0\nreturn ss.total")
        maintainer = StateMaintainer(query)
        maintainer.add_match(WINDOW, _match(query))
        states = maintainer.close_window(WINDOW)
        assert states[0].group_key == "__all__"

    def test_total_matches_counter(self):
        query = parse_query(QUERY)
        maintainer = StateMaintainer(query)
        for _ in range(4):
            maintainer.add_match(WINDOW, _match(query))
        assert maintainer.total_matches == 4
