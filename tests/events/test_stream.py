"""Unit tests for the event-stream abstractions."""

from repro.events.entities import FileEntity, ProcessEntity
from repro.events.event import Event, Operation
from repro.events.stream import ListStream, MergedStream, StreamStats, collect


def _event(timestamp, agentid="h1", amount=0.0):
    proc = ProcessEntity.make("a.exe", 1, host=agentid)
    return Event(subject=proc, operation=Operation.WRITE,
                 obj=FileEntity.make("/x", host=agentid),
                 timestamp=timestamp, agentid=agentid, amount=amount)


class TestListStream:
    def test_sorts_by_timestamp(self):
        stream = ListStream([_event(5), _event(1), _event(3)])
        assert [event.timestamp for event in stream] == [1, 3, 5]

    def test_len_and_events(self):
        stream = ListStream([_event(1), _event(2)])
        assert len(stream) == 2
        assert len(stream.events) == 2

    def test_presorted_keeps_order(self):
        events = [_event(1), _event(2)]
        stream = ListStream(events, presorted=True)
        assert list(stream) == events

    def test_filter(self):
        stream = ListStream([_event(1, "a"), _event(2, "b"), _event(3, "a")])
        filtered = collect(stream.filter(lambda event: event.agentid == "a"))
        assert len(filtered) == 2

    def test_limit(self):
        stream = ListStream([_event(t) for t in range(10)])
        assert len(collect(stream.limit(3))) == 3

    def test_limit_zero(self):
        stream = ListStream([_event(1)])
        assert collect(stream.limit(0)) == []


class TestMergedStream:
    def test_merges_by_timestamp(self):
        left = ListStream([_event(1, "a"), _event(4, "a")])
        right = ListStream([_event(2, "b"), _event(3, "b")])
        merged = collect(MergedStream([left, right]))
        assert [event.timestamp for event in merged] == [1, 2, 3, 4]

    def test_empty_sources(self):
        assert collect(MergedStream([ListStream([]), ListStream([])])) == []

    def test_single_source(self):
        stream = ListStream([_event(1), _event(2)])
        assert len(collect(MergedStream([stream]))) == 2


class TestStreamStats:
    def test_counts_events_and_amount(self):
        stats = StreamStats.from_stream(
            ListStream([_event(0, amount=10), _event(10, amount=20)]))
        assert stats.total_events == 2
        assert stats.total_amount == 30
        assert stats.duration == 10

    def test_rate_per_second(self):
        stats = StreamStats.from_stream(
            ListStream([_event(0), _event(5), _event(10)]))
        assert stats.events_per_second == 3 / 10

    def test_by_agent_and_type(self):
        stats = StreamStats.from_stream(
            ListStream([_event(0, "a"), _event(1, "b"), _event(2, "a")]))
        assert stats.by_agent == {"a": 2, "b": 1}
        assert stats.by_type == {"file": 3}

    def test_empty_stream(self):
        stats = StreamStats.from_stream(ListStream([]))
        assert stats.total_events == 0
        assert stats.duration == 0.0
        assert stats.events_per_second == 0.0
