"""Unit tests for the SVO event model."""

import pytest

from repro.events.entities import FileEntity, NetworkEntity, ProcessEntity
from repro.events.event import Event, EventType, Operation


@pytest.fixture
def proc():
    return ProcessEntity.make("sqlservr.exe", 10, host="db")


class TestOperation:
    def test_from_keyword(self):
        assert Operation.from_keyword("write") is Operation.WRITE

    def test_from_keyword_case_insensitive(self):
        assert Operation.from_keyword("START") is Operation.START

    def test_from_keyword_rejects_unknown(self):
        with pytest.raises(ValueError):
            Operation.from_keyword("teleport")


class TestEventType:
    def test_file_object_gives_file_event(self, proc):
        event = Event(subject=proc, operation=Operation.WRITE,
                      obj=FileEntity.make("/x", host="db"), timestamp=1.0)
        assert event.event_type is EventType.FILE_EVENT

    def test_process_object_gives_process_event(self, proc):
        child = ProcessEntity.make("cmd.exe", 11, host="db")
        event = Event(subject=proc, operation=Operation.START, obj=child,
                      timestamp=1.0)
        assert event.event_type is EventType.PROCESS_EVENT

    def test_network_object_gives_network_event(self, proc):
        conn = NetworkEntity.make("10.0.0.1", "8.8.8.8")
        event = Event(subject=proc, operation=Operation.WRITE, obj=conn,
                      timestamp=1.0)
        assert event.event_type is EventType.NETWORK_EVENT


class TestEventValidation:
    def test_subject_must_be_process(self):
        file = FileEntity.make("/x")
        with pytest.raises(TypeError):
            Event(subject=file, operation=Operation.WRITE,
                  obj=FileEntity.make("/y"), timestamp=1.0)

    def test_negative_timestamp_rejected(self, proc):
        with pytest.raises(ValueError):
            Event(subject=proc, operation=Operation.WRITE,
                  obj=FileEntity.make("/x"), timestamp=-1.0)

    def test_negative_amount_rejected(self, proc):
        with pytest.raises(ValueError):
            Event(subject=proc, operation=Operation.WRITE,
                  obj=FileEntity.make("/x"), timestamp=1.0, amount=-5)

    def test_event_ids_are_unique(self, proc):
        first = Event(subject=proc, operation=Operation.WRITE,
                      obj=FileEntity.make("/x"), timestamp=1.0)
        second = Event(subject=proc, operation=Operation.WRITE,
                       obj=FileEntity.make("/x"), timestamp=1.0)
        assert first.event_id != second.event_id


class TestEventAttributes:
    def test_get_attr_agentid(self, proc):
        event = Event(subject=proc, operation=Operation.WRITE,
                      obj=FileEntity.make("/x"), timestamp=1.0,
                      agentid="db-server")
        assert event.get_attr("agentid") == "db-server"

    def test_get_attr_amount_and_timestamp(self, proc):
        event = Event(subject=proc, operation=Operation.WRITE,
                      obj=FileEntity.make("/x"), timestamp=12.5, amount=42.0)
        assert event.get_attr("amount") == 42.0
        assert event.get_attr("timestamp") == 12.5
        assert event.get_attr("starttime") == 12.5

    def test_get_attr_operation_and_type(self, proc):
        event = Event(subject=proc, operation=Operation.READ,
                      obj=FileEntity.make("/x"), timestamp=1.0)
        assert event.get_attr("operation") == "read"
        assert event.get_attr("type") == "file"

    def test_get_attr_custom_attrs(self, proc):
        event = Event(subject=proc, operation=Operation.READ,
                      obj=FileEntity.make("/x"), timestamp=1.0,
                      attrs={"session": "s1"})
        assert event.get_attr("session") == "s1"

    def test_get_attr_missing_returns_none(self, proc):
        event = Event(subject=proc, operation=Operation.READ,
                      obj=FileEntity.make("/x"), timestamp=1.0)
        assert event.get_attr("nonexistent") is None
