"""Unit tests for the system-entity data model."""

import pytest

from repro.events.entities import (
    EntityType,
    FileEntity,
    NetworkEntity,
    ProcessEntity,
    entity_from_dict,
)


class TestEntityType:
    def test_from_keyword_proc(self):
        assert EntityType.from_keyword("proc") is EntityType.PROCESS

    def test_from_keyword_file(self):
        assert EntityType.from_keyword("file") is EntityType.FILE

    def test_from_keyword_ip(self):
        assert EntityType.from_keyword("ip") is EntityType.NETWORK

    def test_from_keyword_is_case_insensitive(self):
        assert EntityType.from_keyword(" PROC ") is EntityType.PROCESS

    def test_from_keyword_rejects_unknown(self):
        with pytest.raises(ValueError):
            EntityType.from_keyword("socket")


class TestProcessEntity:
    def test_make_builds_deterministic_id(self):
        first = ProcessEntity.make("cmd.exe", 42, host="h1")
        second = ProcessEntity.make("cmd.exe", 42, host="h1")
        assert first.entity_id == second.entity_id

    def test_different_pid_gives_different_id(self):
        first = ProcessEntity.make("cmd.exe", 42, host="h1")
        second = ProcessEntity.make("cmd.exe", 43, host="h1")
        assert first.entity_id != second.entity_id

    def test_entity_type(self):
        assert ProcessEntity.make("a.exe", 1).entity_type is EntityType.PROCESS

    def test_default_value_is_exe_name(self):
        proc = ProcessEntity.make("osql.exe", 7, host="db")
        assert proc.default_value() == "osql.exe"

    def test_get_attr_returns_known_attribute(self):
        proc = ProcessEntity.make("osql.exe", 7, host="db", user="admin")
        assert proc.get_attr("pid") == 7
        assert proc.get_attr("user") == "admin"

    def test_get_attr_missing_returns_none(self):
        proc = ProcessEntity.make("osql.exe", 7)
        assert proc.get_attr("no_such_attr") is None

    def test_get_attr_type_returns_keyword(self):
        proc = ProcessEntity.make("osql.exe", 7)
        assert proc.get_attr("type") == "proc"

    def test_attributes_contains_type_discriminator(self):
        attrs = ProcessEntity.make("osql.exe", 7).attributes()
        assert attrs["type"] == "proc"
        assert attrs["exe_name"] == "osql.exe"

    def test_is_frozen(self):
        proc = ProcessEntity.make("osql.exe", 7)
        with pytest.raises(Exception):
            proc.exe_name = "other.exe"


class TestFileEntity:
    def test_default_value_is_name(self):
        file = FileEntity.make("/tmp/backup1.dmp", host="db")
        assert file.default_value() == "/tmp/backup1.dmp"

    def test_entity_type(self):
        assert FileEntity.make("/x").entity_type is EntityType.FILE

    def test_same_path_same_host_same_identity(self):
        first = FileEntity.make("/tmp/a", host="db")
        second = FileEntity.make("/tmp/a", host="db")
        assert first.entity_id == second.entity_id

    def test_same_path_different_host_distinct_identity(self):
        first = FileEntity.make("/tmp/a", host="db")
        second = FileEntity.make("/tmp/a", host="web")
        assert first.entity_id != second.entity_id


class TestNetworkEntity:
    def test_default_value_is_dstip(self):
        conn = NetworkEntity.make("10.0.0.1", "203.0.113.129")
        assert conn.default_value() == "203.0.113.129"

    def test_entity_type(self):
        conn = NetworkEntity.make("10.0.0.1", "8.8.8.8")
        assert conn.entity_type is EntityType.NETWORK

    def test_get_attr_ports(self):
        conn = NetworkEntity.make("10.0.0.1", "8.8.8.8", srcport=1234,
                                  dstport=53)
        assert conn.get_attr("srcport") == 1234
        assert conn.get_attr("dstport") == 53


class TestEntityFromDict:
    def test_round_trip_process(self):
        original = ProcessEntity.make("cmd.exe", 42, host="h1", user="bob")
        rebuilt = entity_from_dict(original.attributes())
        assert rebuilt == original

    def test_round_trip_file(self):
        original = FileEntity.make("/etc/passwd", host="h1")
        assert entity_from_dict(original.attributes()) == original

    def test_round_trip_network(self):
        original = NetworkEntity.make("10.0.0.1", "8.8.8.8", dstport=53)
        assert entity_from_dict(original.attributes()) == original

    def test_missing_type_raises(self):
        with pytest.raises(ValueError):
            entity_from_dict({"entity_id": "x"})

    def test_missing_entity_id_raises(self):
        with pytest.raises(ValueError):
            entity_from_dict({"type": "proc"})

    def test_unknown_keys_are_ignored(self):
        data = ProcessEntity.make("cmd.exe", 1).attributes()
        data["extra"] = "ignored"
        rebuilt = entity_from_dict(data)
        assert rebuilt.exe_name == "cmd.exe"
