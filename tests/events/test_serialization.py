"""Unit tests for event serialization (dict / JSON / JSON-lines)."""

import pytest

from repro.events.entities import FileEntity, NetworkEntity, ProcessEntity
from repro.events.event import Event, Operation
from repro.events.serialization import (
    event_from_dict,
    event_from_json,
    event_to_dict,
    event_to_json,
    read_events_jsonl,
    write_events_jsonl,
)


def _sample_event(timestamp=10.0):
    proc = ProcessEntity.make("sqlservr.exe", 77, host="db-server")
    conn = NetworkEntity.make("10.0.1.30", "203.0.113.129", dstport=443)
    return Event(subject=proc, operation=Operation.WRITE, obj=conn,
                 timestamp=timestamp, agentid="db-server", amount=5e6,
                 attrs={"session": "abc"})


class TestDictRoundTrip:
    def test_round_trip_preserves_subject(self):
        event = _sample_event()
        rebuilt = event_from_dict(event_to_dict(event))
        assert rebuilt.subject == event.subject

    def test_round_trip_preserves_object(self):
        event = _sample_event()
        rebuilt = event_from_dict(event_to_dict(event))
        assert rebuilt.obj == event.obj

    def test_round_trip_preserves_metadata(self):
        event = _sample_event()
        rebuilt = event_from_dict(event_to_dict(event))
        assert rebuilt.timestamp == event.timestamp
        assert rebuilt.agentid == event.agentid
        assert rebuilt.amount == event.amount
        assert rebuilt.attrs == event.attrs
        assert rebuilt.operation is event.operation

    def test_missing_key_raises_value_error(self):
        data = event_to_dict(_sample_event())
        del data["subject"]
        with pytest.raises(ValueError):
            event_from_dict(data)


class TestJsonRoundTrip:
    def test_json_round_trip(self):
        event = _sample_event()
        rebuilt = event_from_json(event_to_json(event))
        assert rebuilt.subject == event.subject
        assert rebuilt.obj == event.obj
        assert rebuilt.amount == event.amount

    def test_json_is_deterministic(self):
        event = _sample_event()
        assert event_to_json(event) == event_to_json(event)


class TestJsonl:
    def test_write_and_read_back(self, tmp_path):
        events = [_sample_event(timestamp=float(i)) for i in range(5)]
        path = tmp_path / "events.jsonl"
        written = write_events_jsonl(events, path)
        assert written == 5
        loaded = list(read_events_jsonl(path))
        assert len(loaded) == 5
        assert [event.timestamp for event in loaded] == [0, 1, 2, 3, 4]

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_events_jsonl([_sample_event()], path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n\n")
        assert len(list(read_events_jsonl(path))) == 1


class TestEdgeCaseRoundTrips:
    """Payload edge cases the snapshot subsystem relies on being lossless."""

    def _round_trip(self, event):
        import json
        # Through *strict* JSON: the snapshot store rejects the
        # non-standard NaN/Infinity tokens, so the dict form must be
        # fully JSON-compliant.
        return event_from_dict(
            json.loads(json.dumps(event_to_dict(event), allow_nan=False)))

    def test_non_finite_amounts_round_trip(self):
        import math
        proc = ProcessEntity.make("x.exe", 1, host="h")
        conn = NetworkEntity.make("1.2.3.4", "5.6.7.8")
        for value in (float("inf"), float("nan")):
            event = Event(subject=proc, operation=Operation.SEND, obj=conn,
                          timestamp=1.0, agentid="h", amount=value)
            rebuilt = self._round_trip(event)
            if math.isnan(value):
                assert math.isnan(rebuilt.amount)
            else:
                assert rebuilt.amount == value

    def test_non_finite_attr_values_round_trip(self):
        import math
        proc = ProcessEntity.make("x.exe", 1, host="h")
        event = Event(subject=proc, operation=Operation.WRITE,
                      obj=FileEntity.make("/tmp/f", host="h"),
                      timestamp=1.0,
                      attrs={"ratio": float("-inf"), "score": float("nan"),
                             "plain": 1.5})
        rebuilt = self._round_trip(event)
        assert rebuilt.attrs["ratio"] == float("-inf")
        assert math.isnan(rebuilt.attrs["score"])
        assert rebuilt.attrs["plain"] == 1.5

    def test_unicode_attribute_names_and_values_round_trip(self):
        proc = ProcessEntity.make("café.exe", 7, host="hôst-ü")
        event = Event(subject=proc, operation=Operation.WRITE,
                      obj=FileEntity.make("/tmp/☃", host="hôst-ü"),
                      timestamp=2.0, agentid="hôst-ü",
                      attrs={"région": "łódź", "数": 7})
        rebuilt = self._round_trip(event)
        assert rebuilt.subject == proc
        assert rebuilt.agentid == "hôst-ü"
        assert rebuilt.attrs == {"région": "łódź", "数": 7}

    def test_empty_entities_round_trip(self):
        event = Event(subject=ProcessEntity(entity_id=""),
                      operation=Operation.WRITE,
                      obj=FileEntity(entity_id=""),
                      timestamp=0.0)
        rebuilt = self._round_trip(event)
        assert rebuilt.subject == event.subject
        assert rebuilt.obj == event.obj

    def test_event_id_round_trips(self):
        proc = ProcessEntity.make("x.exe", 1, host="h")
        event = Event(subject=proc, operation=Operation.WRITE,
                      obj=FileEntity.make("/f", host="h"), timestamp=1.0)
        assert self._round_trip(event).event_id == event.event_id

    def test_event_to_json_is_strict_json(self):
        import json
        proc = ProcessEntity.make("x.exe", 1, host="h")
        event = Event(subject=proc, operation=Operation.SEND,
                      obj=NetworkEntity.make("1.2.3.4", "5.6.7.8"),
                      timestamp=1.0, amount=float("inf"))
        text = event_to_json(event)
        assert "Infinity" not in text  # marker-encoded, not the NaN token
        assert event_from_json(text).amount == float("inf")
