"""Unit tests for event serialization (dict / JSON / JSON-lines)."""

import pytest

from repro.events.entities import FileEntity, NetworkEntity, ProcessEntity
from repro.events.event import Event, Operation
from repro.events.serialization import (
    event_from_dict,
    event_from_json,
    event_to_dict,
    event_to_json,
    read_events_jsonl,
    write_events_jsonl,
)


def _sample_event(timestamp=10.0):
    proc = ProcessEntity.make("sqlservr.exe", 77, host="db-server")
    conn = NetworkEntity.make("10.0.1.30", "203.0.113.129", dstport=443)
    return Event(subject=proc, operation=Operation.WRITE, obj=conn,
                 timestamp=timestamp, agentid="db-server", amount=5e6,
                 attrs={"session": "abc"})


class TestDictRoundTrip:
    def test_round_trip_preserves_subject(self):
        event = _sample_event()
        rebuilt = event_from_dict(event_to_dict(event))
        assert rebuilt.subject == event.subject

    def test_round_trip_preserves_object(self):
        event = _sample_event()
        rebuilt = event_from_dict(event_to_dict(event))
        assert rebuilt.obj == event.obj

    def test_round_trip_preserves_metadata(self):
        event = _sample_event()
        rebuilt = event_from_dict(event_to_dict(event))
        assert rebuilt.timestamp == event.timestamp
        assert rebuilt.agentid == event.agentid
        assert rebuilt.amount == event.amount
        assert rebuilt.attrs == event.attrs
        assert rebuilt.operation is event.operation

    def test_missing_key_raises_value_error(self):
        data = event_to_dict(_sample_event())
        del data["subject"]
        with pytest.raises(ValueError):
            event_from_dict(data)


class TestJsonRoundTrip:
    def test_json_round_trip(self):
        event = _sample_event()
        rebuilt = event_from_json(event_to_json(event))
        assert rebuilt.subject == event.subject
        assert rebuilt.obj == event.obj
        assert rebuilt.amount == event.amount

    def test_json_is_deterministic(self):
        event = _sample_event()
        assert event_to_json(event) == event_to_json(event)


class TestJsonl:
    def test_write_and_read_back(self, tmp_path):
        events = [_sample_event(timestamp=float(i)) for i in range(5)]
        path = tmp_path / "events.jsonl"
        written = write_events_jsonl(events, path)
        assert written == 5
        loaded = list(read_events_jsonl(path))
        assert len(loaded) == 5
        assert [event.timestamp for event in loaded] == [0, 1, 2, 3, 4]

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_events_jsonl([_sample_event()], path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n\n")
        assert len(list(read_events_jsonl(path))) == 1
