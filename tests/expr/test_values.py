"""Unit tests for the runtime value semantics."""

import pytest

from repro.core.expr.values import (
    as_set,
    compare_values,
    is_truthy,
    like_match,
    set_diff,
    set_intersect,
    set_union,
    size_of,
    to_number,
)


class TestTruthiness:
    @pytest.mark.parametrize("value", [None, 0, 0.0, "", set(), [], False])
    def test_falsey_values(self, value):
        assert is_truthy(value) is False

    @pytest.mark.parametrize("value", [1, -1, 0.5, "x", {1}, [0], True])
    def test_truthy_values(self, value):
        assert is_truthy(value) is True

    def test_object_is_truthy(self):
        assert is_truthy(object()) is True


class TestToNumber:
    def test_none_uses_default(self):
        assert to_number(None) == 0.0
        assert to_number(None, default=7.0) == 7.0

    def test_bool(self):
        assert to_number(True) == 1.0
        assert to_number(False) == 0.0

    def test_numeric_string(self):
        assert to_number("42.5") == 42.5

    def test_non_numeric_string_uses_default(self):
        assert to_number("osql.exe", default=-1.0) == -1.0

    def test_collection_length(self):
        assert to_number({1, 2, 3}) == 3.0


class TestLikeMatch:
    def test_prefix_wildcard(self):
        assert like_match("C:\\Windows\\cmd.exe", "%cmd.exe")

    def test_suffix_wildcard(self):
        assert like_match("backup1.dmp.gz", "backup1.dmp%")

    def test_both_sides(self):
        assert like_match("x-invoice-2020.xls", "%invoice%")

    def test_single_char_wildcard(self):
        assert like_match("a1c", "a_c")

    def test_case_insensitive(self):
        assert like_match("CMD.EXE", "%cmd.exe")

    def test_no_match(self):
        assert not like_match("powershell.exe", "%cmd.exe")

    def test_none_never_matches(self):
        assert not like_match(None, "%")

    def test_regex_metacharacters_are_literal(self):
        assert like_match("a.b", "a.b")
        assert not like_match("aXb", "a.b")


class TestCompareValues:
    def test_numeric_comparison(self):
        assert compare_values(">", 10, 5)
        assert compare_values("<=", 5, 5)
        assert not compare_values("<", 10, 5)

    def test_equality_numeric_string(self):
        assert compare_values("==", "5", 5)

    def test_equality_string_case_insensitive(self):
        assert compare_values("==", "CMD.exe", "cmd.exe")

    def test_equality_with_wildcard_right(self):
        assert compare_values("==", "C:\\x\\cmd.exe", "%cmd.exe")

    def test_inequality(self):
        assert compare_values("!=", "a", "b")
        assert not compare_values("!=", 3, 3)

    def test_none_equality(self):
        assert compare_values("==", None, None)
        assert not compare_values("==", None, 1)
        assert compare_values("!=", None, 1)

    def test_none_ordering_is_false(self):
        assert not compare_values(">", None, 1)
        assert not compare_values("<", 1, None)

    def test_string_ordering_falls_back_to_lexicographic(self):
        assert compare_values("<", "apple", "banana")

    def test_unknown_operator_raises(self):
        with pytest.raises(ValueError):
            compare_values("~", 1, 2)

    def test_set_equality(self):
        assert compare_values("==", {1, 2}, frozenset({2, 1}))


class TestSetOperations:
    def test_as_set_scalars(self):
        assert as_set("a") == frozenset({"a"})
        assert as_set(None) == frozenset()

    def test_union(self):
        assert set_union({1}, {2}) == frozenset({1, 2})

    def test_diff(self):
        assert set_diff({1, 2, 3}, {2}) == frozenset({1, 3})

    def test_intersect(self):
        assert set_intersect({1, 2}, {2, 3}) == frozenset({2})

    def test_size_of_set(self):
        assert size_of({1, 2, 3}) == 3.0

    def test_size_of_number_is_abs(self):
        assert size_of(-4.5) == 4.5

    def test_size_of_none(self):
        assert size_of(None) == 0.0
