"""Unit tests for the expression evaluator over a simple context."""

import pytest

from repro.core.errors import SAQLExecutionError
from repro.core.expr.evaluator import ExpressionEvaluator
from repro.core.language import ast
from repro.core.language.parser import parse


class DictContext:
    """A minimal evaluation context backed by plain dictionaries."""

    def __init__(self, names=None):
        self.names = names or {}

    def resolve_name(self, name):
        return self.names.get(name)

    def get_attribute(self, value, attr):
        if isinstance(value, dict):
            return value.get(attr)
        return None

    def get_index(self, value, index):
        if isinstance(value, (list, tuple)):
            return value[int(index)]
        return None

    def evaluate_aggregation(self, call):
        raise SAQLExecutionError("no aggregations here")


def evaluate(text, names=None):
    """Parse an alert condition and evaluate it against a dict context."""
    query = parse(
        "proc p write ip i as evt #time(10 s)\n"
        "state ss { v := sum(evt.amount) } group by p\n"
        f"alert {text}\nreturn p")
    evaluator = ExpressionEvaluator(DictContext(names))
    return evaluator.evaluate(query.alert.condition)


class TestArithmetic:
    def test_addition_and_multiplication(self):
        assert evaluate("1 + 2 * 3") == 7

    def test_division(self):
        assert evaluate("10 / 4") == 2.5

    def test_division_by_zero_is_zero(self):
        assert evaluate("10 / 0") == 0.0

    def test_modulo(self):
        assert evaluate("10 % 3") == 1.0

    def test_unary_minus(self):
        assert evaluate("-(2 + 3)") == -5.0


class TestComparisonsAndBooleans:
    def test_greater_than(self):
        assert evaluate("3 > 2") is True

    def test_equality_operator_single_equals(self):
        assert evaluate("2 = 2") is True

    def test_and_or(self):
        assert evaluate("1 > 0 && 2 > 1") is True
        assert evaluate("1 > 2 || 2 > 1") is True
        assert evaluate("1 > 2 && 2 > 1") is False

    def test_not(self):
        assert evaluate("!(1 > 2)") is True

    def test_short_circuit_and(self):
        # The right side references an unknown name but is never evaluated.
        assert evaluate("1 > 2 && ss.v > unknown_name") is False

    def test_in_operator(self):
        assert evaluate('"a" in ss', {"ss": frozenset({"a", "b"})}) is True


class TestNamesAndAttributes:
    def test_identifier_resolution(self):
        assert evaluate("ss > 5", {"ss": 10}) is True

    def test_attribute_resolution(self):
        assert evaluate("ss.v > 5", {"ss": {"v": 6}}) is True

    def test_missing_attribute_is_none(self):
        assert evaluate("ss.missing > 5", {"ss": {}}) is False

    def test_index_resolution(self):
        assert evaluate("ss[1] > 5", {"ss": (1, 10)}) is True


class TestSetsAndSizeOf(object):
    def test_empty_set_literal(self):
        assert evaluate("|ss union ss| == 0", {"ss": frozenset()}) is True

    def test_union_and_diff(self):
        names = {"ss": frozenset({"a"}), "other": frozenset({"a", "b"})}
        assert evaluate("|other diff ss| == 1", names) is True
        assert evaluate("|other union ss| == 2", names) is True

    def test_sizeof_absolute_value(self):
        assert evaluate("|0 - 5| == 5") is True


class TestFunctions:
    def test_scalar_function(self):
        assert evaluate("abs(0 - 3) == 3") is True

    def test_all_passthrough(self):
        assert evaluate("all(ss) > 5", {"ss": 6}) is True

    def test_aggregation_delegates_to_context(self):
        with pytest.raises(SAQLExecutionError):
            evaluate("avg(evt.amount) > 1 && 1 > 0", {"evt": {}})


class TestLiteralEvaluation:
    def test_string_literal(self):
        assert evaluate('"abc" == "ABC"') is True

    def test_float_literal(self):
        assert evaluate("1.5 + 1.5 == 3") is True
