"""Unit tests for the aggregation and scalar function registry."""

import pytest

from repro.core.errors import SAQLExecutionError
from repro.core.expr import functions


class TestAggregations:
    def test_avg(self):
        assert functions.agg_avg([1, 2, 3]) == 2.0

    def test_avg_skips_missing(self):
        assert functions.agg_avg([1, None, 3]) == 2.0

    def test_avg_empty(self):
        assert functions.agg_avg([]) == 0.0

    def test_sum(self):
        assert functions.agg_sum([1.5, 2.5]) == 4.0

    def test_count(self):
        assert functions.agg_count([1, None, "x"]) == 2

    def test_min_max(self):
        assert functions.agg_min([5, 2, 9]) == 2
        assert functions.agg_max([5, 2, 9]) == 9

    def test_min_empty(self):
        assert functions.agg_min([]) == 0.0

    def test_set(self):
        assert functions.agg_set(["a", "b", "a", None]) == frozenset(
            {"a", "b"})

    def test_distinct_count(self):
        assert functions.agg_distinct_count(["a", "b", "a"]) == 2

    def test_stddev(self):
        assert functions.agg_stddev([2, 4, 4, 4, 5, 5, 7, 9]) == 2.0

    def test_stddev_single_value(self):
        assert functions.agg_stddev([5]) == 0.0

    def test_median_odd(self):
        assert functions.agg_median([3, 1, 2]) == 2

    def test_median_even(self):
        assert functions.agg_median([1, 2, 3, 4]) == 2.5

    def test_first_and_last(self):
        assert functions.agg_first([None, "a", "b"]) == "a"
        assert functions.agg_last(["a", "b", None]) == "b"

    def test_percentile(self):
        values = list(range(1, 101))
        assert functions.agg_percentile(values, 95) == 95

    def test_percentile_default(self):
        assert functions.agg_percentile([10]) == 10


class TestAggregateDispatch:
    def test_dispatch_by_name(self):
        assert functions.aggregate("sum", [1, 2, 3]) == 6.0

    def test_dispatch_case_insensitive(self):
        assert functions.aggregate("AVG", [2, 4]) == 3.0

    def test_dispatch_with_extra_args(self):
        assert functions.aggregate("percentile", [1, 2, 3, 4], 50) == 2

    def test_unknown_aggregation_raises(self):
        with pytest.raises(SAQLExecutionError):
            functions.aggregate("frobnicate", [1])

    def test_is_aggregation(self):
        assert functions.is_aggregation("set")
        assert not functions.is_aggregation("abs")


class TestScalars:
    def test_abs(self):
        assert functions.scalar_abs(-3) == 3.0

    def test_sqrt(self):
        assert functions.scalar_sqrt(9) == 3.0

    def test_sqrt_negative_raises(self):
        with pytest.raises(SAQLExecutionError):
            functions.scalar_sqrt(-1)

    def test_len(self):
        assert functions.scalar_len({1, 2}) == 2.0
        assert functions.scalar_len(None) == 0.0
        assert functions.scalar_len(5) == 1.0
