"""Tests for the APT attack scenario generator."""

import pytest

from repro.attack import APTScenario, AttackStep, ATTACKER_IP
from repro.events.event import Operation


class TestScenarioStructure:
    def test_five_steps(self):
        scenario = APTScenario()
        steps = scenario.steps()
        assert [trace.step for trace in steps] == [
            AttackStep.C1_INITIAL_COMPROMISE,
            AttackStep.C2_MALWARE_INFECTION,
            AttackStep.C3_PRIVILEGE_ESCALATION,
            AttackStep.C4_PENETRATION,
            AttackStep.C5_DATA_EXFILTRATION,
        ]

    def test_steps_occur_in_order(self):
        scenario = APTScenario()
        steps = scenario.steps()
        for earlier, later in zip(steps, steps[1:]):
            assert earlier.end_time <= later.start_time

    def test_events_are_time_sorted(self):
        events = APTScenario().events()
        timestamps = [event.timestamp for event in events]
        assert timestamps == sorted(timestamps)

    def test_start_time_offsets_everything(self):
        early = APTScenario(start_time=0.0)
        late = APTScenario(start_time=5000.0)
        assert (late.steps()[0].start_time
                == early.steps()[0].start_time + 5000.0)

    def test_ground_truth_covers_all_steps(self):
        truth = APTScenario().ground_truth()
        assert set(truth) == {"c1", "c2", "c3", "c4", "c5"}
        assert all(ids for ids in truth.values())


class TestAttackFootprints:
    def test_c1_happens_on_the_client(self):
        trace = APTScenario(client_host="client-01").step_c1()
        assert {event.agentid for event in trace.events} == {"client-01"}

    def test_c2_spawns_shell_from_excel(self):
        trace = APTScenario().step_c2()
        spawn = trace.events[0]
        assert spawn.subject.exe_name == "excel.exe"
        assert spawn.operation is Operation.START
        assert spawn.obj.exe_name == "cmd.exe"

    def test_c3_scans_and_dumps_credentials(self):
        trace = APTScenario().step_c3()
        connects = [event for event in trace.events
                    if event.operation is Operation.CONNECT]
        assert len(connects) == 20
        gsecdump_events = [event for event in trace.events
                           if event.subject.exe_name == "gsecdump.exe"]
        assert gsecdump_events

    def test_c4_moves_to_database_server(self):
        trace = APTScenario(db_host="db-server").step_c4()
        db_events = [event for event in trace.events
                     if event.agentid == "db-server"]
        assert db_events

    def test_c5_exfiltrates_to_attacker(self):
        scenario = APTScenario(exfiltration_chunks=4,
                               exfiltration_chunk_bytes=1e6)
        trace = scenario.step_c5()
        to_attacker = [event for event in trace.events
                       if event.obj.get_attr("dstip") == ATTACKER_IP]
        assert sum(event.amount for event in to_attacker) == 4e6

    def test_shared_entities_have_stable_identity(self):
        trace = APTScenario().step_c5()
        dump_writes = [event for event in trace.events
                       if event.subject.exe_name == "sqlservr.exe"]
        dump_reads = [event for event in trace.events
                      if event.subject.exe_name == "sbblv.exe"
                      and event.operation is Operation.READ]
        assert dump_writes and dump_reads
        assert dump_writes[0].obj.entity_id == dump_reads[0].obj.entity_id

    def test_exfiltration_volume_is_configurable(self):
        small = APTScenario(exfiltration_chunks=2)
        assert len(small.step_c5().events) < len(
            APTScenario(exfiltration_chunks=12).step_c5().events)

    def test_end_time_after_start_time(self):
        scenario = APTScenario(start_time=1000.0)
        assert scenario.end_time > 1000.0
