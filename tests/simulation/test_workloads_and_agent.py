"""Tests for the workload profiles and the simulated host agents."""

import pytest

from repro.collection.agent import HostAgent, MonitoringBackend
from repro.collection.workloads import (
    PROFILES,
    database_server_profile,
    desktop_profile,
    web_server_profile,
)
from repro.events.event import EventType, Operation


class TestWorkloadProfiles:
    def test_registry_contains_all_roles(self):
        assert set(PROFILES) == {"desktop", "mail-server", "database-server",
                                 "domain-controller", "web-server"}

    def test_desktop_runs_office_applications(self):
        names = desktop_profile().exe_names()
        assert "outlook.exe" in names
        assert "excel.exe" in names

    def test_database_profile_has_many_clients(self):
        profile = database_server_profile(client_count=8)
        sqlservr = profile.applications[0]
        assert len(sqlservr.sends) == 8

    def test_web_server_spawns_cgi_children(self):
        apache = web_server_profile().applications[0]
        assert any(child == "php-cgi.exe" for child, _ in apache.spawns)


class TestHostAgent:
    def _agent(self, seed=3):
        return HostAgent("db-server", database_server_profile(),
                         ip_address="10.0.1.30", seed=seed)

    def test_generation_is_deterministic(self):
        first = self._agent().generate_events(0.0, 600.0)
        second = self._agent().generate_events(0.0, 600.0)
        assert len(first) == len(second)
        assert [e.timestamp for e in first] == [e.timestamp for e in second]

    def test_different_seeds_differ(self):
        first = self._agent(seed=1).generate_events(0.0, 600.0)
        second = self._agent(seed=2).generate_events(0.0, 600.0)
        assert [e.timestamp for e in first] != [e.timestamp for e in second]

    def test_events_are_sorted_and_in_range(self):
        events = self._agent().generate_events(100.0, 500.0)
        timestamps = [event.timestamp for event in events]
        assert timestamps == sorted(timestamps)
        assert all(100.0 <= t < 600.0 for t in timestamps)

    def test_events_carry_agentid(self):
        events = self._agent().generate_events(0.0, 300.0)
        assert events
        assert all(event.agentid == "db-server" for event in events)

    def test_rate_scale_increases_volume(self):
        base = len(self._agent().generate_events(0.0, 600.0))
        scaled = len(self._agent().generate_events(0.0, 600.0,
                                                   rate_scale=3.0))
        assert scaled > base * 1.5

    def test_zero_duration_produces_nothing(self):
        assert self._agent().generate_events(0.0, 0.0) == []

    def test_mix_of_event_types(self):
        events = self._agent().generate_events(0.0, 1800.0)
        types = {event.event_type for event in events}
        assert EventType.FILE_EVENT in types
        assert EventType.NETWORK_EVENT in types

    def test_long_running_process_identity_is_stable(self):
        agent = self._agent()
        assert agent.process("sqlservr.exe") is agent.process("sqlservr.exe")

    def test_new_process_gets_fresh_pid(self):
        agent = self._agent()
        first = agent.new_process("sqlcmd.exe")
        second = agent.new_process("sqlcmd.exe")
        assert first.pid != second.pid

    def test_backend_metadata(self):
        agent = HostAgent("mac-host", desktop_profile(),
                          backend=MonitoringBackend.DTRACE)
        assert agent.backend is MonitoringBackend.DTRACE
