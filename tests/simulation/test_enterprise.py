"""Tests for the enterprise simulation."""

import pytest

from repro.collection import Enterprise, EnterpriseConfig
from repro.collection.enterprise import CLIENT_HOST, DB_HOST, DC_HOST, MAIL_HOST
from repro.events.stream import StreamStats, collect


class TestEnterpriseTopology:
    def test_default_hosts_match_demo_setup(self):
        enterprise = Enterprise()
        assert set(enterprise.hosts) == {CLIENT_HOST, MAIL_HOST, DB_HOST,
                                         DC_HOST}

    def test_extra_hosts_can_be_added(self):
        enterprise = Enterprise(EnterpriseConfig(extra_desktops=3,
                                                 extra_web_servers=2))
        assert len(enterprise.hosts) == 4 + 5

    def test_agent_lookup(self):
        enterprise = Enterprise()
        assert enterprise.agent(DB_HOST).host_id == DB_HOST


class TestEventFeed:
    def test_feed_is_time_ordered(self):
        enterprise = Enterprise(EnterpriseConfig(seed=3))
        events = collect(enterprise.event_feed(0.0, 600.0))
        timestamps = [event.timestamp for event in events]
        assert timestamps == sorted(timestamps)

    def test_feed_contains_all_hosts(self):
        enterprise = Enterprise(EnterpriseConfig(seed=3))
        stats = StreamStats.from_stream(enterprise.event_feed(0.0, 1200.0))
        assert set(stats.by_agent) == set(enterprise.hosts)

    def test_injected_events_are_merged(self):
        enterprise = Enterprise(EnterpriseConfig(seed=3))
        baseline = len(collect(enterprise.event_feed(0.0, 300.0)))
        attack_agent = enterprise.agent(DB_HOST)
        injected = attack_agent.generate_events(100.0, 50.0)
        merged = collect(enterprise.event_feed(0.0, 300.0,
                                               injected=injected))
        assert len(merged) == baseline + len(injected)

    def test_per_host_streams_merge_equals_feed(self):
        enterprise = Enterprise(EnterpriseConfig(seed=5))
        feed = collect(enterprise.event_feed(0.0, 300.0))
        merged = collect(enterprise.per_host_streams(0.0, 300.0))
        assert len(feed) == len(merged)

    def test_rate_scale_controls_volume(self):
        small = Enterprise(EnterpriseConfig(seed=3, rate_scale=0.5))
        large = Enterprise(EnterpriseConfig(seed=3, rate_scale=2.0))
        small_count = len(collect(small.event_feed(0.0, 600.0)))
        large_count = len(collect(large.event_feed(0.0, 600.0)))
        assert large_count > small_count * 2
