"""Shard worker lifecycle: no leaked threads/processes on failure.

Before this suite's fixes, ``ShardedScheduler.execute`` relied on daemon
threads/processes for cleanup: an exception in the feed loop (a poisoned
batch, a raising stream iterator) left live shard workers behind until
interpreter exit.  ``execute`` now closes every shard in a ``finally``
and the shard classes implement the context-manager protocol.
"""

from __future__ import annotations

import multiprocessing
import threading
import time

import pytest

from repro.core.parallel import ShardedScheduler
from repro.core.parallel.sharded import SerialShard, ThreadShard
from repro.events.entities import NetworkEntity, ProcessEntity
from repro.events.event import Event, Operation

QUERY = ('proc p send ip i as evt #time(10)\n'
         'state ss { t := sum(evt.amount) } group by evt.agentid\n'
         'alert ss.t > 0\nreturn ss.t')

HOSTS = ["host-00", "host-01", "host-02", "host-03"]


def _event(host, timestamp):
    return Event(
        subject=ProcessEntity.make("x.exe", pid=1, host=host),
        operation=Operation.SEND,
        obj=NetworkEntity.make("10.0.1.2", "10.0.0.9", srcport=5,
                               dstport=443),
        timestamp=timestamp, agentid=host, amount=100.0)


def _poisoned_stream(good: int = 400):
    """A stream that raises mid-iteration, after some valid events."""
    for position in range(good):
        yield _event(HOSTS[position % len(HOSTS)], position * 0.05)
    raise RuntimeError("stream source died mid-replay")


def _shard_threads():
    return [thread for thread in threading.enumerate()
            if thread.name.startswith("saql-shard-")]


def _shard_children():
    return [child for child in multiprocessing.active_children()
            if (child.name or "").startswith("saql-shard-")]


def _wait_until_gone(probe, timeout=5.0):
    deadline = time.monotonic() + timeout
    while probe() and time.monotonic() < deadline:
        time.sleep(0.05)
    return probe()


def test_thread_backend_failure_leaves_no_alive_workers():
    assert not _shard_threads()
    scheduler = ShardedScheduler(shards=3, backend="thread", batch_size=32)
    scheduler.add_query(QUERY, name="q")
    with pytest.raises(RuntimeError, match="stream source died"):
        scheduler.execute(_poisoned_stream())
    assert not _wait_until_gone(_shard_threads)


def test_process_backend_failure_leaves_no_alive_children():
    assert not _shard_children()
    scheduler = ShardedScheduler(shards=2, backend="process", batch_size=32)
    scheduler.add_query(QUERY, name="q")
    with pytest.raises(RuntimeError, match="stream source died"):
        scheduler.execute(_poisoned_stream())
    assert not _wait_until_gone(_shard_children)


def test_thread_backend_poisoned_batch_cleans_up():
    """A batch that kills a worker mid-stream still tears everything down."""
    assert not _shard_threads()
    scheduler = ShardedScheduler(shards=2, backend="thread", batch_size=8)
    scheduler.add_query(QUERY, name="q")

    def poisoned_events():
        for position in range(64):
            yield _event(HOSTS[position % len(HOSTS)], position * 0.05)
        yield "not-an-event"  # type: ignore[misc]
        for position in range(64, 4096):
            yield _event(HOSTS[position % len(HOSTS)], position * 0.05)

    with pytest.raises(Exception):
        scheduler.execute(poisoned_events())
    assert not _wait_until_gone(_shard_threads)


def test_clean_run_also_leaves_no_workers():
    for backend in ("thread", "process"):
        scheduler = ShardedScheduler(shards=2, backend=backend,
                                     batch_size=32)
        scheduler.add_query(QUERY, name="q")
        events = [_event(HOSTS[position % len(HOSTS)], position * 0.05)
                  for position in range(300)]
        alerts = scheduler.execute(iter(events))
        assert alerts
        assert not _wait_until_gone(_shard_threads)
        assert not _wait_until_gone(_shard_children)


def test_shards_support_the_context_manager_protocol():
    with SerialShard([("q", QUERY)], enable_sharing=True) as shard:
        shard.feed([_event("host-00", 1.0)])
    with ThreadShard([("q", QUERY)], enable_sharing=True) as shard:
        shard.feed([_event("host-00", 1.0)])
    assert not _wait_until_gone(_shard_threads)


def test_thread_shard_close_is_idempotent_and_safe_after_error():
    shard = ThreadShard([("q", QUERY)], enable_sharing=True)
    shard.feed(["not-an-event"])  # type: ignore[list-item]
    # The worker dies on the poisoned batch; close() must neither hang
    # nor raise, and repeated closes are harmless.
    shard.close()
    shard.close()
    assert not shard._thread.is_alive()
