"""Unit tests for the static shardability analysis."""

from __future__ import annotations

import pytest

from repro.core.language import parse_query
from repro.core.parallel import analyze_shardability
from repro.queries.demo_queries import DEMO_QUERIES


def report_for(text: str):
    return analyze_shardability(parse_query(text))


class TestHostPinnedQueries:
    def test_agentid_equality_pins(self):
        report = report_for('''
agentid = "db-server"
proc p read || write ip i as evt #time(10 min)
state ss { amt := sum(evt.amount) } group by i.dstip
cluster(points=all(ss.amt), distance="ed", method="DBSCAN(100, 3)")
alert cluster.outlier
return i.dstip
''')
        assert report.shardable
        assert report.pinned_agentid == "db-server"

    def test_like_pattern_does_not_pin(self):
        report = report_for('''
agentid = "db-%"
proc p read || write ip i as evt #time(10 min)
state ss { amt := sum(evt.amount) } group by i.dstip
return i.dstip
''')
        assert not report.shardable
        assert report.pinned_agentid is None

    def test_every_demo_query_is_shardable(self):
        # All 8 demo queries pin a host, so the full demo workload shards.
        for name, text in DEMO_QUERIES.items():
            report = analyze_shardability(parse_query(text))
            assert report.shardable, (name, report.reason)
            assert report.pinned_agentid in ("db-server", "client-01")


class TestStatefulQueries:
    def test_cluster_without_pin_is_not_shardable(self):
        report = report_for('''
proc p read || write ip i as evt #time(10 min)
state ss { amt := sum(evt.amount) } group by i.dstip
cluster(points=all(ss.amt), distance="ed", method="DBSCAN(100, 3)")
alert cluster.outlier
return i.dstip
''')
        assert not report.shardable
        assert "cluster" in report.reason

    def test_group_by_bare_entity_variable_is_not_host_local(self):
        # The context-aware shortcut makes `group by p` mean
        # `group by p.exe_name`, and executable names repeat across hosts.
        report = report_for('''
proc p write ip i as evt #time(1 min)
state ss { total := sum(evt.amount) } group by p
alert ss.total > 100
return p, ss.total
''')
        assert not report.shardable

    def test_group_by_entity_host_attributes_is_host_local(self):
        for key in ("p.host", "p.entity_id"):
            report = report_for(f'''
proc p write ip i as evt #time(1 min)
state ss {{ total := sum(evt.amount) }} group by {key}
alert ss.total > 100
return ss.total
''')
            assert report.shardable, key

    def test_group_by_event_alias_is_host_local(self):
        # A bare alias resolves to the event's agentid in group-key position.
        report = report_for('''
proc p write ip i as evt #time(1 min)
state ss { total := sum(evt.amount) } group by evt
alert ss.total > 100
return ss.total
''')
        assert report.shardable

    def test_alias_key_with_second_pattern_is_not_host_local(self):
        # Group keys see only their own match's bindings: evt2 matches get
        # key None, folding them into one cross-host group.
        report = report_for('''
proc p1 write ip i as evt1 #time(1 min)
proc p2 read file f as evt2
state ss { total := sum(evt1.amount) } group by evt1.agentid
alert ss.total > 100
return ss.total
''')
        assert not report.shardable

    def test_entity_key_must_be_bound_by_every_pattern(self):
        unbound = report_for('''
proc p1 write ip i as evt1 #time(1 min)
proc p2 read file f as evt2
state ss { total := sum(evt1.amount) } group by p1.host
alert ss.total > 100
return ss.total
''')
        assert not unbound.shardable
        bound = report_for('''
proc p1 write ip i as evt1 #time(1 min)
proc p1 read file f as evt2
state ss { total := sum(evt1.amount) } group by p1.host
alert ss.total > 100
return ss.total
''')
        assert bound.shardable

    def test_group_by_agentid_attribute_is_host_local(self):
        report = report_for('''
proc p write ip i as evt #time(1 min)
state ss { total := sum(evt.amount) } group by evt.agentid
alert ss.total > 100
return ss.total
''')
        assert report.shardable

    def test_group_by_network_attribute_is_not_host_local(self):
        report = report_for('''
proc p write ip i as evt #time(1 min)
state ss { total := sum(evt.amount) } group by i.dstip
alert ss.total > 100
return i.dstip, ss.total
''')
        assert not report.shardable

    def test_group_by_process_name_is_not_host_local(self):
        # exe_name repeats across hosts (svchost.exe everywhere), so the
        # same group key would be split across shards.
        report = report_for('''
proc p write ip i as evt #time(1 min)
state ss { total := sum(evt.amount) } group by p.exe_name
alert ss.total > 100
return ss.total
''')
        assert not report.shardable


class TestRuleQueries:
    def test_single_pattern_rule_is_shardable(self):
        report = report_for('''
proc p["%cmd.exe"] write file f as evt
return p, f
''')
        assert report.shardable

    def test_connected_patterns_are_shardable(self):
        report = report_for('''
proc p1 write file f1 as evt1
proc p2 read file f1 as evt2
with evt1 -> evt2
return p1, p2
''')
        assert report.shardable

    def test_temporal_order_alone_is_not_shardable(self):
        # No shared entity variable: evt1 on host A and evt2 on host B can
        # form a sequence under the plain scheduler.
        report = report_for('''
proc p1 write file f1 as evt1
proc p2 read file f2 as evt2
with evt1 -> evt2
return p1, p2
''')
        assert not report.shardable

    def test_shared_network_variable_does_not_connect(self):
        # The same connection endpoint is observed from many hosts, so a
        # shared ip variable does not force one host.
        report = report_for('''
proc p1 send ip i1 as evt1
proc p2 recv ip i1 as evt2
with evt1 -> evt2
return p1, p2
''')
        assert not report.shardable

    def test_distinct_without_pin_is_not_shardable(self):
        report = report_for('''
proc p["%cmd.exe"] write file f as evt
return distinct p, f
''')
        assert not report.shardable
        assert "distinct" in report.reason
