"""Sharded/plain equivalence for the parallel runtime.

The sharded runtime is a pure scaling artifact: for every workload the
merged alert stream and the merged statistics must agree with the
single-process :class:`ConcurrentQueryScheduler` over the same events.
These tests enforce that property-style, over randomized multi-host
streams, across shard counts and backends, including the single-shard
fallback lane for non-shardable queries.
"""

from __future__ import annotations

import random
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConcurrentQueryScheduler
from repro.core.parallel import ShardedScheduler, merge_stats, shard_index
from repro.core.parallel.sharded import _alert_sort_key
from repro.events.entities import FileEntity, NetworkEntity, ProcessEntity
from repro.events.event import Event, Operation
from repro.events.stream import ListStream
from repro.queries.demo_queries import (
    rule_c5_data_exfiltration,
    timeseries_network_spike,
)

_HOSTS = ["db-server", "client-01", "web-01", "mail-01", "dc-01"]
_EXES = ["cmd.exe", "osql.exe", "sqlservr.exe", "sbblv.exe", "excel.exe",
         "svchost.exe", "backdoor.exe"]
_FILES = ["D:/backup/backup1.dmp", "C:/tmp/creds.txt", "C:/logs/app.log"]
_IPS = ["203.0.113.129", "10.0.2.11", "10.0.2.12"]
_OPERATIONS = [Operation.READ, Operation.WRITE, Operation.START,
               Operation.SEND, Operation.RECV, Operation.CONNECT]

#: The workload mixes host-pinned queries, unpinned-but-host-local queries
#: and queries that must fall back to the single-shard lane.
SHARDABLE_QUERIES = [
    ("pinned-rule", rule_c5_data_exfiltration()),
    ("pinned-sma", timeseries_network_spike(window_minutes=1)),
    ("per-proc-volume", '''
proc p write ip i as evt #time(30 sec)
state ss { total := sum(evt.amount) } group by p.entity_id
alert ss.total > 500000
return p, ss.total
'''),
    ("per-host-volume", '''
proc p send ip i as evt #time(45 sec)
state ss { total := sum(evt.amount) } group by evt.agentid
alert ss.total > 600000
return ss.total
'''),
    ("cmd-writes", '''
proc p["%cmd.exe"] write file f as evt
return p, f
'''),
]

SINGLE_LANE_QUERIES = [
    ("per-dst-volume", '''
proc p write ip i as evt #time(30 sec)
state ss { total := sum(evt.amount) } group by i.dstip
alert ss.total > 400000
return i.dstip, ss.total
'''),
    ("per-exe-volume", '''
proc p write ip i as evt #time(30 sec)
state ss { total := sum(evt.amount) } group by p
alert ss.total > 500000
return p, ss.total
'''),
    ("cross-host-sequence", '''
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
proc p3["%sbblv.exe"] read file f1 as evt2
with evt1 -> evt2
return p1, p3, f1
'''),
]


def multi_host_events(seed: int, count: int = 500):
    """A deterministic, time-ordered stream spread over several hosts."""
    rng = random.Random(seed)
    events = []
    timestamp = 0.0
    for _ in range(count):
        timestamp += rng.uniform(0.05, 5.0)
        host = rng.choice(_HOSTS)
        subject = ProcessEntity.make(rng.choice(_EXES),
                                     pid=rng.randint(1, 40), host=host)
        kind = rng.random()
        if kind < 0.45:
            obj = FileEntity.make(rng.choice(_FILES), host=host)
        elif kind < 0.8:
            obj = NetworkEntity.make("10.0.1.30", rng.choice(_IPS),
                                     srcport=50000,
                                     dstport=rng.choice([443, 1433]))
        else:
            obj = ProcessEntity.make(rng.choice(_EXES),
                                     pid=rng.randint(41, 80), host=host)
        events.append(Event(
            subject=subject,
            operation=rng.choice(_OPERATIONS),
            obj=obj,
            timestamp=timestamp,
            agentid=host,
            amount=rng.choice([0.0, 512.0, 1e5, 6e5, 7e6]),
        ))
    return events


def _fingerprints(alerts):
    return sorted(
        (alert.query_name, alert.timestamp, alert.data,
         repr(alert.group_key), alert.window_start, alert.window_end,
         alert.agentid, alert.model_kind)
        for alert in alerts)


def _run_plain(queries, events):
    scheduler = ConcurrentQueryScheduler()
    for name, text in queries:
        scheduler.add_query(text, name=name)
    alerts = scheduler.execute(ListStream(events, presorted=True))
    return scheduler, alerts


def _run_sharded(queries, events, shards, backend="serial", batch_size=64):
    scheduler = ShardedScheduler(shards=shards, backend=backend,
                                 batch_size=batch_size)
    for name, text in queries:
        scheduler.add_query(text, name=name)
    alerts = scheduler.execute(ListStream(events, presorted=True))
    return scheduler, alerts


# ---------------------------------------------------------------------------
# Property-style equivalence over randomized multi-host streams
# ---------------------------------------------------------------------------

@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_sharded_alerts_and_stats_match_plain(seed):
    """Serial backend, 1/2/4 shards: identical alert sets and merged stats."""
    events = multi_host_events(seed)
    plain, plain_alerts = _run_plain(SHARDABLE_QUERIES, events)
    reference = _fingerprints(plain_alerts)
    for shards in (1, 2, 4):
        sharded, alerts = _run_sharded(SHARDABLE_QUERIES, events, shards)
        assert not sharded.single_lane_query_names
        assert _fingerprints(alerts) == reference
        merged = sharded.stats
        assert merged.events_ingested == plain.stats.events_ingested
        assert merged.alerts == plain.stats.alerts
        assert merged.pattern_evaluations == plain.stats.pattern_evaluations
        assert (merged.pattern_evaluations_saved
                == plain.stats.pattern_evaluations_saved)
        # A shard evicts its buffers on its own latest event, which can lag
        # the global stream tail, so shards retain at least what the single
        # scheduler does.
        assert merged.buffered_events >= plain.stats.buffered_events
        assert merged.queries == plain.stats.queries
        assert merged.groups == plain.stats.groups


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_single_lane_fallback_matches_plain(seed):
    """Non-shardable queries fall back to a full-stream lane, alerts equal."""
    queries = SHARDABLE_QUERIES + SINGLE_LANE_QUERIES
    events = multi_host_events(seed)
    _, plain_alerts = _run_plain(queries, events)
    sharded, alerts = _run_sharded(queries, events, shards=3)
    assert sharded.single_lane_query_names == [name for name, _ in
                                               SINGLE_LANE_QUERIES]
    assert _fingerprints(alerts) == _fingerprints(plain_alerts)
    # Each stream event is counted once, not once per lane.
    assert sharded.stats.events_ingested == len(events)
    assert sharded.stats.queries == len(queries)


def test_backends_agree_on_one_stream():
    """Thread and process backends produce the serial backend's output."""
    events = multi_host_events(1234)
    queries = SHARDABLE_QUERIES + SINGLE_LANE_QUERIES
    _, reference_alerts = _run_sharded(queries, events, shards=2)
    reference = _fingerprints(reference_alerts)
    for backend in ("thread", "process"):
        sharded, alerts = _run_sharded(queries, events, shards=2,
                                       backend=backend)
        assert _fingerprints(alerts) == reference
        assert sharded.stats.events_ingested == len(events)


def test_merged_alert_order_is_deterministic():
    events = multi_host_events(77)
    _, first = _run_sharded(SHARDABLE_QUERIES, events, shards=4)
    _, second = _run_sharded(SHARDABLE_QUERIES, events, shards=4,
                             backend="thread", batch_size=17)
    assert [_alert_sort_key(a) for a in first] == [
        _alert_sort_key(a) for a in second]


# ---------------------------------------------------------------------------
# Routing and plumbing details
# ---------------------------------------------------------------------------

def test_shard_index_is_stable_and_in_range():
    for shards in (1, 2, 4, 7):
        for host in _HOSTS:
            index = shard_index(host, shards)
            assert 0 <= index < shards
            assert index == shard_index(host, shards)


def test_shard_index_is_case_insensitive():
    # SAQL equality case-folds, so a pin on "db-server" also matches
    # events reporting as "DB-Server" — both must land on the pin's shard.
    for shards in (2, 4, 7):
        assert shard_index("DB-Server", shards) == shard_index("db-server",
                                                               shards)


def test_pinned_queries_route_to_their_owner_shard_only():
    scheduler = ShardedScheduler(shards=4)
    for name, text in SHARDABLE_QUERIES:
        scheduler.add_query(text, name=name)
    pinned = {name: report.pinned_agentid
              for name, report in scheduler.reports.items()}
    for position in range(4):
        names = {name for name, _ in scheduler._queries_for_shard(position)}
        for name, pin in pinned.items():
            if pin is None:
                assert name in names          # unpinned: everywhere
            else:
                assert ((name in names)
                        == (shard_index(pin, 4) == position))


def test_router_honors_saql_equality_aliasing():
    """Agentids satisfying a pin under SAQL equality route to its shard.

    SAQL equality case-folds and treats ``_``/``%`` on either side as LIKE
    wildcards, so an event reporting as "db_server" matches a query pinned
    to "db-server" — the router must send it where that query lives.
    """
    scheduler = ShardedScheduler(shards=4)
    scheduler.add_query(rule_c5_data_exfiltration(), name="pinned")
    route = scheduler._make_router()
    pin_shard = shard_index("db-server", 4)
    assert route("db-server") == pin_shard
    assert route("DB-Server") == pin_shard
    assert route("db_server") == pin_shard      # '_' wildcard aliases the pin
    assert route("client-01") == shard_index("client-01", 4)


def test_router_rejects_cross_shard_aliasing():
    scheduler = ShardedScheduler(shards=4)
    # Find two pins that land on different shards.
    by_shard = {}
    for number in range(64):
        pin = f"host-{number:02d}"
        by_shard.setdefault(shard_index(pin, 4), pin)
        if len(by_shard) >= 2:
            break
    assert len(by_shard) >= 2
    first, second = list(by_shard.values())[:2]
    scheduler.add_query(rule_c5_data_exfiltration(agent=first), name="a")
    scheduler.add_query(rule_c5_data_exfiltration(agent=second), name="b")
    route = scheduler._make_router()
    with pytest.raises(RuntimeError):
        route("%")  # a pure-wildcard agentid satisfies both pins


def test_dead_shard_thread_fails_fast_instead_of_deadlocking():
    from repro.core.parallel.sharded import ThreadShard

    shard = ThreadShard([("q", SHARDABLE_QUERIES[0][1])],
                        enable_sharing=True)
    # Garbage input kills the shard thread; subsequent feeds must raise
    # (before this fix they blocked forever once the queue filled).
    shard.feed(["not-an-event"])
    with pytest.raises(Exception):
        for _ in range(64):
            shard.feed(["not-an-event"])
            time.sleep(0.01)


def test_all_host_events_land_on_one_shard():
    events = multi_host_events(5)
    by_host = {}
    for event in events:
        by_host.setdefault(event.agentid, set()).add(
            shard_index(event.agentid, 4))
    assert all(len(shards) == 1 for shards in by_host.values())


def test_add_query_reports_and_rejects_duplicates():
    scheduler = ShardedScheduler(shards=2)
    report = scheduler.add_query(SHARDABLE_QUERIES[0][1], name="q")
    assert report.shardable
    with pytest.raises(ValueError):
        scheduler.add_query(SHARDABLE_QUERIES[0][1], name="q")


def test_invalid_configuration_rejected():
    with pytest.raises(ValueError):
        ShardedScheduler(shards=0)
    with pytest.raises(ValueError):
        ShardedScheduler(backend="fiber")
    with pytest.raises(ValueError):
        ShardedScheduler(batch_size=0)


def test_merge_stats_counts_logical_queries_once():
    plain, _ = _run_plain(SHARDABLE_QUERIES, multi_host_events(9))
    merged = merge_stats([plain.stats, plain.stats])
    assert merged.queries == plain.stats.queries
    assert merged.alerts == 2 * plain.stats.alerts


def test_sink_receives_merged_order():
    from repro.core.engine.alerts import CollectingSink

    sink = CollectingSink()
    events = multi_host_events(42)
    scheduler = ShardedScheduler(shards=2, sink=sink)
    for name, text in SHARDABLE_QUERIES:
        scheduler.add_query(text, name=name)
    alerts = scheduler.execute(ListStream(events, presorted=True))
    assert sink.alerts == alerts
    assert scheduler.alerts == alerts
