"""Shard supervision: in-run crash/hang recovery with alert parity.

The contract under test is *fault transparency*: a supervised run whose
shard worker is SIGKILLed, SIGSTOPped, wedged in a batch or crashed by a
poison event must finish on its own — no abort, no re-run — and emit
exactly the alerts of a fault-free run.  Both recovery paths are
exercised: restart-from-checkpoint with backlog replay (a checkpoint
store is configured) and migrate-to-survivors through the snapshot
transfer codecs (no checkpoint exists).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.core.parallel import ShardedScheduler, SupervisionPolicy
from repro.core.parallel.supervision import (
    BackoffPolicy,
    ShardFailure,
)
from repro.events.entities import NetworkEntity, ProcessEntity
from repro.events.event import Event, Operation
from repro.storage import CheckpointStore
from repro.testing import FaultPlan, FaultSpec, InjectedCrash

HOSTS = [f"host-{n:02d}" for n in range(8)]

QUERY = ('proc p send ip i as evt #time(10)\n'
         'state ss { t := sum(evt.amount), n := count(evt.amount) } '
         'group by evt.agentid\n'
         'alert ss.t > 0\nreturn ss.t, ss.n')

#: A sliding window plus a sequence: state the snapshot codecs must move
#: intact for the migrate path to stay alert-identical.
SLIDING = ('proc p send ip i as evt #time(20, 5)\n'
           'state ss { t := sum(evt.amount) } group by evt.agentid\n'
           'alert ss.t > 400\nreturn ss.t')

#: Tuned way down from the defaults so hangs resolve in test time.
POLICY = SupervisionPolicy(probe_interval=256, probe_timeout=2.0,
                           feed_timeout=2.0, result_grace=3.0)


def _event(host, timestamp, amount=100.0):
    return Event(
        subject=ProcessEntity.make("x.exe", pid=1, host=host),
        operation=Operation.SEND,
        obj=NetworkEntity.make("10.0.1.2", "10.0.0.9", srcport=5,
                               dstport=443),
        timestamp=timestamp, agentid=host, amount=amount)


def make_events(count=4000):
    return [_event(HOSTS[position % len(HOSTS)], position * 0.05)
            for position in range(count)]


def fingerprints(alerts):
    return sorted((alert.query_name, alert.timestamp, alert.data,
                   repr(alert.group_key), alert.window_start,
                   alert.window_end, alert.agentid) for alert in alerts)


def oracle_fingerprints(queries=((("q", QUERY)),), events=None):
    scheduler = ShardedScheduler(shards=3, backend="serial", batch_size=64)
    for name, text in queries:
        scheduler.add_query(text, name=name)
    return fingerprints(scheduler.execute(iter(events or make_events())))


def build(backend, **kwargs):
    scheduler = ShardedScheduler(shards=3, backend=backend, batch_size=64,
                                 supervision=kwargs.pop("supervision",
                                                        POLICY),
                                 **kwargs)
    scheduler.add_query(QUERY, name="q")
    return scheduler


# -- the two recovery paths (the acceptance scenarios) -----------------------

def test_process_sigkill_restarts_from_checkpoint_with_parity(tmp_path):
    expected = oracle_fingerprints()
    store = CheckpointStore(tmp_path / "ckpt")
    plan = FaultPlan([FaultSpec("kill", shard=1, after_events=600)])
    scheduler = build("process", checkpoint_store=store,
                      checkpoint_interval=500, fault_plan=plan)
    alerts = scheduler.execute(iter(make_events()))
    assert len(scheduler.recoveries) == 1
    record = scheduler.recoveries[0]
    assert record.mode == "restart"
    assert record.reason == "dead"
    assert record.position == 1
    assert record.restored_checkpoint
    assert record.events_replayed > 0
    assert record.latency < POLICY.probe_timeout + POLICY.result_grace + 10
    assert fingerprints(alerts) == expected


def test_process_sigkill_migrates_to_survivors_with_parity():
    expected = oracle_fingerprints()
    plan = FaultPlan([FaultSpec("kill", shard=1, after_events=600)])
    scheduler = build("process", fault_plan=plan)
    alerts = scheduler.execute(iter(make_events()))
    assert len(scheduler.recoveries) == 1
    record = scheduler.recoveries[0]
    assert record.mode == "migrate"
    assert record.reason == "dead"
    assert not record.restored_checkpoint
    assert record.migrated_agentids  # the dead shard's hosts moved
    assert fingerprints(alerts) == expected


def test_migrated_state_survives_through_transfer_codecs():
    """Sliding-window state crosses the migration intact (not just counts)."""
    events = make_events()
    expected = oracle_fingerprints(queries=[("s", SLIDING)], events=events)
    plan = FaultPlan([FaultSpec("kill", shard=1, after_events=900)])
    scheduler = ShardedScheduler(shards=3, backend="process", batch_size=64,
                                 supervision=POLICY, fault_plan=plan)
    scheduler.add_query(SLIDING, name="s")
    alerts = scheduler.execute(iter(events))
    assert scheduler.recoveries and scheduler.recoveries[0].mode == "migrate"
    assert fingerprints(alerts) == expected


# -- hung workers (SIGSTOP / wedged batch) -----------------------------------

def _stopping_stream(events, stop_after, shard_name, pace=0.02):
    """Yield events; at ``stop_after``, SIGSTOP the named shard worker and
    pace the rest of the stream so supervision gets wall-clock time."""
    stopped = False
    for position, event in enumerate(events):
        if position == stop_after and not stopped:
            stopped = True
            victims = [child for child in multiprocessing.active_children()
                       if (child.name or "") == shard_name]
            assert victims, "shard worker not found to SIGSTOP"
            os.kill(victims[0].pid, signal.SIGSTOP)
        if stopped and position % 64 == 0:
            time.sleep(pace)
        yield event


def test_process_sigstop_is_detected_and_recovered_with_parity():
    expected = oracle_fingerprints()
    scheduler = build("process")
    alerts = scheduler.execute(
        _stopping_stream(make_events(), 600, "saql-shard-1"))
    assert scheduler.recoveries
    assert scheduler.recoveries[0].reason == "hung"
    assert scheduler.recoveries[0].position == 1
    assert fingerprints(alerts) == expected


def test_thread_shard_wedged_batch_is_recovered_with_parity():
    """A thread lane sleep-blocked mid-batch is abandoned and replaced."""
    expected = oracle_fingerprints()
    plan = FaultPlan([FaultSpec("hang", shard=1, after_events=600,
                                duration=8.0)])
    scheduler = build("thread", fault_plan=plan)
    alerts = scheduler.execute(iter(make_events()))
    assert scheduler.recoveries
    assert scheduler.recoveries[0].position == 1
    assert fingerprints(alerts) == expected


# -- crashes (poison batches) ------------------------------------------------

@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_injected_crash_is_recovered_on_every_backend(backend, tmp_path):
    expected = oracle_fingerprints()
    store = CheckpointStore(tmp_path / f"ckpt-{backend}")
    plan = FaultPlan([FaultSpec("crash", shard=0, after_events=900)])
    scheduler = build(backend, checkpoint_store=store,
                      checkpoint_interval=400, fault_plan=plan)
    alerts = scheduler.execute(iter(make_events()))
    assert len(scheduler.recoveries) == 1
    assert scheduler.recoveries[0].mode == "restart"
    assert scheduler.recoveries[0].restored_checkpoint
    assert fingerprints(alerts) == expected


def test_unsupervised_run_still_fails_fast():
    plan = FaultPlan([FaultSpec("crash", shard=0, after_events=600)])
    scheduler = ShardedScheduler(shards=3, backend="thread", batch_size=64,
                                 fault_plan=plan)
    scheduler.add_query(QUERY, name="q")
    with pytest.raises(RuntimeError):
        scheduler.execute(iter(make_events()))


def test_recovery_budget_exhaustion_fails_the_run():
    """A deterministic poison batch must not crash-replay-crash forever."""
    plan = FaultPlan([FaultSpec("crash", shard=0, after_events=600)],
                     rearm_on_restart=True)
    policy = SupervisionPolicy(probe_interval=256, probe_timeout=2.0,
                               feed_timeout=2.0, max_recoveries=2,
                               recovery="restart")
    scheduler = ShardedScheduler(shards=3, backend="serial", batch_size=64,
                                 supervision=policy, fault_plan=plan)
    scheduler.add_query(QUERY, name="q")
    with pytest.raises(ShardFailure, match="recovery budget"):
        scheduler.execute(iter(make_events()))
    assert len(scheduler.recoveries) == policy.max_recoveries


def test_supervised_clean_run_is_identical_and_records_nothing():
    expected = oracle_fingerprints()
    for backend in ("serial", "thread", "process"):
        scheduler = build(backend)
        alerts = scheduler.execute(iter(make_events()))
        assert scheduler.recoveries == []
        assert fingerprints(alerts) == expected


# -- policy and backoff plumbing ---------------------------------------------

def test_supervision_policy_validation():
    with pytest.raises(ValueError):
        SupervisionPolicy(probe_interval=0)
    with pytest.raises(ValueError):
        SupervisionPolicy(probe_timeout=0.0)
    with pytest.raises(ValueError):
        SupervisionPolicy(max_recoveries=0)
    with pytest.raises(ValueError):
        SupervisionPolicy(recovery="reboot")
    with pytest.raises(ValueError):
        ShardedScheduler(supervision="yes")
    with pytest.raises(ValueError):
        ShardedScheduler(quarantine_errors=0)


def test_backoff_waiter_deadline_and_reset():
    policy = BackoffPolicy(initial=0.001, maximum=0.004, factor=2.0,
                           jitter=0.0)
    waiter = policy.waiter(deadline=0.05)
    assert not waiter.expired
    quanta = [waiter.interval() for _ in range(4)]
    assert quanta[0] == pytest.approx(0.001)
    assert quanta[-1] <= 0.004 + 1e-9
    time.sleep(0.06)
    assert waiter.expired
    assert waiter.wait() is False
    waiter.reset()
    assert not waiter.expired
    with pytest.raises(ValueError):
        BackoffPolicy(initial=0.0)
    with pytest.raises(ValueError):
        BackoffPolicy(factor=0.5)
    with pytest.raises(ValueError):
        BackoffPolicy(jitter=1.5)


def test_fault_spec_parsing_and_validation():
    from repro.testing import parse_fault_spec
    spec = parse_fault_spec("kill:shard=1,after=5000")
    assert spec.kind == "kill" and spec.shard == 1
    assert spec.after_events == 5000
    spec = parse_fault_spec("hang:duration=30,after=100")
    assert spec.duration == 30.0
    spec = parse_fault_spec("query-error:query=exfil")
    assert spec.query == "exfil"
    assert parse_fault_spec("crash").shard is None
    with pytest.raises(ValueError):
        parse_fault_spec("melt")
    with pytest.raises(ValueError):
        parse_fault_spec("kill:patience=3")
    with pytest.raises(ValueError):
        FaultSpec("hang")  # needs a duration
    with pytest.raises(ValueError):
        FaultSpec("query-error")  # needs a query name
