"""Cross-backend metrics merging: shards' registries → one coherent view.

Wall-clock timing histograms can never match across backends, so parity
is asserted on the *deterministic* families — event/batch/alert counters
and the alert window-span histogram (event-time, not wall-time) — which
must be bucket-for-bucket identical across serial, thread and process
backends and equal to a single-process run over the same stream.  The
timing families are asserted structurally (present, counts consistent).
"""

from __future__ import annotations

import pytest

from repro.core import ConcurrentQueryScheduler
from repro.core.parallel import ShardedScheduler
from repro.events.entities import NetworkEntity, ProcessEntity
from repro.events.event import Event, Operation
from repro.events.stream import ListStream

PER_HOST = ('proc p send ip i as evt #time(10)\n'
            'state ss { t := sum(evt.amount) } group by evt.agentid\n'
            'alert ss.t > 200\nreturn ss.t')

#: Stream-deterministic families: identical across backends and vs a
#: single-process run.  (Batch counts are execution-shape-dependent —
#: each lane batches its own sub-stream — so they are not in this set.)
DETERMINISTIC = ("saql_events_total", "saql_alerts_total",
                 "saql_alert_window_span_seconds")


def _event(host, timestamp, event_id):
    return Event(
        subject=ProcessEntity.make("x.exe", pid=1, host=host),
        operation=Operation.SEND,
        obj=NetworkEntity.make("10.0.1.2", "10.0.0.9", dstport=443),
        timestamp=timestamp, agentid=host, amount=60.0,
        event_id=event_id)


def _events(count=600, hosts=4):
    return [_event(f"host-{index % hosts:02d}", index * 0.1, index + 1)
            for index in range(count)]


def _family(snapshot, name):
    family = snapshot["families"].get(name, {"series": []})
    keyed = {}
    for entry in family["series"]:
        key = tuple(sorted(entry["labels"].items()))
        if "buckets" in entry:
            keyed[key] = (tuple(entry["buckets"]), entry["count"],
                          entry["min"], entry["max"])
        else:
            keyed[key] = entry["value"]
    return keyed


def _run_sharded(backend, shards=2):
    scheduler = ShardedScheduler(shards=shards, backend=backend,
                                 batch_size=64)
    scheduler.add_query(PER_HOST, name="sum")
    alerts = scheduler.execute(ListStream(_events(), presorted=True))
    return scheduler, alerts


@pytest.fixture(scope="module")
def single_reference():
    scheduler = ConcurrentQueryScheduler()
    scheduler.add_query(PER_HOST, name="sum")
    alerts = scheduler.process_events(_events())
    alerts += scheduler.finish()
    return scheduler.metrics_snapshot(), alerts


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_merged_deterministic_families_match_single_process(
        backend, single_reference):
    reference, reference_alerts = single_reference
    scheduler, alerts = _run_sharded(backend)
    assert len(alerts) == len(reference_alerts) > 0
    merged = scheduler.metrics_snapshot()
    assert merged is not None
    for name in DETERMINISTIC:
        assert _family(merged, name) == _family(reference, name), name


def test_merged_view_spans_multiple_shards():
    """The alert series is non-zero and assembled from >= 2 shards."""
    scheduler, _ = _run_sharded("serial")
    merged = scheduler.metrics_snapshot()
    lags = _family(merged, "saql_watermark_lag_seconds")
    shards = {dict(key)["shard"] for key in lags}
    assert len(shards) >= 2
    alerts = _family(merged, "saql_alerts_total")
    assert sum(alerts.values()) > 0
    # Per-shard contributions really summed: each shard saw events, and
    # the merged events counter equals the full stream.
    events = _family(merged, "saql_events_total")
    assert events[()] == len(_events())


@pytest.mark.parametrize("backend", ["serial", "process"])
def test_timing_families_are_present_and_consistent(backend):
    scheduler, _ = _run_sharded(backend)
    merged = scheduler.metrics_snapshot()
    batch = _family(merged, "saql_batch_seconds")[()]
    batches = _family(merged, "saql_batches_total")[()]
    assert batch[1] == batches  # one observation per processed batch
    stages = {dict(key)["stage"]
              for key in _family(merged, "saql_stage_seconds")}
    assert {"columnar_pivot", "predicate_eval", "pattern_match"} <= stages


def test_live_metrics_control_op_mid_run():
    """The ("metrics", seq) control round returns per-lane snapshots at
    a batch boundary, before finish() — the live-scrape path."""
    from repro.core.parallel.sharded import SerialShard, shard_index
    from repro.obs import merge_snapshots

    lanes = [SerialShard([("sum", PER_HOST)], enable_sharing=True,
                         index=position) for position in range(2)]
    batches = [[], []]
    for event in _events()[:300]:
        batches[shard_index(event.agentid, 2)].append(event)
    snapshots = []
    for lane, batch in zip(lanes, batches):
        lane.feed(batch)
        lane.request_control(("metrics", 7))
        ((kind, seq, snapshot),) = lane.poll_control()
        assert (kind, seq) == ("metrics", 7)
        snapshots.append(snapshot)
    live = merge_snapshots(snapshots)
    assert live["families"]["saql_events_total"]["series"][0]["value"] \
        == 300
    # Both lanes contributed their own watermark series.
    shards = {entry["labels"]["shard"] for entry in
              live["families"]["saql_watermark_lag_seconds"]["series"]}
    assert shards == {"0", "1"}


def test_metrics_disabled_sharded_run_reports_none():
    scheduler = ShardedScheduler(shards=2, backend="serial",
                                 batch_size=64, metrics=False)
    scheduler.add_query(PER_HOST, name="sum")
    alerts = scheduler.execute(ListStream(_events(200), presorted=True))
    assert alerts  # behavior unchanged, only observation disabled
    assert scheduler.metrics_snapshot() is None
