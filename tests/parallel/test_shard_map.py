"""Load-aware shard assignment: planning, routing and equivalence."""

from __future__ import annotations

import pytest

from repro.core import ConcurrentQueryScheduler
from repro.core.parallel import ShardedScheduler
from repro.events.stream import ListStream
from repro.events.event import Operation
from tests.conftest import make_connection, make_event, make_process

SPIKE_QUERY = '''
proc p write ip i as evt #time(60)
state ss {{
  total := sum(evt.amount)
}} group by evt.agentid
alert ss.total > 0
return p, ss.total
'''

PINNED_QUERY = '''
agentid = "{agent}"
proc p write ip i as evt #time(60)
state ss {{
  total := sum(evt.amount)
}} group by p
alert ss.total > 0
return p, ss.total
'''


def skewed_events(heavy="db-server", lights=("web-01", "web-02", "client-01"),
                  heavy_count=200, light_count=20):
    """A stream where one host dominates (the ROADMAP's hot-host case)."""
    events = []
    timestamp = 0.0
    hosts = [heavy] * heavy_count + [
        host for host in lights for _ in range(light_count)]
    for position, host in enumerate(sorted(hosts * 1, key=lambda h: h)):
        timestamp += 0.5
        events.append(make_event(
            make_process(f"{host}-app.exe", pid=1, host=host),
            Operation.WRITE, make_connection("10.0.0.9"), timestamp,
            agentid=host, amount=100.0 + position))
    events.sort(key=lambda event: event.timestamp)
    return events


def _fingerprints(alerts):
    return sorted(repr((a.query_name, a.timestamp, a.data, repr(a.group_key),
                        a.window_start, a.window_end, a.agentid))
                  for a in alerts)


class TestPlanShardMap:
    def test_heaviest_host_gets_its_own_shard(self):
        scheduler = ShardedScheduler(shards=2)
        scheduler.add_query(SPIKE_QUERY.format(), name="q")
        plan = scheduler.plan_shard_map(
            {"db-server": 1000, "web-01": 50, "web-02": 40, "client-01": 30})
        assert set(plan.values()) == {0, 1}
        heavy_shard = plan["db-server"]
        assert all(plan[host] != heavy_shard
                   for host in ("web-01", "web-02", "client-01"))

    def test_deterministic_for_equal_counts(self):
        scheduler = ShardedScheduler(shards=3)
        counts = {f"host-{k}": 10 for k in range(9)}
        assert (scheduler.plan_shard_map(counts)
                == scheduler.plan_shard_map(dict(reversed(list(
                    counts.items())))))

    def test_pin_clusters_with_matching_agentids(self):
        scheduler = ShardedScheduler(shards=4)
        scheduler.add_query(PINNED_QUERY.format(agent="DB-Server"),
                            name="pinned")
        plan = scheduler.plan_shard_map({"db-server": 500, "web-01": 400})
        # The pin literal and the observed (differently-cased) agentid
        # must land on one shard so the pinned query observes its host.
        assert plan["db-server"] == plan["db-server".casefold()]
        assert plan["DB-Server".casefold()] == plan["db-server"]

    def test_unseen_pins_keep_hash_spreading(self):
        """Pins absent from the observed counts must not pile onto the
        least-loaded shard — they keep their stable-hash placement."""
        from repro.core.parallel.sharded import shard_index
        scheduler = ShardedScheduler(shards=4)
        pins = [f"late-host-{k}" for k in range(8)]
        for position, pin in enumerate(pins):
            scheduler.add_query(PINNED_QUERY.format(agent=pin),
                                name=f"pinned-{position}")
        plan = scheduler.plan_shard_map({"db-server": 100, "web-01": 60})
        for pin in pins:
            assert pin.casefold() not in plan
        scheduler.set_shard_map(plan)
        homes = {scheduler._home_shard(pin) for pin in pins}
        assert homes == {shard_index(pin, 4) for pin in pins}
        assert len(homes) > 1

    def test_loads_balance_greedily(self):
        scheduler = ShardedScheduler(shards=2)
        plan = scheduler.plan_shard_map(
            {"a": 50, "b": 30, "c": 30, "d": 25, "e": 25})
        loads = {0: 0, 1: 0}
        for host, count in (("a", 50), ("b", 30), ("c", 30), ("d", 25),
                            ("e", 25)):
            loads[plan[host]] += count
        assert abs(loads[0] - loads[1]) <= 20


class TestShardMapValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            ShardedScheduler(shards=2, shard_map="magic")

    def test_out_of_range_mapping_rejected(self):
        with pytest.raises(ValueError):
            ShardedScheduler(shards=2, shard_map={"db-server": 5})
        scheduler = ShardedScheduler(shards=2)
        with pytest.raises(ValueError):
            scheduler.set_shard_map({"db-server": -1})

    def test_casefold_colliding_entries_rejected(self):
        scheduler = ShardedScheduler(shards=2)
        with pytest.raises(ValueError):
            scheduler.set_shard_map({"DB-server": 0, "db-server": 1})
        # Consistent duplicates are fine.
        scheduler.set_shard_map({"DB-server": 1, "db-server": 1})
        assert scheduler.resolved_shard_map == {"db-server": 1}

    def test_bad_prefix_rejected(self):
        with pytest.raises(ValueError):
            ShardedScheduler(shards=2, shard_map="auto", auto_prefix=0)

    def test_hash_mode_is_default(self):
        assert ShardedScheduler(shards=2,
                                shard_map="hash").resolved_shard_map is None


class TestAutoMapExecution:
    def _run(self, events, queries, **kwargs):
        scheduler = ShardedScheduler(shards=3, backend="serial", **kwargs)
        for name, text in queries:
            scheduler.add_query(text, name=name)
        alerts = scheduler.execute(ListStream(events, presorted=True))
        return scheduler, alerts

    def test_auto_map_matches_hash_and_single_process_alerts(self):
        events = skewed_events()
        queries = [("spike", SPIKE_QUERY.format()),
                   ("pinned", PINNED_QUERY.format(agent="db-server"))]
        reference = ConcurrentQueryScheduler()
        for name, text in queries:
            reference.add_query(text, name=name)
        expected = _fingerprints(reference.execute(
            ListStream(events, presorted=True)))
        _, hash_alerts = self._run(events, queries)
        auto_scheduler, auto_alerts = self._run(events, queries,
                                                shard_map="auto",
                                                auto_prefix=100)
        assert _fingerprints(hash_alerts) == expected
        assert _fingerprints(auto_alerts) == expected
        assert auto_scheduler.resolved_shard_map is not None
        assert "db-server" in auto_scheduler.resolved_shard_map

    def test_auto_map_separates_the_hot_host(self):
        events = skewed_events()
        queries = [("spike", SPIKE_QUERY.format())]
        scheduler, _ = self._run(events, queries, shard_map="auto",
                                 auto_prefix=len(events))
        plan = scheduler.resolved_shard_map
        heavy = plan["db-server"]
        assert all(plan[host] != heavy
                   for host in ("web-01", "web-02", "client-01"))
        # The heavy host's shard must not also ingest the light hosts.
        per_shard = [stats.events_ingested
                     for stats in scheduler.per_shard_stats]
        assert per_shard[heavy] == 200

    def test_explicit_map_routes_and_revalidates_per_run(self):
        events = skewed_events()
        queries = [("spike", SPIKE_QUERY.format())]
        scheduler = ShardedScheduler(shards=2, backend="serial",
                                     shard_map={"db-server": 1,
                                                "web-01": 0,
                                                "web-02": 0,
                                                "client-01": 0})
        for name, text in queries:
            scheduler.add_query(text, name=name)
        alerts = scheduler.execute(ListStream(events, presorted=True))
        reference = ConcurrentQueryScheduler()
        for name, text in queries:
            reference.add_query(text, name=name)
        assert _fingerprints(alerts) == _fingerprints(reference.execute(
            ListStream(events, presorted=True)))
        assert scheduler.per_shard_stats[1].events_ingested == 200

    def test_plan_then_set_shard_map_round_trip(self):
        events = skewed_events()
        queries = [("spike", SPIKE_QUERY.format())]
        scheduler = ShardedScheduler(shards=2, backend="serial")
        for name, text in queries:
            scheduler.add_query(text, name=name)
        counts = {}
        for event in events:
            counts[event.agentid] = counts.get(event.agentid, 0) + 1
        scheduler.set_shard_map(scheduler.plan_shard_map(counts))
        alerts = scheduler.execute(ListStream(events, presorted=True))
        reference = ConcurrentQueryScheduler()
        for name, text in queries:
            reference.add_query(text, name=name)
        assert _fingerprints(alerts) == _fingerprints(reference.execute(
            ListStream(events, presorted=True)))
