"""Mid-stream work stealing: eligibility, planning, and oracle parity.

The steal-equivalence suite forces migrations (tiny epoch interval, low
imbalance ratio, a mid-stream load shift) and proves the sharded runtime
still reproduces the single-process :class:`ConcurrentQueryScheduler`'s
alerts and statistics exactly — the dynamic rebalancer, like the static
sharding before it, must be a pure scaling artifact.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConcurrentQueryScheduler, parse_query
from repro.core.parallel import (
    ShardedScheduler,
    StealEligibility,
    WorkStealingBalancer,
    analyze_shardability,
    analyze_steal_safety,
    steal_eligibility,
)
from repro.events.entities import NetworkEntity, ProcessEntity
from repro.events.event import Event, Operation
from repro.events.stream import ListStream
from repro.queries.demo_queries import rule_c5_data_exfiltration

#: Steal-safe workload: a tumbling per-host aggregation plus a stateless
#: single-pattern rule query — both register on every shard unpinned.
STEALABLE_QUERIES = [
    ("per-host-volume", '''
proc p send ip i as evt #time(10)
state ss { total := sum(evt.amount) } group by evt.agentid
alert ss.total > 1000
return ss.total
'''),
    ("send-watch", '''
proc p["%x.exe"] send ip i as evt
alert evt.amount > 400
return p, i.dstip
'''),
]

#: Shardable (host-local groups) but hard steal-vetoed: invariant models
#: train per group across windows, which no migration can reproduce.
INVARIANT_VETO = '''
proc p send ip i as evt #time(10)
state ss { t := sum(evt.amount) } group by evt.agentid
invariant[2][offline] {
  a := 0
  a = ss.t
}
alert ss.t > a
return ss.t
'''

HOSTS = [f"host-{n:02d}" for n in range(8)]


def _event(host: str, timestamp: float, amount: float = 500.0) -> Event:
    return Event(
        subject=ProcessEntity.make("x.exe", pid=1, host=host),
        operation=Operation.SEND,
        obj=NetworkEntity.make("10.0.1.2", "10.0.0.9", srcport=5,
                               dstport=443),
        timestamp=timestamp,
        agentid=host,
        amount=amount,
    )


def shifting_skew_events(seed: int, count: int = 4000,
                         burst_host: str = "host-00"):
    """Uniform load that collapses onto one host mid-stream.

    The shift happens after the first third — exactly the load a static
    (prefix-observed) shard map cannot anticipate.
    """
    rng = random.Random(seed)
    events = []
    for position in range(count):
        if position < count // 3:
            host = HOSTS[position % len(HOSTS)]
        elif rng.random() < 0.7:
            host = burst_host
        else:
            host = rng.choice(HOSTS)
        events.append(_event(host, position * 0.01))
    return events


def _fingerprints(alerts):
    return sorted(
        (alert.query_name, alert.timestamp, alert.data,
         repr(alert.group_key), alert.window_start, alert.window_end,
         alert.agentid, alert.model_kind)
        for alert in alerts)


def _run_plain(queries, events):
    scheduler = ConcurrentQueryScheduler()
    for name, text in queries:
        scheduler.add_query(text, name=name)
    alerts = scheduler.execute(ListStream(events, presorted=True))
    return scheduler, alerts


def _run_stealing(queries, events, shards=2, backend="serial",
                  batch_size=64, interval=200, ratio=1.05):
    scheduler = ShardedScheduler(shards=shards, backend=backend,
                                 batch_size=batch_size,
                                 rebalance_interval=interval,
                                 rebalance_ratio=ratio)
    for name, text in queries:
        scheduler.add_query(text, name=name)
    alerts = scheduler.execute(ListStream(events, presorted=True))
    return scheduler, alerts


# ---------------------------------------------------------------------------
# Steal-equivalence: alert/stats parity with the serial oracle under
# forced migrations
# ---------------------------------------------------------------------------

@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_forced_steals_match_single_process_oracle(seed):
    """Serial backend under forced steals: byte-identical alerts, stats."""
    events = shifting_skew_events(seed)
    plain, plain_alerts = _run_plain(STEALABLE_QUERIES, events)
    sharded, alerts = _run_stealing(STEALABLE_QUERIES, events)
    # The property is only meaningful if migrations actually happened.
    assert sharded.migrations, "forced-steal workload produced no steals"
    assert _fingerprints(alerts) == _fingerprints(plain_alerts)
    merged = sharded.stats
    assert merged.events_ingested == plain.stats.events_ingested
    assert merged.alerts == plain.stats.alerts
    assert merged.pattern_evaluations == plain.stats.pattern_evaluations
    assert (merged.pattern_evaluations_saved
            == plain.stats.pattern_evaluations_saved)
    assert merged.queries == plain.stats.queries
    assert merged.groups == plain.stats.groups


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_forced_steals_across_shard_counts(seed):
    events = shifting_skew_events(seed)
    _, plain_alerts = _run_plain(STEALABLE_QUERIES, events)
    reference = _fingerprints(plain_alerts)
    for shards in (2, 3, 4):
        sharded, alerts = _run_stealing(STEALABLE_QUERIES, events,
                                        shards=shards)
        assert _fingerprints(alerts) == reference


def test_forced_steals_thread_backend_parity():
    """Thread backend: migrations complete asynchronously, parity holds."""
    events = shifting_skew_events(7)
    _, plain_alerts = _run_plain(STEALABLE_QUERIES, events)
    reference = _fingerprints(plain_alerts)
    migrated = False
    for attempt in range(3):
        sharded, alerts = _run_stealing(STEALABLE_QUERIES, events,
                                        backend="thread")
        assert _fingerprints(alerts) == reference
        if sharded.migrations:
            migrated = True
            break
    assert migrated, "thread backend never completed a migration"


def test_process_backend_parity_with_rebalancing_enabled():
    """Process backend: control channel works, parity regardless of timing.

    Whether a migration completes depends on control round-trip latency
    versus stream length, so only parity (and a clean run) is asserted.
    """
    events = shifting_skew_events(11, count=3000)
    _, plain_alerts = _run_plain(STEALABLE_QUERIES, events)
    sharded, alerts = _run_stealing(STEALABLE_QUERIES, events,
                                    backend="process")
    assert _fingerprints(alerts) == _fingerprints(plain_alerts)
    assert sharded.stats.events_ingested == len(events)


def test_out_of_order_stragglers_route_to_donor():
    """Pre-cut events arriving after the cut decision stay with the donor.

    The router cuts by timestamp, not by arrival: an event below the cut
    still belongs to donor windows.  Inject slight disorder near the cut
    and require oracle parity.
    """
    events = shifting_skew_events(5, count=3000)
    # Swap neighbours here and there: stays within open windows.
    for position in range(100, len(events) - 1, 97):
        a, b = events[position], events[position + 1]
        if a.agentid != b.agentid:
            events[position], events[position + 1] = b, a
    _, plain_alerts = _run_plain(STEALABLE_QUERIES, events)
    sharded, alerts = _run_stealing(STEALABLE_QUERIES, events)
    assert _fingerprints(alerts) == _fingerprints(plain_alerts)


def test_pinned_agentids_are_never_stolen():
    queries = STEALABLE_QUERIES + [
        ("pinned", rule_c5_data_exfiltration(agent="host-00"))]
    events = shifting_skew_events(3)
    _, plain_alerts = _run_plain(queries, events)
    sharded, alerts = _run_stealing(queries, events, shards=3)
    assert _fingerprints(alerts) == _fingerprints(plain_alerts)
    assert all(record.agentid != "host-00"
               for record in sharded.migrations)


def test_migration_records_are_coherent():
    events = shifting_skew_events(1)
    sharded, _ = _run_stealing(STEALABLE_QUERIES, events)
    assert sharded.migrations
    eligibility = sharded.last_steal_eligibility
    assert eligibility is not None and eligibility.eligible
    assert eligibility.alignment == 10  # the tumbling window's hop
    for record in sharded.migrations:
        assert record.source != record.target
        assert 0 <= record.source < 2 and 0 <= record.target < 2
        assert record.cut % 10 == 0
        assert record.events_held >= 0


# ---------------------------------------------------------------------------
# State-transfer steals: lanes the static analysis used to veto outright
# (sliding windows, state histories, sequences, distinct) now migrate by
# exporting the victim's state slice through the snapshot codecs.
# ---------------------------------------------------------------------------

TRANSFER_QUERIES = [
    ("sliding-volume", '''
proc p send ip i as evt #time(20, 5)
state ss { total := sum(evt.amount) } group by evt.agentid
alert ss.total > 1000
return ss.total'''),
    ("history-trend", '''
proc p send ip i as evt #time(10)
state[3] ss { t := sum(evt.amount) } group by evt.agentid
alert ss[0].t > ss[1].t
return ss[0].t'''),
    ("seq-start-send", '''
proc p1["%x.exe"] start proc p2 as evt1
proc p2 send ip i as evt2
with evt1 -> evt2
return p1, p2'''),
    ("distinct-max", '''
proc p send ip i as evt #time(10)
state ss { m := max(evt.amount) } group by evt.agentid
alert ss.m > 400
return distinct ss.m'''),
]


def transfer_skew_events(seed: int, count: int = 3000):
    """The shifting-skew shape plus start events to feed the sequences."""
    rng = random.Random(seed)
    events = []
    for position in range(count):
        if position < count // 3:
            host = HOSTS[position % len(HOSTS)]
        elif rng.random() < 0.7:
            host = "host-00"
        else:
            host = rng.choice(HOSTS)
        timestamp = position * 0.01
        if rng.random() < 0.08:
            events.append(Event(
                subject=ProcessEntity.make("x.exe", pid=1, host=host),
                operation=Operation.START,
                obj=ProcessEntity.make("y.exe", pid=2, host=host),
                timestamp=timestamp, agentid=host))
        else:
            exe = "x.exe" if rng.random() < 0.5 else "y.exe"
            events.append(Event(
                subject=ProcessEntity.make(exe, pid=2, host=host),
                operation=Operation.SEND,
                obj=NetworkEntity.make("10.0.1.2", "10.0.0.9", srcport=5,
                                       dstport=443),
                timestamp=timestamp, agentid=host,
                amount=float(rng.randrange(100, 600))))
    return events


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_forced_transfer_steals_match_single_process_oracle(seed):
    """Serial backend, transfer lanes: byte-identical alerts under steals."""
    events = transfer_skew_events(seed)
    plain, plain_alerts = _run_plain(TRANSFER_QUERIES, events)
    sharded, alerts = _run_stealing(TRANSFER_QUERIES, events,
                                    batch_size=32, interval=150)
    assert sharded.last_steal_eligibility is not None
    assert sharded.last_steal_eligibility.mode == "transfer"
    assert sharded.migrations, "transfer workload produced no steals"
    assert all(record.transferred for record in sharded.migrations)
    assert _fingerprints(alerts) == _fingerprints(plain_alerts)
    assert sharded.stats.events_ingested == plain.stats.events_ingested
    assert sharded.stats.alerts == plain.stats.alerts


def test_transfer_steals_thread_backend_parity():
    """Thread backend: exports/imports complete asynchronously."""
    events = transfer_skew_events(7)
    _, plain_alerts = _run_plain(TRANSFER_QUERIES, events)
    reference = _fingerprints(plain_alerts)
    migrated = False
    for attempt in range(4):
        sharded, alerts = _run_stealing(TRANSFER_QUERIES, events,
                                        backend="thread", batch_size=32,
                                        interval=150)
        assert _fingerprints(alerts) == reference
        if sharded.migrations:
            migrated = True
            break
    assert migrated, "thread backend never completed a transfer steal"


def test_transfer_steals_process_backend_parity():
    """Process backend: the state slice crosses a process boundary."""
    events = transfer_skew_events(11, count=2500)
    _, plain_alerts = _run_plain(TRANSFER_QUERIES, events)
    sharded, alerts = _run_stealing(TRANSFER_QUERIES, events,
                                    backend="process", batch_size=32,
                                    interval=150)
    assert _fingerprints(alerts) == _fingerprints(plain_alerts)
    assert sharded.stats.events_ingested == len(events)


def test_transfer_steals_across_shard_counts():
    events = transfer_skew_events(3)
    _, plain_alerts = _run_plain(TRANSFER_QUERIES, events)
    reference = _fingerprints(plain_alerts)
    for shards in (2, 3):
        sharded, alerts = _run_stealing(TRANSFER_QUERIES, events,
                                        shards=shards, batch_size=32,
                                        interval=150)
        assert _fingerprints(alerts) == reference


def test_transfer_steals_with_pinned_query_in_the_mix():
    """Pinned engines live only on the pin's shard; the thief skips their
    (empty by construction) slices on import, and the pinned host is
    never chosen as a victim."""
    queries = TRANSFER_QUERIES + [
        ("pinned", rule_c5_data_exfiltration(agent="host-00"))]
    events = transfer_skew_events(5, count=2500)
    _, plain_alerts = _run_plain(queries, events)
    sharded, alerts = _run_stealing(queries, events, shards=3,
                                    batch_size=32, interval=150)
    assert _fingerprints(alerts) == _fingerprints(plain_alerts)
    assert all(record.agentid != "host-00"
               for record in sharded.migrations)


def test_transfer_records_are_coherent():
    events = transfer_skew_events(1)
    sharded, _ = _run_stealing(TRANSFER_QUERIES, events, batch_size=32,
                               interval=150)
    assert sharded.migrations
    for record in sharded.migrations:
        assert record.transferred
        assert record.source != record.target
        assert record.events_held >= 0


# ---------------------------------------------------------------------------
# Static eligibility analysis
# ---------------------------------------------------------------------------

def _steal(query_text: str):
    return analyze_steal_safety(parse_query(query_text))


def test_steal_safety_per_query_shapes():
    mode, _, alignment = _steal(STEALABLE_QUERIES[0][1])
    assert mode == "aligned" and alignment == 10

    mode, _, alignment = _steal(STEALABLE_QUERIES[1][1])
    assert mode == "aligned" and alignment is None  # stateless: any cut

    # Gapped window (hop > length): hop multiples are still uncrossed.
    mode, _, alignment = _steal('''
proc p send ip i as evt #time(10, 15)
state ss { t := sum(evt.amount) } group by evt.agentid
alert ss.t > 0
return ss.t''')
    assert mode == "aligned" and alignment == 15

    # Cut-spanning state migrates through the snapshot transfer.
    mode, reason, _ = _steal('''
proc p send ip i as evt #time(20, 5)
state ss { t := sum(evt.amount) } group by evt.agentid
alert ss.t > 0
return ss.t''')
    assert mode == "transfer" and "sliding" in reason

    mode, reason, _ = _steal('''
proc p send ip i as evt #time(10)
state[3] ss { t := sum(evt.amount) } group by evt.agentid
alert ss[0].t > ss[1].t
return ss[0].t''')
    assert mode == "transfer" and "history" in reason

    mode, reason, _ = _steal('''
proc p1["%cmd.exe"] start proc p2 as evt1
proc p2 send ip i as evt2
with evt1 -> evt2
return p1, p2''')
    assert mode == "transfer" and "partial sequences" in reason

    mode, reason, _ = _steal('''
proc p send ip i as evt
return distinct p''')
    assert mode == "transfer" and "seen-set" in reason

    # Fractional hop: no float-exact aligned cut, but transfer carries
    # whatever spans the cut.
    mode, reason, _ = _steal('''
proc p send ip i as evt #time(0.5)
state ss { t := sum(evt.amount) } group by evt.agentid
alert ss.t > 0
return ss.t''')
    assert mode == "transfer" and "fractional" in reason

    # Hard vetoes: state the thief cannot reproduce at all.
    mode, reason, _ = _steal('''
proc p send ip i as evt #count(100)
state ss { t := sum(evt.amount) } group by evt.agentid
alert ss.t > 0
return ss.t''')
    assert mode is None and "count" in reason

    mode, reason, _ = _steal('''
proc p1 start proc p2 as evt #time(10)
state ss {
  set_proc := set(p2.exe_name)
} group by p1
invariant[2][offline] {
  a := empty_set
  a = a union ss.set_proc
}
alert |ss.set_proc diff a| > 0
return p1''')
    assert mode is None and "invariant" in reason


def test_pinned_queries_do_not_veto_stealing():
    report = analyze_shardability(parse_query(rule_c5_data_exfiltration()))
    assert report.pinned_agentid is not None
    assert report.steal_safe  # pins never veto; their host is never stolen


def test_lane_eligibility_vetoes_on_one_unsafe_query():
    reports = {
        name: analyze_shardability(parse_query(text))
        for name, text in STEALABLE_QUERIES
    }
    verdict = steal_eligibility(reports)
    assert verdict.eligible and verdict.alignment == 10
    assert verdict.mode == "aligned"

    # One transfer-mode query flips the whole lane to state transfer
    # (its state spans every cut, so alignment no longer helps).
    reports["sliding"] = analyze_shardability(parse_query('''
proc p send ip i as evt #time(20, 5)
state ss { t := sum(evt.amount) } group by evt.agentid
alert ss.t > 0
return ss.t'''))
    verdict = steal_eligibility(reports)
    assert verdict.eligible
    assert verdict.mode == "transfer"
    assert verdict.alignment is None

    # A hard veto (invariant training) still disables the lane entirely.
    reports["invariant"] = analyze_shardability(parse_query(INVARIANT_VETO))
    assert reports["invariant"].shardable
    assert not reports["invariant"].steal_safe
    verdict = steal_eligibility(reports)
    assert not verdict.eligible
    assert "invariant" in verdict.reason


def test_lane_eligibility_requires_unpinned_queries():
    reports = {"pinned": analyze_shardability(
        parse_query(rule_c5_data_exfiltration()))}
    verdict = steal_eligibility(reports)
    assert not verdict.eligible
    assert "unpinned" in verdict.reason


def test_lane_alignment_is_lcm_of_hops():
    reports = {}
    for hop in (10, 15):
        reports[f"w{hop}"] = analyze_shardability(parse_query(f'''
proc p send ip i as evt #time({hop})
state ss {{ t := sum(evt.amount) }} group by evt.agentid
alert ss.t > 0
return ss.t'''))
    verdict = steal_eligibility(reports)
    assert verdict.eligible and verdict.alignment == 30


def test_cut_alignment_is_strictly_past_the_watermark():
    aligned = StealEligibility(eligible=True, reason="", alignment=10)
    assert aligned.cut_after(25.0) == 30.0
    assert aligned.cut_after(30.0) == 40.0  # strictly greater on multiples
    free = StealEligibility(eligible=True, reason="", alignment=None)
    assert free.cut_after(123.4) == 123.4


# ---------------------------------------------------------------------------
# The balancer policy
# ---------------------------------------------------------------------------

def test_balancer_moves_hottest_from_max_to_min_shard():
    balancer = WorkStealingBalancer(ratio=1.1, min_epoch_events=0)
    decisions = balancer.plan([
        {"a": 500, "b": 120, "c": 80},
        {"d": 100},
    ])
    assert decisions
    assert all(d.source == 0 and d.target == 1 for d in decisions)
    # "a" alone exceeds half the gap (2*500 >= 700-100) and stays put;
    # the hottest movable victims go instead.
    moved = [d.agentid for d in decisions]
    assert "a" not in moved
    assert moved[0] == "b"


def test_balancer_quiesces_below_the_ratio():
    balancer = WorkStealingBalancer(ratio=1.5, min_epoch_events=0)
    assert balancer.plan([{"a": 110}, {"b": 100}]) == []


def test_balancer_ignores_tiny_epochs():
    balancer = WorkStealingBalancer(ratio=1.0, min_epoch_events=64)
    assert balancer.plan([{"a": 40}, {}]) == []


def test_balancer_honors_the_stealable_filter():
    balancer = WorkStealingBalancer(ratio=1.0, min_epoch_events=0)
    decisions = balancer.plan(
        [{"pin": 300, "b": 100, "c": 90}, {"d": 50}],
        stealable=lambda agentid: agentid != "pin")
    assert decisions and all(d.agentid != "pin" for d in decisions)


def test_balancer_single_shard_is_a_no_op():
    balancer = WorkStealingBalancer(ratio=1.0, min_epoch_events=0)
    assert balancer.plan([{"a": 1000}]) == []


def test_balancer_validates_configuration():
    with pytest.raises(ValueError):
        WorkStealingBalancer(ratio=0.9)
    with pytest.raises(ValueError):
        WorkStealingBalancer(min_epoch_events=-1)


# ---------------------------------------------------------------------------
# Scheduler-side signals (load reports, drain)
# ---------------------------------------------------------------------------

def test_take_load_report_counts_and_resets():
    scheduler = ConcurrentQueryScheduler(track_agent_load=True)
    scheduler.add_query(STEALABLE_QUERIES[0][1], name="q")
    scheduler.process_events([_event("host-00", 1.0),
                              _event("host-00", 2.0),
                              _event("host-01", 3.0)])
    report = scheduler.take_load_report()
    assert report.events_by_agentid == {"host-00": 2, "host-01": 1}
    assert report.total_events == 3
    assert report.watermark == 3.0
    second = scheduler.take_load_report()
    assert second.events_by_agentid == {}
    assert second.watermark == 3.0  # the watermark survives epochs


def test_take_load_report_requires_opt_in():
    scheduler = ConcurrentQueryScheduler()
    with pytest.raises(RuntimeError):
        scheduler.take_load_report()


def test_drained_through_tracks_open_windows():
    scheduler = ConcurrentQueryScheduler()
    scheduler.add_query(STEALABLE_QUERIES[0][1], name="q")  # #time(10)
    assert scheduler.drained_through(1000.0)  # nothing open yet
    scheduler.process_events([_event("host-00", 5.0)])
    assert scheduler.drained_through(9.0)       # window [0, 10) ends past 9
    assert not scheduler.drained_through(10.0)  # ...but not past 10
    scheduler.process_events([_event("host-00", 11.0)])  # closes [0, 10)
    assert scheduler.drained_through(10.0)


def test_rule_only_scheduler_is_always_drained():
    scheduler = ConcurrentQueryScheduler()
    scheduler.add_query(STEALABLE_QUERIES[1][1], name="q")
    scheduler.process_events([_event("host-00", 5.0)])
    assert scheduler.open_window_deadline() is None
    assert scheduler.drained_through(float("inf"))


def test_drain_answer_requires_the_watermark_past_the_cut():
    """A quiet shard must not confirm a drain it has not caught up to.

    ``drained_through`` alone is also true while the shard simply has not
    seen the stream reach the cut (no open windows during a quiet spell);
    confirming then would complete the migration while a later pre-cut
    victim match could still open a window on the donor, splitting one
    window's aggregate across two shards.  The control answer therefore
    also requires the shard's ingest watermark to have passed the cut.
    """
    from repro.core.parallel.sharded import _answer_control

    scheduler = ConcurrentQueryScheduler(track_agent_load=True)
    scheduler.add_query(STEALABLE_QUERIES[0][1], name="q")  # #time(10)

    def drain(cut):
        return _answer_control(scheduler, ("drain", "host-00", cut))[3]

    # Nothing ingested: no open windows, but nothing drained either.
    assert not drain(20.0)
    # A non-matching event advances the watermark without opening a
    # window; the cut is still ahead of everything the shard has seen.
    quiet = Event(
        subject=ProcessEntity.make("x.exe", pid=1, host="host-00"),
        operation=Operation.READ,
        obj=NetworkEntity.make("10.0.1.2", "10.0.0.9", srcport=5,
                               dstport=443),
        timestamp=5.0, agentid="host-00", amount=1.0)
    scheduler.process_events([quiet])
    assert scheduler.drained_through(20.0)   # the half-signal says yes...
    assert not drain(20.0)                   # ...the full answer says no
    # Past the cut with the pre-cut windows closed: genuinely drained.
    scheduler.process_events([_event("host-00", 21.0)])
    assert drain(20.0)
    # An open window ending by the cut still blocks even past it.
    assert not drain(30.0)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_quiet_spell_steals_match_single_process_oracle(seed):
    """Oracle parity when migrations race mid-stream quiet spells.

    Skewed load punctuated by host silences and non-matching traffic —
    the shape under which a stale "no open windows" drain answer used to
    complete migrations early and split a window across two shards.
    """
    rng = random.Random(seed)
    events = []
    position = 0
    for block in range(40):
        hot = block % 3 != 2          # every third block is a quiet spell
        for _ in range(100):
            timestamp = position * 0.03
            if not hot:
                # Watermark keeps advancing, but nothing matches.
                events.append(Event(
                    subject=ProcessEntity.make("x.exe", pid=1,
                                               host="host-07"),
                    operation=Operation.READ,
                    obj=NetworkEntity.make("10.0.1.2", "10.0.0.9",
                                           srcport=5, dstport=443),
                    timestamp=timestamp, agentid="host-07", amount=1.0))
            elif rng.random() < 0.6:
                events.append(_event("host-00", timestamp))
            else:
                events.append(_event(rng.choice(HOSTS), timestamp))
            position += 1
    plain, plain_alerts = _run_plain(STEALABLE_QUERIES, events)
    sharded, alerts = _run_stealing(STEALABLE_QUERIES, events,
                                    interval=150, ratio=1.05)
    assert sharded.migrations, "quiet-spell workload produced no steals"
    assert _fingerprints(alerts) == _fingerprints(plain_alerts)
    assert sharded.stats.events_ingested == plain.stats.events_ingested


# ---------------------------------------------------------------------------
# Configuration plumbing
# ---------------------------------------------------------------------------

def test_rebalance_configuration_validation():
    with pytest.raises(ValueError):
        ShardedScheduler(shards=2, rebalance_interval=0)
    with pytest.raises(ValueError):
        ShardedScheduler(shards=2, rebalance_interval=100,
                         rebalance_ratio=0.5)


def test_rebalancing_off_by_default():
    events = shifting_skew_events(2, count=1500)
    scheduler = ShardedScheduler(shards=2)
    for name, text in STEALABLE_QUERIES:
        scheduler.add_query(text, name=name)
    scheduler.execute(ListStream(events, presorted=True))
    assert scheduler.migrations == []
    assert scheduler.last_steal_eligibility is None


def test_count_windows_fall_back_to_the_single_lane():
    """Count windows close on the engine-global match ordinal: per-shard
    counters would draw different window boundaries than the oracle, so
    such queries must observe the full stream."""
    report = analyze_shardability(parse_query('''
proc p send ip i as evt #count(100)
state ss { t := sum(evt.amount) } group by evt.agentid
alert ss.t > 0
return ss.t'''))
    assert not report.shardable
    assert "ordinal" in report.reason
    queries = STEALABLE_QUERIES + [("counted", '''
proc p send ip i as evt #count(10)
state ss { t := sum(evt.amount) } group by evt.agentid
alert ss.t > 0
return ss.t''')]
    events = shifting_skew_events(13, count=1500)
    _, plain_alerts = _run_plain(queries, events)
    sharded, alerts = _run_stealing(queries, events)
    assert sharded.single_lane_query_names == ["counted"]
    assert _fingerprints(alerts) == _fingerprints(plain_alerts)


def test_veto_is_published_and_run_still_correct():
    queries = STEALABLE_QUERIES + [("invariant", INVARIANT_VETO)]
    events = shifting_skew_events(9, count=1500)
    _, plain_alerts = _run_plain(queries, events)
    sharded, alerts = _run_stealing(queries, events)
    assert sharded.migrations == []
    assert sharded.last_steal_eligibility is not None
    assert not sharded.last_steal_eligibility.eligible
    assert _fingerprints(alerts) == _fingerprints(plain_alerts)
