"""Merged peak accounting: sampled concurrent peaks vs summed bounds.

``merge_stats`` used to report the *sum* of per-lane peaks as
``peak_buffered_events``/``peak_buffered_matches``, silently over-stating
the true simultaneous peak (lanes peak at different stream positions).
The sum now lives in the explicitly-named ``peak_buffered_*_bound``
fields — each lane, including the single-stream fallback lane, counted
exactly once — while the serial/thread backends overwrite the peak proper
with a genuine concurrent sample taken across all lanes at batch
boundaries.  The process backend cannot sample across processes and keeps
peak == bound.
"""

from __future__ import annotations

from repro.core import ConcurrentQueryScheduler
from repro.core.parallel import ShardedScheduler, merge_stats
from repro.events.entities import NetworkEntity, ProcessEntity
from repro.events.event import Event, Operation
from repro.events.stream import ListStream

PER_HOST = ('proc p send ip i as evt #time(10)\n'
            'state ss { t := sum(evt.amount) } group by evt.agentid\n'
            'alert ss.t > 0\nreturn ss.t')
#: Groups by destination IP: not host-local, runs on the single lane.
PER_DST = ('proc p send ip i as evt #time(10)\n'
           'state ss { t := sum(evt.amount) } group by i.dstip\n'
           'alert ss.t > 0\nreturn ss.t')


def _event(host, timestamp):
    return Event(
        subject=ProcessEntity.make("x.exe", pid=1, host=host),
        operation=Operation.SEND,
        obj=NetworkEntity.make("10.0.1.2", "10.0.0.9", srcport=5,
                               dstport=443),
        timestamp=timestamp, agentid=host, amount=100.0)


def phase_disjoint_events():
    """host-00 is loud early, host-01 late; a host-00 trickle in phase two
    keeps its shard's buffer evicting, so the lanes' peaks never coincide."""
    events = []
    for position in range(500):
        events.append(_event("host-00", position * 0.05))
    for position in range(500):
        timestamp = 1000 + position * 0.05
        events.append(_event("host-01", timestamp))
        if position % 3 == 0:
            events.append(_event("host-00", timestamp))
    events.sort(key=lambda event: event.timestamp)
    return events


def steady_events(count=1200, hosts=4):
    return [_event(f"host-{position % hosts:02d}", position * 0.05)
            for position in range(count)]


def _run(queries, events, **kwargs):
    scheduler = ShardedScheduler(**kwargs)
    for position, text in enumerate(queries):
        scheduler.add_query(text, name=f"q{position}")
    scheduler.execute(ListStream(events, presorted=True))
    return scheduler


def test_bound_is_the_sum_of_per_lane_peaks_counted_once():
    for backend in ("serial", "process"):
        scheduler = _run([PER_HOST, PER_DST], steady_events(),
                         shards=2, backend=backend, batch_size=64)
        shard_peaks = sum(stats.peak_buffered_events
                          for stats in scheduler.per_shard_stats)
        single_peak = scheduler.single_lane_stats.peak_buffered_events
        # The single lane contributes exactly once — a double count here
        # would inflate the bound past the per-lane arithmetic.
        assert (scheduler.stats.peak_buffered_events_bound
                == shard_peaks + single_peak)
        assert (scheduler.stats.peak_buffered_events
                <= scheduler.stats.peak_buffered_events_bound)


def test_in_process_backends_sample_a_genuine_concurrent_peak():
    events = phase_disjoint_events()
    for backend in ("serial", "thread"):
        scheduler = _run([PER_HOST], events, shards=4, backend=backend,
                         batch_size=8)
        assert (scheduler.stats.peak_buffered_events
                <= scheduler.stats.peak_buffered_events_bound)
    # Deterministic claim on the serial backend: the lanes peak in
    # different phases, so the sampled simultaneous figure must fall
    # strictly below the summed bound.
    scheduler = _run([PER_HOST], events, shards=4, backend="serial",
                     batch_size=8)
    assert (scheduler.stats.peak_buffered_events
            < scheduler.stats.peak_buffered_events_bound)


def test_process_backend_peak_stays_at_the_explicit_bound():
    scheduler = _run([PER_HOST], steady_events(), shards=2,
                     backend="process", batch_size=64)
    assert (scheduler.stats.peak_buffered_events
            == scheduler.stats.peak_buffered_events_bound)
    assert (scheduler.stats.peak_buffered_matches
            == scheduler.stats.peak_buffered_matches_bound)


def test_merge_stats_populates_the_bound_fields():
    scheduler = ConcurrentQueryScheduler()
    scheduler.add_query(PER_HOST, name="q")
    scheduler.execute(ListStream(steady_events(300), presorted=True),
                      batch_size=32)
    merged = merge_stats([scheduler.stats, scheduler.stats])
    assert (merged.peak_buffered_events_bound
            == 2 * scheduler.stats.peak_buffered_events)
    assert merged.peak_buffered_events == merged.peak_buffered_events_bound
    assert (merged.peak_buffered_matches_bound
            == 2 * scheduler.stats.peak_buffered_matches)
