"""Core semantics of the `repro.obs` metrics primitives.

The load-bearing property is deterministic merging: a registry that
merges N partition snapshots must equal — bucket for bucket — a single
registry that observed every value itself.  That is what lets the
sharded runtime present one coherent view assembled from per-lane
snapshots, and it is checked here both with hand-picked values and as a
hypothesis property over arbitrary partitions.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (DEFAULT_BUCKETS, Histogram, MetricRegistry,
                       merge_snapshots)


def test_counter_increments_and_snapshots():
    registry = MetricRegistry()
    counter = registry.counter("events_total", "events")
    counter.inc()
    counter.inc(4)
    snap = registry.snapshot()
    (series,) = snap["families"]["events_total"]["series"]
    assert series["value"] == 5.0
    assert snap["families"]["events_total"]["type"] == "counter"


def test_labeled_children_are_cached_and_independent():
    registry = MetricRegistry()
    a = registry.counter("alerts_total", query="a")
    b = registry.counter("alerts_total", query="b")
    assert a is registry.counter("alerts_total", query="a")
    assert a is not b
    a.inc(2)
    b.inc(3)
    by_label = {series["labels"]["query"]: series["value"]
                for series in registry.snapshot()
                ["families"]["alerts_total"]["series"]}
    assert by_label == {"a": 2.0, "b": 3.0}


def test_type_conflict_is_an_error():
    registry = MetricRegistry()
    registry.counter("x")
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("x")


def test_histogram_le_semantics_and_overflow():
    histogram = Histogram(bounds=(1.0, 2.0, 4.0))
    for value in (0.5, 1.0, 1.5, 4.0, 100.0):
        histogram.observe(value)
    # Prometheus `le` buckets: a value equal to a bound lands in it.
    assert histogram.buckets == [2, 1, 1, 1]
    assert histogram.count == 5
    assert histogram.min == 0.5 and histogram.max == 100.0
    assert histogram.sum == pytest.approx(107.0)


def test_percentile_is_an_upper_bound_and_overflow_reports_max():
    histogram = Histogram(bounds=(1.0, 2.0, 4.0))
    for value in (0.5, 0.6, 0.7, 1.5):
        histogram.observe(value)
    assert histogram.percentile(0.5) == 1.0
    assert histogram.percentile(1.0) == 2.0
    histogram.observe(50.0)  # overflow bucket
    assert histogram.percentile(1.0) == 50.0
    assert Histogram().percentile(0.99) == 0.0  # empty


def test_gauge_merge_modes():
    last = merge_snapshots([_gauge_snap(3.0, "last"),
                            _gauge_snap(1.0, "last")])
    assert _gauge_value(last) == 1.0
    peak = merge_snapshots([_gauge_snap(3.0, "max"),
                            _gauge_snap(1.0, "max")])
    assert _gauge_value(peak) == 3.0


def _gauge_snap(value, merge):
    registry = MetricRegistry()
    registry.gauge("g", merge=merge).set(value)
    return registry.snapshot()


def _gauge_value(snapshot):
    return snapshot["families"]["g"]["series"][0]["value"]


def test_disabled_registry_is_noop_and_snapshotless():
    registry = MetricRegistry(enabled=False)
    counter = registry.counter("events_total")
    counter.inc(10)
    registry.histogram("h").observe(1.0)
    registry.gauge("g").set(5.0)
    assert registry.snapshot() == {"families": {}}
    # All accessors share the one no-op singleton.
    assert registry.counter("other") is counter


def test_mismatched_histogram_bounds_refuse_to_merge():
    left = MetricRegistry()
    left.histogram("h", bounds=(1.0, 2.0)).observe(1.0)
    right = MetricRegistry()
    right.histogram("h", bounds=(1.0, 4.0)).observe(1.0)
    with pytest.raises(ValueError, match="not mergeable"):
        merge_snapshots([left.snapshot(), right.snapshot()])


def test_default_buckets_are_sorted_log_scale():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
    ratios = {DEFAULT_BUCKETS[i + 1] / DEFAULT_BUCKETS[i]
              for i in range(len(DEFAULT_BUCKETS) - 1)}
    assert ratios == {2.0}


@settings(max_examples=60, deadline=None)
@given(values=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False, allow_infinity=False),
                       max_size=80),
       lanes=st.integers(min_value=1, max_value=5),
       assignment=st.randoms(use_true_random=False))
def test_merged_partitions_equal_single_registry(values, lanes, assignment):
    """Any partition of the observations across N lanes merges back to
    exactly the single-registry result — buckets, count, sum, min, max,
    and the companion counter."""
    single = MetricRegistry()
    partitions = [MetricRegistry() for _ in range(lanes)]
    for value in values:
        single.histogram("latency").observe(value)
        single.counter("events").inc()
        lane = partitions[assignment.randrange(lanes)]
        lane.histogram("latency").observe(value)
        lane.counter("events").inc()
    merged = merge_snapshots(p.snapshot() for p in partitions)
    expected = single.snapshot()
    if not values:
        assert merged == expected == {"families": {}}
        return
    merged_hist = merged["families"]["latency"]["series"][0]
    expected_hist = expected["families"]["latency"]["series"][0]
    assert merged_hist["buckets"] == expected_hist["buckets"]
    assert merged_hist["count"] == expected_hist["count"]
    assert merged_hist["min"] == expected_hist["min"]
    assert merged_hist["max"] == expected_hist["max"]
    assert math.isclose(merged_hist["sum"], expected_hist["sum"],
                        rel_tol=1e-9, abs_tol=1e-9)
    assert (merged["families"]["events"]["series"][0]["value"]
            == expected["families"]["events"]["series"][0]["value"])
