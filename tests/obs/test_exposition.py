"""Exposition conformance: Prometheus text rendering and JSON round-trips.

The parser here is the same one the CI smoke scrape uses, so these tests
pin down the renderer/parser contract: cumulative ``le`` buckets, label
escaping, ``+Inf`` formatting, and a byte-identical JSON round-trip.
"""

from __future__ import annotations

import pytest

from repro.obs import (MetricRegistry, parse_json, parse_prometheus,
                       render_json, render_prometheus)


def _sample_registry() -> MetricRegistry:
    registry = MetricRegistry()
    registry.counter("saql_events_total", "Events processed.").inc(7)
    registry.gauge("saql_watermark_lag_seconds", "Lag.",
                   merge="max", shard="0").set(1.5)
    histogram = registry.histogram("saql_batch_seconds", "Batch latency.",
                                   bounds=(0.5, 1.0, 2.0))
    for value in (0.25, 0.75, 3.0):
        histogram.observe(value)
    return registry


def test_prometheus_text_parses_and_expands_histograms():
    text = render_prometheus(_sample_registry().snapshot())
    parsed = parse_prometheus(text)
    assert parsed["types"]["saql_batch_seconds"] == "histogram"
    assert parsed["types"]["saql_events_total"] == "counter"
    buckets = dict((labels["le"], value) for labels, value
                   in parsed["samples"]["saql_batch_seconds_bucket"])
    # Cumulative counts, terminated by the +Inf catch-all.
    assert buckets == {"0.5": 1, "1": 2, "2": 2, "+Inf": 3}
    ((_, count),) = parsed["samples"]["saql_batch_seconds_count"]
    assert count == 3
    ((labels, value),) = parsed["samples"]["saql_watermark_lag_seconds"]
    assert labels == {"shard": "0"} and value == 1.5


def test_label_values_are_escaped_round_trip():
    registry = MetricRegistry()
    nasty = 'quo"te\\back\nline'
    registry.counter("saql_alerts_total", query=nasty).inc()
    parsed = parse_prometheus(render_prometheus(registry.snapshot()))
    ((labels, value),) = parsed["samples"]["saql_alerts_total"]
    assert labels["query"] == nasty
    assert value == 1


def test_malformed_text_is_rejected():
    with pytest.raises(ValueError):
        parse_prometheus("saql_events_total{oops 3\n")
    with pytest.raises(ValueError):
        parse_prometheus("saql_events_total not-a-number\n")


def test_invalid_metric_name_is_rejected_at_render_time():
    snapshot = {"families": {"bad name": {
        "type": "counter", "help": "", "merge": "last", "bounds": None,
        "series": [{"labels": {}, "value": 1.0}]}}}
    with pytest.raises(ValueError, match="invalid metric name"):
        render_prometheus(snapshot)


def test_json_round_trip_is_exact():
    snapshot = _sample_registry().snapshot()
    assert parse_json(render_json(snapshot)) == snapshot
    # Rendering is deterministic (sorted keys) — stable across calls.
    assert render_json(snapshot) == render_json(parse_json(
        render_json(snapshot)))
