"""Tests for the ``saql`` command-line UI."""

import pytest

from repro.queries import DEMO_QUERIES
from repro.ui.cli import main


class TestParseCommand:
    def test_parse_valid_query(self, tmp_path, capsys):
        path = tmp_path / "query.saql"
        path.write_text(DEMO_QUERIES["rule-c5-data-exfiltration"])
        assert main(["parse", str(path)]) == 0
        output = capsys.readouterr().out
        assert "osql.exe" in output

    def test_parse_invalid_query(self, tmp_path, capsys):
        path = tmp_path / "broken.saql"
        path.write_text("proc p write")
        assert main(["parse", str(path)]) == 1
        assert "error" in capsys.readouterr().err


class TestQueriesCommand:
    def test_list_queries(self, capsys):
        assert main(["queries"]) == 0
        output = capsys.readouterr().out
        assert "rule-c5-data-exfiltration" in output
        assert "outlier-exfiltration" in output

    def test_show_query(self, capsys):
        assert main(["queries", "--show", "rule-c1-initial-compromise"]) == 0
        assert "outlook.exe" in capsys.readouterr().out

    def test_show_unknown_query(self, capsys):
        assert main(["queries", "--show", "nope"]) == 1


class TestDemoCommand:
    def test_demo_detects_the_attack(self, capsys, tmp_path):
        events_path = tmp_path / "demo.jsonl"
        code = main(["demo", "--background-minutes", "40",
                     "--attack-start", "600", "--seed", "3",
                     "--queries", "rule-c5-data-exfiltration",
                     "rule-c2-malware-infection",
                     "--save-events", str(events_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "ALERT" in output
        assert "rule-c5-data-exfiltration" in output
        assert events_path.exists()

    def test_demo_rejects_unknown_query(self, capsys):
        assert main(["demo", "--queries", "bogus"]) == 1

    def test_demo_sharded_with_rebalancing(self, capsys):
        """The rebalance flags reach the sharded scheduler; the demo's
        host-pinned query set yields a published steal veto, not a crash."""
        code = main(["demo", "--background-minutes", "10",
                     "--attack-start", "300", "--seed", "3",
                     "--shards", "2", "--shard-backend", "serial",
                     "--rebalance-interval", "500",
                     "--rebalance-ratio", "1.1",
                     "--queries", "rule-c5-data-exfiltration",
                     "timeseries-network-spike"])
        assert code == 0
        output = capsys.readouterr().out
        assert "work stealing disabled" in output

    def test_rebalance_flags_build_a_stealing_scheduler(self):
        import argparse

        from repro.core.engine.alerts import CallbackSink
        from repro.ui.cli import _make_scheduler, build_parser

        parser = build_parser()
        args = parser.parse_args(["demo", "--shards", "2",
                                  "--rebalance-interval", "250",
                                  "--rebalance-ratio", "1.5"])
        assert isinstance(args, argparse.Namespace)
        scheduler = _make_scheduler(args, CallbackSink(lambda alert: None))
        assert scheduler._rebalance_interval == 250
        assert scheduler._rebalance_ratio == 1.5


class TestRunCommand:
    def test_run_queries_against_saved_events(self, tmp_path, capsys):
        events_path = tmp_path / "demo.jsonl"
        main(["demo", "--background-minutes", "40", "--attack-start", "600",
              "--seed", "3", "--queries", "rule-c1-initial-compromise",
              "--save-events", str(events_path)])
        capsys.readouterr()

        query_path = tmp_path / "exfil.saql"
        query_path.write_text(DEMO_QUERIES["rule-c5-data-exfiltration"])
        assert main(["run", str(query_path), "--database",
                     str(events_path)]) == 0
        output = capsys.readouterr().out
        assert "ALERT" in output

    def test_run_rejects_broken_query_file(self, tmp_path, capsys):
        events_path = tmp_path / "demo.jsonl"
        main(["demo", "--background-minutes", "5", "--attack-start", "60",
              "--queries", "rule-c1-initial-compromise",
              "--save-events", str(events_path)])
        capsys.readouterr()
        bad = tmp_path / "bad.saql"
        bad.write_text("this is not saql")
        assert main(["run", str(bad), "--database", str(events_path)]) == 1
