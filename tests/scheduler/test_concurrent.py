"""Tests for the concurrent query scheduler (master-dependent-query scheme)."""

import pytest

from repro.core import ConcurrentQueryScheduler, QueryEngine
from repro.core.engine.alerts import CollectingSink
from repro.events.event import Operation
from repro.events.stream import ListStream
from tests.conftest import make_connection, make_event, make_file, make_process

EXFIL_READ = '''
agentid = "db-server"
proc p["%sbblv.exe"] read file f["%backup%"] as e
return p, f
'''

EXFIL_SEND = '''
agentid = "db-server"
proc p["%sbblv.exe"] read file f["%backup%"] as e1
proc p write ip i as e2
with e1 -> e2
return p, f, i
'''

CLIENT_QUERY = '''
agentid = "client-01"
proc p["%excel.exe"] start proc c as e
return p, c
'''


def _db_events():
    sbblv = make_process("sbblv.exe", 4)
    dump = make_file("D:/backup/backup1.dmp")
    attacker = make_connection("203.0.113.129")
    return [
        make_event(sbblv, Operation.READ, dump, 10.0, amount=1e6),
        make_event(sbblv, Operation.WRITE, attacker, 20.0, amount=1e6),
    ]


class TestGrouping:
    def test_compatible_queries_share_a_group(self):
        scheduler = ConcurrentQueryScheduler()
        scheduler.add_query(EXFIL_READ, name="read")
        scheduler.add_query(EXFIL_SEND, name="send")
        assert scheduler.stats.queries == 2
        assert scheduler.stats.groups == 1
        assert scheduler.stats.data_copies == 1
        assert scheduler.stats.data_copies_without_sharing == 2

    def test_incompatible_queries_get_separate_groups(self):
        scheduler = ConcurrentQueryScheduler()
        scheduler.add_query(EXFIL_READ)
        scheduler.add_query(CLIENT_QUERY)
        assert scheduler.stats.groups == 2

    def test_sharing_can_be_disabled(self):
        scheduler = ConcurrentQueryScheduler(enable_sharing=False)
        scheduler.add_query(EXFIL_READ)
        scheduler.add_query(EXFIL_SEND)
        assert scheduler.stats.groups == 2

    def test_add_queries_bulk(self):
        scheduler = ConcurrentQueryScheduler()
        scheduler.add_queries([EXFIL_READ, EXFIL_SEND, CLIENT_QUERY])
        assert len(scheduler.engines) == 3


class TestSharedExecution:
    def test_both_queries_detect_with_sharing(self):
        scheduler = ConcurrentQueryScheduler()
        scheduler.add_query(EXFIL_READ, name="read")
        scheduler.add_query(EXFIL_SEND, name="send")
        alerts = scheduler.execute(ListStream(_db_events()))
        assert {alert.query_name for alert in alerts} == {"read", "send"}

    def test_sharing_matches_unshared_results(self):
        shared = ConcurrentQueryScheduler()
        unshared = ConcurrentQueryScheduler(enable_sharing=False)
        for scheduler in (shared, unshared):
            scheduler.add_query(EXFIL_READ, name="read")
            scheduler.add_query(EXFIL_SEND, name="send")
        events = _db_events()
        shared_records = sorted(
            (a.query_name, a.data) for a in shared.execute(ListStream(events)))
        unshared_records = sorted(
            (a.query_name, a.data)
            for a in unshared.execute(ListStream(events)))
        assert shared_records == unshared_records

    def test_dependent_reuses_master_matches(self):
        scheduler = ConcurrentQueryScheduler()
        scheduler.add_query(EXFIL_READ, name="read")
        scheduler.add_query(EXFIL_SEND, name="send")
        scheduler.execute(ListStream(_db_events()))
        assert scheduler.stats.pattern_evaluations_saved > 0

    def test_global_constraint_filters_whole_group(self):
        scheduler = ConcurrentQueryScheduler()
        scheduler.add_query(EXFIL_READ, name="read")
        other_host_event = make_event(make_process("sbblv.exe", 4),
                                      Operation.READ,
                                      make_file("D:/backup/backup1.dmp"),
                                      5.0, agentid="client-01")
        alerts = scheduler.execute(ListStream([other_host_event]))
        assert alerts == []

    def test_alerts_reach_shared_sink(self):
        sink = CollectingSink()
        scheduler = ConcurrentQueryScheduler(sink=sink)
        scheduler.add_query(EXFIL_READ)
        scheduler.execute(ListStream(_db_events()))
        assert len(sink) == 1

    def test_buffered_events_accounted(self):
        scheduler = ConcurrentQueryScheduler()
        scheduler.add_query(EXFIL_READ)
        scheduler.execute(ListStream(_db_events()))
        assert scheduler.stats.peak_buffered_events >= 1

    def test_error_in_one_query_does_not_stop_others(self):
        scheduler = ConcurrentQueryScheduler()
        scheduler.add_query("proc p read file f as e\nreturn p[0]",
                            name="broken")
        scheduler.add_query(EXFIL_READ, name="read")
        alerts = scheduler.execute(ListStream(_db_events()))
        assert {alert.query_name for alert in alerts} == {"read"}
        assert scheduler.error_reporter.has_errors()


class TestStatsAccounting:
    def test_events_ingested(self):
        scheduler = ConcurrentQueryScheduler()
        scheduler.add_query(EXFIL_READ)
        scheduler.execute(ListStream(_db_events()))
        assert scheduler.stats.events_ingested == 2

    def test_sharing_reduces_pattern_evaluations(self):
        events = ListStream(_db_events())
        shared = ConcurrentQueryScheduler()
        unshared = ConcurrentQueryScheduler(enable_sharing=False)
        for scheduler in (shared, unshared):
            for index in range(4):
                scheduler.add_query(EXFIL_READ, name=f"q{index}")
        shared.execute(events)
        unshared.execute(ListStream(_db_events()))
        assert (shared.stats.pattern_evaluations
                < unshared.stats.pattern_evaluations)
