"""Query fault isolation: the quarantine circuit-breaker.

One repeatedly-raising query must not take the stream down (nor poison
the queries sharing its compatibility group): with ``quarantine_errors``
configured, its fatal errors are charged against a budget and the query
is removed from dispatch once the budget is spent — visible in
``SchedulerStats.quarantined`` and the scheduler's ``quarantined``
detail map — while every other query keeps alerting.  Re-registering
the query re-arms its breaker.
"""

from __future__ import annotations

import pytest

from repro.core import ConcurrentQueryScheduler
from repro.core.engine.error_reporter import ErrorReporter
from repro.core.parallel import ShardedScheduler
from repro.events.entities import NetworkEntity, ProcessEntity
from repro.events.event import Event, Operation
from repro.testing import FaultPlan, FaultSpec

HOSTS = [f"host-{n}" for n in range(4)]

GOOD = ('proc p send ip i as evt #time(10)\n'
        'state ss { t := sum(evt.amount) } group by evt.agentid\n'
        'alert ss.t > 0\nreturn ss.t')
#: Same shape (and compatibility signature) as GOOD, so both queries
#: share one group — isolation must hold *within* a group.
BROKEN = ('proc p send ip i as evt #time(10)\n'
          'state ss { n := count(evt.amount) } group by evt.agentid\n'
          'alert ss.n > 0\nreturn ss.n')


def _event(host, timestamp):
    return Event(
        subject=ProcessEntity.make("x.exe", pid=1, host=host),
        operation=Operation.SEND,
        obj=NetworkEntity.make("10.0.1.2", "10.0.0.9", srcport=5,
                               dstport=443),
        timestamp=timestamp, agentid=host, amount=50.0)


def make_events(count=600):
    return [_event(HOSTS[position % len(HOSTS)], position * 0.1)
            for position in range(count)]


def _poisoned_scheduler(budget=3, **kwargs):
    scheduler = ConcurrentQueryScheduler(quarantine_errors=budget, **kwargs)
    scheduler.add_query(GOOD, name="good")
    scheduler.add_query(BROKEN, name="broken")
    FaultPlan([FaultSpec("query-error", query="broken")]).install(
        scheduler, position=0)
    return scheduler


def test_raising_query_is_quarantined_and_siblings_keep_alerting():
    scheduler = _poisoned_scheduler(budget=3)
    alerts = []
    for start in range(0, 600, 50):
        alerts.extend(scheduler.process_events(make_events()[start:start + 50]))
    alerts.extend(scheduler.finish())
    # The healthy co-grouped query alerted; the broken one never did.
    assert any(alert.query_name == "good" for alert in alerts)
    assert not any(alert.query_name == "broken" for alert in alerts)
    # Breaker state is visible to operators.
    assert "broken" in scheduler.quarantined
    detail = scheduler.quarantined["broken"]
    assert detail["errors"] >= 3
    assert "injected query-error" in detail["last_error"]
    assert scheduler.stats.quarantined.get("broken", 0) >= 3
    assert scheduler.stats.quarantined_queries == 1
    # The budget bounds the damage: the breaker tripped at ~3 fatal
    # errors instead of charging one per batch forever.
    assert scheduler.error_reporter.fatal_count("broken") <= 4
    assert scheduler.error_reporter.fatal_count("good") == 0


def test_without_budget_the_failure_stays_fatal():
    scheduler = ConcurrentQueryScheduler()
    scheduler.add_query(GOOD, name="good")
    scheduler.add_query(BROKEN, name="broken")
    FaultPlan([FaultSpec("query-error", query="broken")]).install(
        scheduler, position=0)
    with pytest.raises(Exception):
        for start in range(0, 200, 50):
            scheduler.process_events(make_events()[start:start + 50])


def test_reregistering_rearms_the_breaker():
    scheduler = _poisoned_scheduler(budget=2)
    scheduler.process_events(make_events()[:100])
    scheduler.process_events(make_events()[100:200])
    assert "broken" in scheduler.quarantined
    # Re-adding the query (a fixed closure, here simply un-poisoned)
    # re-arms its breaker and it alerts again.
    scheduler.add_query(BROKEN, name="broken")
    assert "broken" not in scheduler.quarantined
    assert "broken" not in scheduler.stats.quarantined
    alerts = scheduler.process_events(make_events()[200:400])
    alerts.extend(scheduler.finish())
    assert any(alert.query_name == "broken" for alert in alerts)


def test_error_reporter_per_query_accounting():
    reporter = ErrorReporter(max_records=2)
    for position in range(5):
        reporter.report("q1", RuntimeError(f"boom {position}"),
                        timestamp=float(position), fatal=position % 2 == 0)
    reporter.report("q2", ValueError("bad"), timestamp=1.0)
    # Counters survive record truncation.
    assert len(reporter.records) == 2 and reporter.dropped == 4
    assert reporter.count("q1") == 5
    assert reporter.fatal_count("q1") == 3
    assert reporter.counts() == {"q1": 5, "q2": 1}
    assert reporter.last_error("q1").message == "boom 4"
    rows = reporter.per_query()
    assert [row["query"] for row in rows] == ["q1", "q2"]
    assert rows[0]["errors_per_second"] == pytest.approx(5 / 4.0)
    assert rows[0]["first_timestamp"] == 0.0
    assert rows[0]["last_timestamp"] == 4.0
    reporter.clear_query("q1")
    assert reporter.count("q1") == 0
    assert reporter.count("q2") == 1


@pytest.mark.parametrize("backend", ["serial", "process"])
def test_sharded_run_quarantines_without_affecting_other_queries(backend):
    plan = FaultPlan([FaultSpec("query-error", query="broken")])
    scheduler = ShardedScheduler(shards=2, backend=backend, batch_size=64,
                                 quarantine_errors=2, fault_plan=plan)
    scheduler.add_query(GOOD, name="good")
    scheduler.add_query(BROKEN, name="broken")
    alerts = scheduler.execute(iter(make_events()))
    assert any(alert.query_name == "good" for alert in alerts)
    assert not any(alert.query_name == "broken" for alert in alerts)
    # merge_stats surfaces the worst per-lane quarantine count.
    assert scheduler.stats.quarantined.get("broken", 0) >= 2
    assert scheduler.stats.quarantined_queries == 1

    # A fault-free oracle agrees on the healthy query's alerts.
    oracle = ShardedScheduler(shards=2, backend="serial", batch_size=64)
    oracle.add_query(GOOD, name="good")
    expected = oracle.execute(iter(make_events()))
    good = [alert for alert in alerts if alert.query_name == "good"]
    assert [(a.timestamp, a.data) for a in good] == \
        [(a.timestamp, a.data) for a in expected]
