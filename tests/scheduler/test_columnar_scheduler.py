"""Unit tests for the scheduler's columnar fast path.

Covers the pieces the equivalence suite cannot see directly: the
tiny-batch threshold (no column block below ``columnar_min_batch``), the
predicate-sharing observability counters, and dynamic plan invalidation —
the shared index must rebuild incrementally as queries are registered and
removed mid-stream.
"""

import pytest

from repro.core import ConcurrentQueryScheduler
from repro.core.scheduler.concurrent import DEFAULT_COLUMNAR_MIN_BATCH
from repro.events.event import Operation
from repro.events.stream import ListStream
from repro.queries.demo_queries import DEMO_QUERIES
from tests.conftest import make_connection, make_event, make_file, make_process

from tests.compile.test_columnar_equivalence import (_fingerprints,
                                                     jittered_events)

EXFIL_READ = '''
agentid = "db-server"
proc p["%sbblv.exe"] read file f["%backup%"] as e
return p, f
'''

EXFIL_SEND = '''
agentid = "db-server"
proc p["%sbblv.exe"] read file f["%backup%"] as e1
proc p write ip i as e2
with e1 -> e2
return p, f, i
'''

CLIENT_QUERY = '''
agentid = "client-01"
proc p["%excel.exe"] start proc c as e
return p, c
'''


def _db_events(count=6):
    sbblv = make_process("sbblv.exe", 4)
    dump = make_file("D:/backup/backup1.dmp")
    attacker = make_connection("203.0.113.129")
    events = []
    for index in range(count):
        entity = dump if index % 2 == 0 else attacker
        operation = Operation.READ if index % 2 == 0 else Operation.WRITE
        events.append(make_event(sbblv, operation, entity,
                                 10.0 * (index + 1), amount=1e6))
    return events


class TestTinyBatchThreshold:
    def test_default_threshold_skips_small_batches(self):
        scheduler = ConcurrentQueryScheduler()
        scheduler.add_query(EXFIL_READ, name="read")
        small = _db_events(DEFAULT_COLUMNAR_MIN_BATCH - 1)
        alerts = scheduler.process_events(small)
        assert scheduler.stats.column_blocks_built == 0
        assert scheduler.stats.predicate_evaluations == 0
        assert alerts  # the closure fallback still matched

    def test_threshold_boundary_builds_a_block(self):
        scheduler = ConcurrentQueryScheduler()
        scheduler.add_query(EXFIL_READ, name="read")
        scheduler.process_events(_db_events(DEFAULT_COLUMNAR_MIN_BATCH))
        assert scheduler.stats.column_blocks_built == 1
        assert scheduler.stats.predicate_evaluations > 0

    def test_per_event_path_never_builds_blocks(self):
        scheduler = ConcurrentQueryScheduler()
        scheduler.add_query(EXFIL_READ, name="read")
        for event in _db_events(2 * DEFAULT_COLUMNAR_MIN_BATCH):
            scheduler.process_event(event)
        assert scheduler.stats.column_blocks_built == 0

    def test_custom_threshold(self):
        scheduler = ConcurrentQueryScheduler(columnar_min_batch=4)
        scheduler.add_query(EXFIL_READ, name="read")
        scheduler.process_events(_db_events(3))
        assert scheduler.stats.column_blocks_built == 0
        scheduler.process_events(_db_events(4))
        assert scheduler.stats.column_blocks_built == 1

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            ConcurrentQueryScheduler(columnar_min_batch=0)

    def test_tiny_batches_agree_with_columnar_batches(self):
        events = jittered_events(3, count=120)
        names = sorted(DEMO_QUERIES)

        def run(batch_size):
            scheduler = ConcurrentQueryScheduler()
            for name in names:
                scheduler.add_query(DEMO_QUERIES[name], name=name)
            scheduler.execute(ListStream(events, presorted=True),
                              batch_size=batch_size)
            return scheduler

        tiny = run(batch_size=2)       # below threshold: closure fallback
        large = run(batch_size=64)     # above threshold: columnar
        assert tiny.stats.column_blocks_built == 0
        assert large.stats.column_blocks_built > 0
        for slow, fast in zip(tiny.engines, large.engines):
            assert _fingerprints(fast.alerts) == _fingerprints(slow.alerts)


class TestObservability:
    def _run(self, **kwargs):
        scheduler = ConcurrentQueryScheduler(**kwargs)
        scheduler.add_query(EXFIL_READ, name="read")
        scheduler.add_query(EXFIL_SEND, name="send")
        scheduler.add_query(CLIENT_QUERY, name="client")
        scheduler.execute(ListStream(_db_events(64), presorted=True),
                          batch_size=32)
        return scheduler

    def test_distinct_predicates_deduplicate_across_queries(self):
        scheduler = self._run()
        # read/send share the sbblv + backup atoms through one group; the
        # client query contributes its own.  Interning keeps the distinct
        # count below the naive per-pattern total.
        assert 0 < scheduler.stats.distinct_predicates
        assert (scheduler.distinct_predicate_count()
                == scheduler.stats.distinct_predicates)

    def test_sharing_report_shape_and_selectivity(self):
        scheduler = self._run()
        report = scheduler.shared_predicate_report()
        assert len(report) == scheduler.stats.distinct_predicates
        for entry in report:
            assert entry["rows_selected"] <= entry["rows_evaluated"]
            assert 0.0 <= entry["selectivity"] <= 1.0
        # The global constraint 'agentid == db-server' is shared by the
        # read/send pair through their group.
        by_label = {entry["predicate"]: entry for entry in report}
        assert any(entry["subscribers"] >= 1 for entry in by_label.values())

    def test_saved_evaluations_require_sharing(self):
        scheduler = self._run()
        assert scheduler.stats.predicate_evaluations > 0
        isolated = ConcurrentQueryScheduler(enable_sharing=False)
        isolated.add_query(EXFIL_READ, name="read")
        isolated.add_query(EXFIL_SEND, name="send")
        isolated.execute(ListStream(_db_events(64), presorted=True),
                         batch_size=32)
        # Even with group sharing disabled, structurally equal predicates
        # across the isolated groups are interned and evaluated once.
        assert isolated.stats.predicate_evaluations_saved > 0

    def test_oracle_mode_reports_nothing(self):
        scheduler = self._run(columnar=False)
        assert scheduler.stats.column_blocks_built == 0
        assert scheduler.stats.distinct_predicates == 0
        assert scheduler.stats.predicate_sharing == {}
        assert scheduler.distinct_predicate_count() == 0


class TestDynamicPlanInvalidation:
    def test_registration_mid_stream_extends_the_index(self):
        scheduler = ConcurrentQueryScheduler()
        scheduler.add_query(EXFIL_READ, name="read")
        scheduler.process_events(_db_events(32))
        before = scheduler.distinct_predicate_count()
        scheduler.add_query(CLIENT_QUERY, name="client")
        after = scheduler.distinct_predicate_count()
        assert after > before
        alerts = scheduler.process_events(_db_events(32))
        assert alerts

    def test_remove_query_by_name_releases_predicates(self):
        scheduler = ConcurrentQueryScheduler()
        scheduler.add_query(EXFIL_READ, name="read")
        scheduler.add_query(CLIENT_QUERY, name="client")
        baseline = scheduler.distinct_predicate_count()
        removed = scheduler.remove_query("client")
        assert removed.name == "client"
        assert scheduler.stats.queries == 1
        assert scheduler.distinct_predicate_count() < baseline
        assert scheduler.process_events(_db_events(32))

    def test_remove_unknown_query_raises(self):
        scheduler = ConcurrentQueryScheduler()
        scheduler.add_query(EXFIL_READ, name="read")
        with pytest.raises(KeyError):
            scheduler.remove_query("nope")

    def test_remove_master_promotes_dependent(self):
        scheduler = ConcurrentQueryScheduler()
        scheduler.add_query(EXFIL_READ, name="read")
        scheduler.add_query(EXFIL_SEND, name="send")
        assert scheduler.stats.groups == 1
        events = _db_events(32)
        scheduler.process_events(events[:16])
        scheduler.remove_query("read")
        assert scheduler.stats.queries == 1
        assert scheduler.stats.groups == 1
        # The promoted group keeps matching (and keeps its shared buffer).
        alerts = scheduler.process_events(events[16:])
        assert any(a.query_name == "send" for a in alerts)

    def test_removal_matches_fresh_scheduler(self):
        """Post-removal behaviour equals never having added the query."""
        events = jittered_events(9, count=200)
        cut = len(events) // 2

        mutated = ConcurrentQueryScheduler()
        mutated.add_query(EXFIL_READ, name="read")
        mutated.add_query(CLIENT_QUERY, name="client")
        mutated.process_events(events[:cut])
        mutated.remove_query("read")
        mutated.process_events(events[cut:])
        mutated.finish()

        fresh = ConcurrentQueryScheduler()
        fresh.add_query(CLIENT_QUERY, name="client")
        fresh.process_events(events[:cut])
        fresh.process_events(events[cut:])
        fresh.finish()

        mutated_client = next(e for e in mutated.engines
                              if e.name == "client")
        fresh_client = next(e for e in fresh.engines if e.name == "client")
        assert (_fingerprints(mutated_client.alerts)
                == _fingerprints(fresh_client.alerts))

    def test_re_adding_after_removal_reuses_interned_atoms(self):
        scheduler = ConcurrentQueryScheduler()
        scheduler.add_query(EXFIL_READ, name="read")
        first = scheduler.distinct_predicate_count()
        scheduler.remove_query("read")
        assert scheduler.distinct_predicate_count() == 0
        scheduler.add_query(EXFIL_READ, name="read-again")
        assert scheduler.distinct_predicate_count() == first
        assert scheduler.process_events(_db_events(32))
