"""Unit tests for semantic-compatibility signatures."""

from repro.core.language import parse_query
from repro.core.scheduler.compatibility import (
    compatibility_signature,
    pattern_signature,
)

DB_RULE = '''
agentid = "db-server"
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as e1
return p1, p2
'''

DB_RULE_OTHER_VARS = '''
agentid = "db-server"
proc a["%cmd.exe"] start proc b["%osql.exe"] as first
return a, b
'''

CLIENT_RULE = '''
agentid = "client-01"
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as e1
return p1, p2
'''

WINDOWED = '''
agentid = "db-server"
proc p write ip i as evt #time(10 min)
state ss { v := sum(evt.amount) } group by p
alert ss.v > 1
return p
'''


class TestCompatibilitySignature:
    def test_same_constraints_same_signature(self):
        assert (compatibility_signature(parse_query(DB_RULE))
                == compatibility_signature(parse_query(DB_RULE_OTHER_VARS)))

    def test_different_agent_different_signature(self):
        assert (compatibility_signature(parse_query(DB_RULE))
                != compatibility_signature(parse_query(CLIENT_RULE)))

    def test_window_is_part_of_signature(self):
        assert (compatibility_signature(parse_query(DB_RULE))
                != compatibility_signature(parse_query(WINDOWED)))

    def test_signature_is_hashable(self):
        signature = compatibility_signature(parse_query(WINDOWED))
        assert signature in {signature}


class TestPatternSignature:
    def test_variable_names_do_not_matter(self):
        first = parse_query(DB_RULE).patterns[0]
        second = parse_query(DB_RULE_OTHER_VARS).patterns[0]
        assert pattern_signature(first) == pattern_signature(second)

    def test_operations_matter(self):
        read_query = parse_query("proc p read file f as e\nreturn p")
        write_query = parse_query("proc p write file f as e\nreturn p")
        assert (pattern_signature(read_query.patterns[0])
                != pattern_signature(write_query.patterns[0]))

    def test_alternation_order_does_not_matter(self):
        first = parse_query("proc p read || write file f as e\nreturn p")
        second = parse_query("proc p write || read file f as e\nreturn p")
        assert (pattern_signature(first.patterns[0])
                == pattern_signature(second.patterns[0]))

    def test_constraints_matter(self):
        first = parse_query('proc p["%a.exe"] read file f as e\nreturn p')
        second = parse_query('proc p["%b.exe"] read file f as e\nreturn p')
        assert (pattern_signature(first.patterns[0])
                != pattern_signature(second.patterns[0]))
