"""Unit tests for the snapshot wire-format codecs.

Every value the engines put into a snapshot must survive
``encode -> strict JSON -> decode`` unchanged; the checkpoint store
enforces strict JSON (``allow_nan=False``), so these tests round-trip
through ``json.dumps``/``loads`` rather than comparing dicts directly.
"""

import json
import math

import pytest

from repro.core.engine.alerts import Alert
from repro.core.engine.matching import PatternMatch
from repro.core.engine.windows import WindowKey
from repro.core.errors import SAQLExecutionError
from repro.core.snapshot import (
    decode_alert,
    decode_match,
    decode_value,
    decode_window_key,
    encode_alert,
    encode_match,
    encode_value,
    encode_window_key,
)
from repro.core.snapshot.codecs import check_version
from repro.events.entities import FileEntity, NetworkEntity, ProcessEntity
from repro.events.event import Event, Operation


def _json_round_trip(encoded):
    return json.loads(json.dumps(encoded, allow_nan=False))


def _round_trip(value):
    return decode_value(_json_round_trip(encode_value(value)))


class TestValueCodec:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, -17, 3.5, "text", "üñïçødé",
        (1, "two", 3.0), ("nested", (1, (2,))),
        [1, 2, 3], [("a", 1), ("b", 2)],
        frozenset({1, 2, 3}), frozenset({("k", 1), ("k", 2)}),
        {"plain": 1, "nested": (1, 2)},
    ])
    def test_plain_values_round_trip(self, value):
        assert _round_trip(value) == value

    def test_sets_decode_as_frozensets(self):
        assert _round_trip({1, 2}) == frozenset({1, 2})

    def test_non_finite_floats_round_trip(self):
        assert _round_trip(float("inf")) == float("inf")
        assert _round_trip(float("-inf")) == float("-inf")
        assert math.isnan(_round_trip(float("nan")))

    def test_non_string_dict_keys_round_trip(self):
        value = {("a", 1): "x", 7: "y"}
        assert _round_trip(value) == value

    def test_entities_round_trip(self):
        for entity in (ProcessEntity.make("x.exe", 5, host="h1"),
                       FileEntity.make("/tmp/f", host="h2"),
                       NetworkEntity.make("1.2.3.4", "5.6.7.8", dstport=443)):
            assert _round_trip(entity) == entity

    def test_execution_errors_round_trip(self):
        decoded = _round_trip(SAQLExecutionError("bad value"))
        assert isinstance(decoded, SAQLExecutionError)
        assert str(decoded) == "bad value"

    def test_unencodable_value_raises(self):
        with pytest.raises(TypeError):
            encode_value(object())

    def test_unknown_marker_raises(self):
        with pytest.raises(ValueError):
            decode_value({"__mystery__": 1})


class TestDomainCodecs:
    def _match(self):
        subject = ProcessEntity.make("x.exe", 5, host="h1")
        obj = NetworkEntity.make("10.0.0.1", "10.0.0.2")
        event = Event(subject=subject, operation=Operation.SEND, obj=obj,
                      timestamp=12.5, agentid="h1", amount=100.0,
                      attrs={"flow": float("nan")})
        return PatternMatch(alias="evt", event=event,
                            bindings={"p": subject, "i": obj})

    def test_match_round_trip(self):
        match = self._match()
        decoded = decode_match(_json_round_trip(encode_match(match)))
        assert decoded.alias == match.alias
        assert decoded.event.event_id == match.event.event_id
        assert decoded.event.subject == match.event.subject
        assert decoded.bindings == match.bindings
        assert math.isnan(decoded.event.attrs["flow"])

    def test_window_key_round_trip(self):
        key = WindowKey(index=3, start=15.0, end=35.0)
        assert decode_window_key(
            _json_round_trip(encode_window_key(key))) == key

    def test_alert_round_trip(self):
        alert = Alert(query_name="q", timestamp=20.0,
                      data=(("ss.total", 1234), ("hosts", ("a", "b"))),
                      model_kind="rule", group_key=("h1", 7),
                      window_start=0.0, window_end=20.0, agentid="h1")
        assert decode_alert(_json_round_trip(encode_alert(alert))) == alert

    def test_rule_alert_without_window_round_trips(self):
        alert = Alert(query_name="q", timestamp=3.0, data=(),
                      window_start=None, window_end=None)
        assert decode_alert(_json_round_trip(encode_alert(alert))) == alert


class TestVersioning:
    def test_matching_version_passes(self):
        from repro.core.snapshot import SNAPSHOT_VERSION
        check_version({"version": SNAPSHOT_VERSION}, "test")

    def test_mismatched_version_rejected(self):
        with pytest.raises(ValueError):
            check_version({"version": 999}, "test")
        with pytest.raises(ValueError):
            check_version({}, "test")
