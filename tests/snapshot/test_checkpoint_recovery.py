"""Crash-injection suite: kill a scheduler mid-stream, restore, compare.

The contract under test is kill-and-restore equivalence: a run that is
killed at an arbitrary batch boundary (or mid-batch, for the sharded
process backend: a SIGKILLed worker) and then recovered from its latest
checkpoint must emit exactly the alerts of an uninterrupted run — no
loss, no duplicates — across every stateful shape the engine supports:
tumbling, sliding, gapped and count windows, state histories, multi-event
sequences, ``distinct`` and invariant training.  Crash points are
randomized hypothesis-style, mirroring the property suites in
``tests/engine/test_incremental_equivalence.py``.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConcurrentQueryScheduler
from repro.core.parallel import ShardedScheduler
from repro.core.snapshot import recover_and_resume, resume_events
from repro.events.entities import NetworkEntity, ProcessEntity
from repro.events.event import Event, Operation
from repro.events.stream import ListStream
from repro.storage import CheckpointStore

HOSTS = [f"host-{n}" for n in range(5)]

#: One query per stateful shape the snapshot format must cover.
QUERIES = [
    ("tumbling", '''
proc p send ip i as evt #time(10)
state ss {
  t := sum(evt.amount),
  n := count(evt.amount),
  d := distinct_count(evt.amount)
} group by evt.agentid
alert ss.t > 500
return ss.t, ss.n, ss.d'''),
    ("sliding", '''
proc p send ip i as evt #time(20, 5)
state ss { t := sum(evt.amount), a := avg(evt.amount) } group by evt.agentid
alert ss.t > 500
return ss.t, ss.a'''),
    ("gapped", '''
proc p send ip i as evt #time(10, 15)
state ss { m := max(evt.amount) } group by evt.agentid
alert ss.m > 100
return ss.m'''),
    ("counted", '''
proc p send ip i as evt #count(7)
state ss { t := sum(evt.amount) } group by evt.agentid
alert ss.t > 0
return ss.t'''),
    ("history", '''
proc p send ip i as evt #time(10)
state[3] ss { t := sum(evt.amount) } group by evt.agentid
alert ss[0].t > ss[1].t
return ss[0].t'''),
    ("sequence", '''
proc p1["%x.exe"] start proc p2 as evt1
proc p2 send ip i as evt2
with evt1 -> evt2
return p1, p2'''),
    ("distinct", '''
proc p send ip i as evt #time(10)
state ss { m := max(evt.amount) } group by evt.agentid
alert ss.m > 300
return distinct ss.m'''),
    ("invariant", '''
proc p send ip i as evt #time(10)
state ss { t := sum(evt.amount) } group by evt.agentid
invariant[2][offline] {
  a := 0
  a = ss.t
}
alert ss.t > a
return ss.t'''),
]


def make_events(seed: int, count: int = 1500):
    rng = random.Random(seed)
    events = []
    for position in range(count):
        host = HOSTS[rng.randrange(len(HOSTS))]
        # Three-way timestamp ties: the resume cursor's frontier-id set
        # (which journal events *at* the watermark were processed) is
        # only exercised when checkpoints can land mid-tie.
        timestamp = (position // 3) * 0.06
        if rng.random() < 0.08:
            events.append(Event(
                subject=ProcessEntity.make("x.exe", pid=1, host=host),
                operation=Operation.START,
                obj=ProcessEntity.make("y.exe", pid=2, host=host),
                timestamp=timestamp, agentid=host))
        else:
            exe = "x.exe" if rng.random() < 0.5 else "y.exe"
            events.append(Event(
                subject=ProcessEntity.make(exe, pid=2, host=host),
                operation=Operation.SEND,
                obj=NetworkEntity.make("10.0.0.1", "10.0.0.2", dstport=443),
                timestamp=timestamp, agentid=host,
                amount=float(rng.randrange(10, 500))))
    return events


def fingerprints(alerts):
    return sorted(
        (alert.query_name, alert.timestamp, alert.data,
         repr(alert.group_key), alert.window_start, alert.window_end,
         alert.agentid) for alert in alerts)


def build_scheduler(**kwargs) -> ConcurrentQueryScheduler:
    scheduler = ConcurrentQueryScheduler(**kwargs)
    for name, text in QUERIES:
        scheduler.add_query(text, name=name)
    return scheduler


def oracle_alerts(events):
    return fingerprints(build_scheduler().execute(
        ListStream(events, presorted=True)))


# ---------------------------------------------------------------------------
# Single-scheduler kill-and-restore equivalence
# ---------------------------------------------------------------------------

@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6),
       crash_fraction=st.floats(min_value=0.05, max_value=0.98))
def test_kill_and_restore_matches_uninterrupted_run(tmp_path_factory, seed,
                                                    crash_fraction):
    events = make_events(seed)
    oracle = oracle_alerts(events)
    store = CheckpointStore(tmp_path_factory.mktemp("ckpt"))
    crashed = build_scheduler(checkpoint_store=store, checkpoint_interval=64)
    crash_at = max(1, int(len(events) * crash_fraction))
    position = 0
    while position < crash_at:
        crashed.process_events(events[position:min(position + 48, crash_at)])
        position = min(position + 48, crash_at)
    # The "crash": the scheduler object is dropped on the floor; only the
    # checkpoint files survive into the recovered scheduler below.
    recovered = build_scheduler()
    alerts = recover_and_resume(recovered, store,
                                ListStream(events, presorted=True),
                                batch_size=32)
    assert fingerprints(alerts) == oracle


def test_recovery_with_empty_store_runs_from_scratch(tmp_path):
    events = make_events(3, count=400)
    oracle = oracle_alerts(events)
    store = CheckpointStore(tmp_path)
    scheduler = build_scheduler()
    alerts = recover_and_resume(scheduler, store,
                                ListStream(events, presorted=True))
    assert fingerprints(alerts) == oracle


def test_restored_stats_continue_from_checkpoint(tmp_path):
    events = make_events(5, count=600)
    oracle = build_scheduler()
    oracle.execute(ListStream(events, presorted=True))
    store = CheckpointStore(tmp_path)
    crashed = build_scheduler(checkpoint_store=store, checkpoint_interval=50)
    crashed.process_events(events[:300])
    recovered = build_scheduler()
    recovered.restore_state(store.latest())
    cursor = recovered.restored_cursor
    assert cursor is not None and cursor.events_ingested > 0
    recovered.execute(resume_events(events, cursor))
    assert recovered.stats.events_ingested == oracle.stats.events_ingested
    assert recovered.stats.alerts == oracle.stats.alerts
    assert (recovered.stats.pattern_evaluations
            == oracle.stats.pattern_evaluations)


def test_restore_rejects_mismatched_queries(tmp_path):
    events = make_events(1, count=200)
    store = CheckpointStore(tmp_path)
    crashed = build_scheduler(checkpoint_store=store, checkpoint_interval=50)
    crashed.process_events(events)
    other = ConcurrentQueryScheduler()
    other.add_query(QUERIES[0][1], name="tumbling")
    with pytest.raises(ValueError):
        other.restore_state(store.latest())


def test_watermark_interval_triggers_checkpoints(tmp_path):
    events = make_events(2, count=500)
    store = CheckpointStore(tmp_path)
    scheduler = build_scheduler(checkpoint_store=store,
                                checkpoint_watermark_interval=2.0)
    for start in range(0, len(events), 25):
        scheduler.process_events(events[start:start + 25])
    # 500 events at 0.02s spacing span 10s of event time: watermark-driven
    # checkpoints land every ~2s (the store keeps the last 3).
    assert len(store) >= 2


def test_checkpoint_configuration_validation(tmp_path):
    with pytest.raises(ValueError):
        ConcurrentQueryScheduler(checkpoint_store=CheckpointStore(tmp_path))
    with pytest.raises(ValueError):
        ConcurrentQueryScheduler(
            checkpoint_store=CheckpointStore(tmp_path),
            checkpoint_interval=0)


# ---------------------------------------------------------------------------
# The checkpoint store
# ---------------------------------------------------------------------------

class TestCheckpointStore:
    def test_save_and_latest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.latest() is None
        store.save({"version": 1, "n": 1})
        store.save({"version": 1, "n": 2})
        assert store.latest()["n"] == 2

    def test_bounded_history(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        for n in range(5):
            store.save({"n": n})
        assert len(store) == 2
        assert store.latest()["n"] == 4

    def test_corrupt_latest_falls_back(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"n": 1})
        path = store.save({"n": 2})
        path.write_text("{ truncated", encoding="utf-8")
        assert store.latest()["n"] == 1

    def test_rejects_non_finite_floats(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(ValueError):
            store.save({"bad": float("nan")})

    def test_clear(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"n": 1})
        store.clear()
        assert store.latest() is None


# ---------------------------------------------------------------------------
# Sharded kill-and-restore equivalence
# ---------------------------------------------------------------------------

def build_sharded(store, backend="serial", **kwargs) -> ShardedScheduler:
    scheduler = ShardedScheduler(shards=2, backend=backend, batch_size=32,
                                 checkpoint_store=store,
                                 checkpoint_interval=128, **kwargs)
    for name, text in QUERIES:
        scheduler.add_query(text, name=name)
    return scheduler


class _PoisonedStream:
    """A stream that raises mid-iteration — the crash injector."""

    def __init__(self, events, crash_at):
        self._events = events
        self._crash_at = crash_at

    def __iter__(self):
        for position, event in enumerate(self._events):
            if position >= self._crash_at:
                raise RuntimeError("injected crash")
            yield event


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6),
       crash_fraction=st.floats(min_value=0.2, max_value=0.95))
def test_sharded_kill_and_restore_matches_oracle(tmp_path_factory, seed,
                                                 crash_fraction):
    events = make_events(seed)
    oracle = oracle_alerts(events)
    store = CheckpointStore(tmp_path_factory.mktemp("ckpt"))
    crashed = build_sharded(store)
    crash_at = max(64, int(len(events) * crash_fraction))
    with pytest.raises(RuntimeError, match="injected crash"):
        crashed.execute(_PoisonedStream(events, crash_at))
    recovered = build_sharded(store=None)
    snapshot = store.latest()
    if snapshot is not None:
        recovered.restore_state(snapshot)
        stream = resume_events(events, recovered.restored_cursor)
    else:
        stream = iter(events)  # crashed before the first checkpoint
    alerts = recovered.execute(stream)
    assert fingerprints(alerts) == oracle


def test_double_crash_with_timestamp_ties_matches_oracle(tmp_path):
    """Crash, resume *with checkpointing still on*, crash again, resume.

    The second run's checkpoints must carry the union of frontier ids at
    a tied watermark — a checkpointer that restarted its cursor from
    scratch would re-deliver the first run's tie events on the second
    recovery, double-counting their window contributions.
    """
    events = make_events(29)
    oracle = oracle_alerts(events)
    store = CheckpointStore(tmp_path)
    first = build_sharded(store)
    with pytest.raises(RuntimeError, match="injected crash"):
        first.execute(_PoisonedStream(events, 700))
    assert store.latest() is not None

    ingested_at_first_crash = store.latest()["cursor"]["events_ingested"]
    second = build_sharded(store)  # checkpointing stays enabled
    second.restore_state(store.latest())
    remainder = list(resume_events(events, second.restored_cursor))
    with pytest.raises(RuntimeError, match="injected crash"):
        second.execute(_PoisonedStream(remainder, 400))
    # The second run checkpointed past the first run's cursor.
    assert (store.latest()["cursor"]["events_ingested"]
            > ingested_at_first_crash)

    third = build_sharded(store=None)
    third.restore_state(store.latest())
    alerts = third.execute(resume_events(events, third.restored_cursor))
    assert fingerprints(alerts) == oracle
    assert third.stats.events_ingested == len(events)


def test_sharded_recovery_keeps_exact_event_accounting(tmp_path):
    events = make_events(11)
    store = CheckpointStore(tmp_path)
    crashed = build_sharded(store)
    with pytest.raises(RuntimeError):
        crashed.execute(_PoisonedStream(events, 700))
    assert store.latest() is not None
    recovered = build_sharded(store=None)
    recovered.restore_state(store.latest())
    recovered.execute(resume_events(events, recovered.restored_cursor))
    assert recovered.stats.events_ingested == len(events)


def test_process_backend_worker_sigkill_then_restore(tmp_path):
    """SIGKILL an actual worker process mid-stream, then recover.

    The parent surfaces the dead shard as a RuntimeError; the checkpoints
    written before the kill drive an exact recovery (restored on the
    serial backend — shard snapshots are backend-agnostic).
    """
    import multiprocessing

    events = make_events(17, count=2500)
    oracle = oracle_alerts(events)
    store = CheckpointStore(tmp_path)
    crashed = build_sharded(store, backend="process")

    def slow_stream():
        for position, event in enumerate(events):
            if position and position % 200 == 0:
                time.sleep(0.05)  # give the killer thread a window
            yield event

    state = {"error": None, "killed": False}

    def run():
        try:
            crashed.execute(slow_stream())
        except BaseException as error:  # noqa: BLE001 - recorded for assert
            state["error"] = error

    runner = threading.Thread(target=run)
    runner.start()
    deadline = time.monotonic() + 30.0
    victim = None
    while time.monotonic() < deadline and victim is None:
        children = multiprocessing.active_children()
        if children and len(store) > 0:
            victim = children[0]
        else:
            time.sleep(0.02)
    if victim is not None:
        os.kill(victim.pid, signal.SIGKILL)
        state["killed"] = True
    # Generous: the parent may sit out a checkpoint collection deadline
    # (30s) against the dead worker before surfacing the failure.
    runner.join(timeout=120.0)
    assert not runner.is_alive(), "sharded run hung after the worker kill"
    if not state["killed"]:
        pytest.skip("stream finished before a worker could be killed")
    assert state["error"] is not None

    recovered = build_sharded(store=None)  # restore onto the serial backend
    snapshot = store.latest()
    assert snapshot is not None
    recovered.restore_state(snapshot)
    alerts = recovered.execute(resume_events(events,
                                             recovered.restored_cursor))
    assert fingerprints(alerts) == oracle
