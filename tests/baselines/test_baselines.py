"""Tests for the copy-per-query and generic-CEP baselines."""

import pytest

from repro.baselines import (
    CopyPerQueryExecutor,
    FilterQuery,
    GenericCEPEngine,
    WindowedAggregateQuery,
)
from repro.core import ConcurrentQueryScheduler
from repro.events.event import Operation
from repro.events.stream import ListStream
from tests.conftest import make_connection, make_event, make_file, make_process

QUERY_A = '''
agentid = "db-server"
proc p["%sbblv.exe"] read file f["%backup%"] as e
return p, f
'''

QUERY_B = '''
agentid = "db-server"
proc p["%sbblv.exe"] write ip i as e
return p, i
'''


def _events(count=20):
    sbblv = make_process("sbblv.exe", 4)
    dump = make_file("D:/backup/backup1.dmp")
    attacker = make_connection("203.0.113.129")
    events = []
    for index in range(count):
        events.append(make_event(sbblv, Operation.READ, dump,
                                 float(index * 2), amount=1e5))
        events.append(make_event(sbblv, Operation.WRITE, attacker,
                                 float(index * 2 + 1), amount=1e5))
    return events


class TestCopyPerQueryExecutor:
    def test_detections_match_shared_scheduler(self):
        baseline = CopyPerQueryExecutor()
        shared = ConcurrentQueryScheduler()
        for runner in (baseline, shared):
            runner.add_query(QUERY_A, name="a")
            runner.add_query(QUERY_B, name="b")
        baseline_alerts = sorted(
            (a.query_name, a.data)
            for a in baseline.execute(ListStream(_events())))
        shared_alerts = sorted(
            (a.query_name, a.data)
            for a in shared.execute(ListStream(_events())))
        assert baseline_alerts == shared_alerts

    def test_one_data_copy_per_query(self):
        baseline = CopyPerQueryExecutor()
        baseline.add_query(QUERY_A)
        baseline.add_query(QUERY_B)
        assert baseline.stats.data_copies == 2

    def test_buffers_grow_with_query_count(self):
        few = CopyPerQueryExecutor()
        few.add_query(QUERY_A)
        many = CopyPerQueryExecutor()
        for index in range(4):
            many.add_query(QUERY_A, name=f"q{index}")
        few.execute(ListStream(_events()))
        many.execute(ListStream(_events()))
        assert (many.stats.peak_buffered_events
                > few.stats.peak_buffered_events)

    def test_sharing_buffers_less_than_baseline(self):
        baseline = CopyPerQueryExecutor()
        shared = ConcurrentQueryScheduler()
        for runner in (baseline, shared):
            for index in range(4):
                runner.add_query(QUERY_A, name=f"q{index}")
        baseline.execute(ListStream(_events()))
        shared.execute(ListStream(_events()))
        assert (shared.stats.peak_buffered_events
                < baseline.stats.peak_buffered_events)

    def test_global_constraint_still_applies(self):
        baseline = CopyPerQueryExecutor()
        baseline.add_query(QUERY_A)
        foreign = make_event(make_process("sbblv.exe", 4), Operation.READ,
                             make_file("D:/backup/backup1.dmp"), 1.0,
                             agentid="laptop-07")
        assert baseline.execute(ListStream([foreign])) == []


class TestGenericCEP:
    def test_filter_query(self):
        engine = GenericCEPEngine()
        fltr = engine.add_filter(FilterQuery(
            name="reads", predicate=lambda e: e.operation is Operation.READ))
        engine.execute(ListStream(_events(count=5)))
        assert len(fltr.matches) == 5

    def test_windowed_aggregate(self):
        engine = GenericCEPEngine()
        aggregate = engine.add_aggregate(WindowedAggregateQuery(
            name="per-dst", predicate=lambda e: e.obj.get_attr("dstip"),
            key=lambda e: e.obj.get_attr("dstip"),
            value=lambda e: e.amount, window_seconds=10.0))
        results = engine.execute(ListStream(_events(count=10)))
        assert results
        total = sum(sum(result.values.values()) for result in results)
        assert total == pytest.approx(10 * 1e5)

    @pytest.mark.parametrize("kind,expected", [("avg", 1e5), ("count", 10.0)])
    def test_avg_and_count_aggregates(self, kind, expected):
        engine = GenericCEPEngine()
        aggregate = engine.add_aggregate(WindowedAggregateQuery(
            name="x", predicate=lambda e: True,
            key=lambda e: "all", value=lambda e: e.amount,
            window_seconds=1e6, aggregate=kind))
        engine.execute(ListStream(_events(count=5)))
        # Only the flush result exists because the window never closes.
        assert len(aggregate.results) == 1
        assert aggregate.results[0].values["all"] == pytest.approx(expected)

    def test_every_query_sees_every_event(self):
        engine = GenericCEPEngine()
        engine.add_filter(FilterQuery("a", lambda e: True))
        engine.add_filter(FilterQuery("b", lambda e: False))
        engine.execute(ListStream(_events(count=3)))
        assert engine.events_processed == 6
        assert engine.events_delivered == 12

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            WindowedAggregateQuery("x", lambda e: True, lambda e: 1,
                                   lambda e: 1.0, window_seconds=0)

    def test_invalid_aggregate_rejected(self):
        with pytest.raises(ValueError):
            WindowedAggregateQuery("x", lambda e: True, lambda e: 1,
                                   lambda e: 1.0, window_seconds=10,
                                   aggregate="median")
