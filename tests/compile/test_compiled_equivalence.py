"""Compiled/interpreted equivalence for the query-compilation subsystem.

The compile layer (:mod:`repro.core.compile`) is a pure performance
artifact: for every query the compiled predicates, group keys and
expressions must agree with the AST-walking interpreter on every input.
These tests enforce that across the demo queries, randomized event
streams, and (property-style) randomized scalar values, including full
engine-vs-engine alert-stream identity.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConcurrentQueryScheduler, QueryEngine
from repro.core.compile.predicates import (
    _compile_value_check,
    compile_global_constraints,
)
from repro.core.engine.matching import PatternMatcher, check_global_constraint
from repro.core.engine.state import StateMaintainer
from repro.core.expr.values import compare_values, like_match
from repro.core.language import parse_query
from repro.events.entities import FileEntity, NetworkEntity, ProcessEntity
from repro.events.event import Event, Operation
from repro.events.stream import ListStream
from repro.queries.demo_queries import DEMO_QUERIES

# ---------------------------------------------------------------------------
# Randomized event streams that exercise the demo queries' constraints
# ---------------------------------------------------------------------------

_EXES = ["cmd.exe", "osql.exe", "sqlservr.exe", "sbblv.exe", "excel.exe",
         "outlook.exe", "wscript.exe", "backdoor.exe", "gsecdump.exe",
         "cscript.exe", "chrome.exe", "svchost.exe"]
_FILES = ["D:/backup/backup1.dmp", "C:/mail/invoice-4711.xlsx",
          "C:/tmp/creds.txt", "C:/windows/system32/config/SAM",
          "C:/tools/sbblv.exe", "C:/users/alice/backdoor.exe",
          "C:/logs/app.log"]
_IPS = ["203.0.113.129", "10.0.2.11", "10.0.2.12", "192.168.1.50"]
_AGENTS = ["db-server", "client-01", "web-01"]
_OPERATIONS = list(Operation)


def random_events(seed: int, count: int = 400):
    """Generate a deterministic, time-ordered mixed event stream."""
    rng = random.Random(seed)
    events = []
    timestamp = 0.0
    for _ in range(count):
        timestamp += rng.uniform(0.1, 30.0)
        host = rng.choice(_AGENTS)
        subject = ProcessEntity.make(rng.choice(_EXES),
                                     pid=rng.randint(1, 50), host=host)
        kind = rng.random()
        if kind < 0.4:
            obj = FileEntity.make(rng.choice(_FILES), host=host)
        elif kind < 0.7:
            obj = NetworkEntity.make("10.0.1.30", rng.choice(_IPS),
                                     srcport=50000,
                                     dstport=rng.choice([443, 1433, 8080]))
        else:
            obj = ProcessEntity.make(rng.choice(_EXES),
                                     pid=rng.randint(51, 99), host=host)
        events.append(Event(
            subject=subject,
            operation=rng.choice(_OPERATIONS),
            obj=obj,
            timestamp=timestamp,
            agentid=host,
            amount=rng.choice([0.0, 512.0, 1e5, 6e5, 7e6]),
        ))
    return events


def _match_fingerprint(match):
    return (match.alias, match.event.event_id,
            tuple(sorted((name, entity.entity_id)
                         for name, entity in match.bindings.items())))


@pytest.fixture(scope="module")
def streams():
    return [random_events(seed) for seed in (3, 17, 92)]


# ---------------------------------------------------------------------------
# Unit-level equivalence: predicates, global constraints, group keys, state
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(DEMO_QUERIES))
def test_compiled_pattern_matching_equals_interpreter(name, streams):
    query = parse_query(DEMO_QUERIES[name])
    compiled = PatternMatcher(query, compiled=True)
    interpreted = PatternMatcher(query, compiled=False)
    for events in streams:
        for event in events:
            fast = [_match_fingerprint(m) for m in compiled.match_event(event)]
            slow = [_match_fingerprint(m)
                    for m in interpreted.match_event(event)]
            assert fast == slow


@pytest.mark.parametrize("name", sorted(DEMO_QUERIES))
def test_compiled_global_constraints_equal_interpreter(name, streams):
    query = parse_query(DEMO_QUERIES[name])
    predicate = compile_global_constraints(query.global_constraints)
    for events in streams:
        for event in events:
            expected = all(check_global_constraint(event, constraint)
                           for constraint in query.global_constraints)
            assert predicate(event) == expected


@pytest.mark.parametrize("name", [name for name, text in DEMO_QUERIES.items()
                                  if "state" in text])
def test_compiled_group_keys_equal_interpreter(name, streams):
    query = parse_query(DEMO_QUERIES[name])
    compiled = StateMaintainer(query, compiled=True)
    interpreted = StateMaintainer(query, compiled=False)
    matcher = PatternMatcher(query, compiled=False)
    checked = 0
    for events in streams:
        for event in events:
            for match in matcher.match_event(event):
                assert (compiled.group_key_for(match)
                        == interpreted.group_key_for(match))
                checked += 1
    assert checked > 0


@pytest.mark.parametrize("name", [name for name, text in DEMO_QUERIES.items()
                                  if "state" in text])
def test_compiled_state_fields_equal_interpreter(name, streams):
    query = parse_query(DEMO_QUERIES[name])
    compiled = StateMaintainer(query, compiled=True)
    interpreted = StateMaintainer(query, compiled=False)
    matcher = PatternMatcher(query, compiled=True)
    matches = [match for events in streams for event in events
               for match in matcher.match_event(event)]
    assert matches
    # Compare the computed per-group window fields over the same bucket.
    fast = compiled._compiled_fields(matches)
    from repro.core.engine.context import AggregationContext
    from repro.core.expr.evaluator import ExpressionEvaluator
    evaluator = ExpressionEvaluator(AggregationContext(matches))
    slow = {definition.name: evaluator.evaluate(definition.expr)
            for definition in query.state.definitions}
    assert fast == slow


# ---------------------------------------------------------------------------
# Property-style equivalence of the specialized constraint checks
# ---------------------------------------------------------------------------

scalar_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(min_value=-1e9, max_value=1e9,
              allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
    st.sampled_from(["db-server", "client-01", "5", "5.0", "%cmd%",
                     "a_b", "CMD.EXE", "cmd.exe"]),
)
expected_values = st.one_of(
    st.integers(min_value=-10**4, max_value=10**4),
    st.floats(min_value=-1e6, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
    st.sampled_from(["db-server", "5", "%cmd%", "_sql%", "443"]),
)


class TestCompiledValueChecks:
    @settings(max_examples=300, deadline=None)
    @given(op=st.sampled_from(["==", "=", "!=", ">", ">=", "<", "<="]),
           value=scalar_values, expected=expected_values)
    def test_compiled_check_matches_compare_values(self, op, value, expected):
        check = _compile_value_check(op, expected)
        assert check(value) == compare_values(op, value, expected)

    @settings(max_examples=200, deadline=None)
    @given(value=scalar_values,
           pattern=st.sampled_from(["%cmd.exe", "%backup%", "_sql%",
                                    "plain", "%", "_", ""]))
    def test_compiled_like_matches_interpreter(self, value, pattern):
        check = _compile_value_check("like", pattern)
        assert check(value) == like_match(value, pattern)


# ---------------------------------------------------------------------------
# Engine-vs-engine: identical alert streams on both paths
# ---------------------------------------------------------------------------

def _alert_fingerprint(alert):
    return (alert.timestamp, alert.data, alert.group_key,
            alert.window_start, alert.window_end, alert.agentid,
            alert.model_kind)


def _alert_stream(query_text, events, compiled):
    engine = QueryEngine(query_text, compiled=compiled)
    engine.execute(ListStream(events, presorted=True))
    return [_alert_fingerprint(alert) for alert in engine.alerts]


@pytest.mark.parametrize("name", sorted(DEMO_QUERIES))
def test_engine_alert_streams_identical_on_random_events(name, streams):
    text = DEMO_QUERIES[name]
    for events in streams:
        assert (_alert_stream(text, events, compiled=True)
                == _alert_stream(text, events, compiled=False))


@pytest.mark.parametrize("name", sorted(DEMO_QUERIES))
def test_engine_alert_streams_identical_on_demo_stream(name, demo_stream):
    text = DEMO_QUERIES[name]
    events = list(demo_stream)
    assert (_alert_stream(text, events, compiled=True)
            == _alert_stream(text, events, compiled=False))


def test_window_close_error_does_not_lose_later_windows():
    """An error closing one due window must not drop later due windows."""
    from repro.core.engine.error_reporter import ErrorReporter

    query = '''
proc p read file f as e #time(10 sec)
state ss { total := sum(evt.marker.sub) }
alert ss.total >= 0
return ss.total
'''
    reporter = ErrorReporter()
    engine = QueryEngine(query, error_reporter=reporter)
    proc = ProcessEntity.make("osql.exe", 7, host="db-server")
    blob = FileEntity.make("C:/data/blob.bin", host="db-server")

    def event(timestamp, **attrs):
        return Event(subject=proc, operation=Operation.READ, obj=blob,
                     timestamp=timestamp, agentid="db-server", attrs=attrs)

    # Window [0, 10) raises while computing state (marker is a string, so
    # evt.marker.sub fails); window [10, 20) is clean.  The out-of-order
    # arrival keeps both windows open until one watermark jump dues both.
    engine.process_event(event(12.0))
    engine.process_event(event(1.0, marker="boom"))
    # Both windows become due at once; the first raises and is reported.
    assert engine.process_event(event(25.0)) == []
    assert reporter.has_errors()
    # The clean windows must still close (here: via the end-of-stream flush).
    alerts = engine.finish()
    assert [(a.window_start, a.window_end) for a in alerts] == [
        (10.0, 20.0), (20.0, 30.0)]


def test_op_indexed_scheduler_still_advances_watermarks():
    """Events of unmatched operations must still close due windows."""
    query = '''
proc p write file f as e #time(10 sec)
state ss { total := sum(evt.amount) }
alert ss.total > 0
return ss.total
'''
    scheduler = ConcurrentQueryScheduler()
    scheduler.add_query(query, name="writes")
    proc = ProcessEntity.make("osql.exe", 7, host="db-server")
    blob = FileEntity.make("C:/data/blob.bin", host="db-server")
    write = Event(subject=proc, operation=Operation.WRITE, obj=blob,
                  timestamp=1.0, agentid="db-server", amount=100.0)
    read = Event(subject=proc, operation=Operation.READ, obj=blob,
                 timestamp=50.0, agentid="db-server")
    assert scheduler.process_event(write) == []
    # The read cannot match the write-only pattern, but it must advance
    # the watermark so the [0, 10) window alerts now, not at finish().
    alerts = scheduler.process_event(read)
    assert [(a.window_start, a.window_end) for a in alerts] == [(0.0, 10.0)]
    assert scheduler.finish() == []


def test_scheduler_alerts_match_interpreted_engines(streams):
    """Operation-indexed scheduling changes no per-query alert stream."""
    for events in streams:
        scheduler = ConcurrentQueryScheduler()
        for name, text in sorted(DEMO_QUERIES.items()):
            scheduler.add_query(text, name=name)
        scheduler.execute(ListStream(events, presorted=True))
        for engine in scheduler.engines:
            reference = _alert_stream(DEMO_QUERIES[engine.name], events,
                                      compiled=False)
            assert [_alert_fingerprint(alert)
                    for alert in engine.alerts] == reference
