"""Columnar/closure-oracle equivalence for the columnar batch path.

The columnar executor (:mod:`repro.core.compile.columnar` plus the
scheduler's ``columnar=True`` fast path) is a pure performance artifact:
for every registered query set and every event stream it must produce the
same per-engine alert streams — and the same logical scheduler statistics
— as the per-event compiled-closure path (``columnar=False``, the
oracle).  These tests enforce that property-style across operations, LIKE
patterns, numeric coercions, batch sizes, out-of-order batches, sharded
execution and checkpoint/restore.
"""

from __future__ import annotations

import dataclasses
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConcurrentQueryScheduler
from repro.core.parallel import ShardedScheduler
from repro.core.snapshot import resume_events
from repro.events.entities import FileEntity, NetworkEntity, ProcessEntity
from repro.events.event import Event, Operation
from repro.events.stream import ListStream
from repro.queries.demo_queries import DEMO_QUERIES
from repro.storage import CheckpointStore

from tests.compile.test_compiled_equivalence import (
    _AGENTS,
    _EXES,
    _FILES,
    _IPS,
    random_events,
)

# ---------------------------------------------------------------------------
# Stream generation
# ---------------------------------------------------------------------------

#: Amounts mixing zeros, small/large magnitudes and float/int types, so
#: numeric constraint coercion (e.g. ``amount > 500000``) sees both sides.
_AMOUNTS = [0.0, 1, 512.0, 99999, 1e5, 600000, 6e5, 7e6]


def jittered_events(seed: int, count: int = 300, disorder: float = 0.0):
    """A mixed stream; ``disorder > 0`` swaps that fraction of neighbours.

    The swaps produce the mildly out-of-order batches a real collection
    pipeline delivers; both execution modes must degrade identically.
    """
    rng = random.Random(seed * 31 + 7)
    events = [dataclasses.replace(event, amount=rng.choice(_AMOUNTS))
              for event in random_events(seed, count=count)]
    if disorder:
        rng = random.Random(seed + 1)
        for index in range(len(events) - 1):
            if rng.random() < disorder:
                events[index], events[index + 1] = (events[index + 1],
                                                    events[index])
    return events


def _fingerprints(alerts):
    return [(a.query_name, a.timestamp, a.data, repr(a.group_key),
             a.window_start, a.window_end, a.agentid, a.model_kind)
            for a in alerts]


def _scheduler(names, columnar, **kwargs):
    scheduler = ConcurrentQueryScheduler(columnar=columnar, **kwargs)
    for name in names:
        scheduler.add_query(DEMO_QUERIES[name], name=name)
    return scheduler


def _assert_modes_agree(names, events, batch_size):
    oracle = _scheduler(names, columnar=False)
    oracle.execute(ListStream(events, presorted=True),
                   batch_size=batch_size)
    columnar = _scheduler(names, columnar=True)
    columnar.execute(ListStream(events, presorted=True),
                     batch_size=batch_size)
    for slow, fast in zip(oracle.engines, columnar.engines):
        assert _fingerprints(fast.alerts) == _fingerprints(slow.alerts)
    # The logical accounting is mode-independent by design: the physical
    # predicate_* counters carry the columnar story instead.
    assert (columnar.stats.pattern_evaluations
            == oracle.stats.pattern_evaluations)
    assert (columnar.stats.pattern_evaluations_saved
            == oracle.stats.pattern_evaluations_saved)
    assert columnar.stats.alerts == oracle.stats.alerts
    assert columnar.stats.buffered_events == oracle.stats.buffered_events
    return columnar


# ---------------------------------------------------------------------------
# Property-based parity: demo queries x random streams x batch sizes
# ---------------------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6),
       batch_size=st.sampled_from([16, 64, 257, 512]),
       disorder=st.sampled_from([0.0, 0.15]))
def test_columnar_equals_oracle_across_demo_queries(seed, batch_size,
                                                    disorder):
    events = jittered_events(seed, disorder=disorder)
    names = sorted(DEMO_QUERIES)
    columnar = _assert_modes_agree(names, events, batch_size)
    # The columnar path actually engaged (batches meet the threshold).
    assert columnar.stats.column_blocks_built > 0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_columnar_equals_oracle_per_query(seed):
    """Single-query groups: no cross-query sharing to hide behind."""
    events = jittered_events(seed, count=200)
    for name in sorted(DEMO_QUERIES):
        _assert_modes_agree([name], events, batch_size=64)


# ---------------------------------------------------------------------------
# LIKE patterns and numeric coercions
# ---------------------------------------------------------------------------

#: Queries stressing the vectorized predicate forms: LIKE with leading /
#: trailing / infix wildcards, ``_`` single-character wildcards, negated
#: wildcard equality, numeric ordering against int and float literals on
#: event and entity attributes, and subject-attribute global constraints.
_PREDICATE_QUERIES = {
    "like-infix": '''
proc p["%sql%"] write file f["%backup%"] as evt #time(2 min)
state ss { n := count(evt) } group by p
alert ss.n > 0
return p, ss.n
''',
    "like-single-char": '''
proc p["osql.ex_"] read || write file f as evt #time(2 min)
state ss { n := count(evt) } group by f
alert ss.n > 0
return f, ss.n
''',
    "negated-wildcard": '''
proc p[exe_name != "%svchost%"] write ip i as evt #time(2 min)
state ss { amt := sum(evt.amount) } group by i.dstip
alert ss.amt > 500000
return i.dstip, ss.amt
''',
    "numeric-int-floor": '''
agentid = "db-server"
proc p read || write ip i[dstport = 443] as evt #time(2 min)
state ss { amt := sum(evt.amount) } group by p
alert ss.amt >= 600000
return p, ss.amt
''',
    "numeric-float-floor": '''
proc p write ip i as evt #time(2 min)
state ss { peak := max(evt.amount) } group by p
alert ss.peak > 512.5
return p, ss.peak
''',
    "string-equality-fold": '''
proc p[exe_name = "EXCEL.EXE"] start proc c as evt #time(5 min)
state ss { kids := set(c.exe_name) } group by p
alert |ss.kids| > 0
return p, ss.kids
''',
}


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6),
       batch_size=st.sampled_from([16, 128]))
def test_columnar_like_and_coercion_parity(seed, batch_size):
    events = jittered_events(seed, count=250, disorder=0.1)
    oracle = ConcurrentQueryScheduler(columnar=False)
    columnar = ConcurrentQueryScheduler(columnar=True)
    for scheduler in (oracle, columnar):
        for name, text in sorted(_PREDICATE_QUERIES.items()):
            scheduler.add_query(text, name=name)
    oracle.execute(ListStream(events, presorted=True),
                   batch_size=batch_size)
    columnar.execute(ListStream(events, presorted=True),
                     batch_size=batch_size)
    for slow, fast in zip(oracle.engines, columnar.engines):
        assert _fingerprints(fast.alerts) == _fingerprints(slow.alerts)


# ---------------------------------------------------------------------------
# Sharded execution
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", ["serial", "thread"])
def test_columnar_parity_under_sharding(backend):
    events = jittered_events(11, count=400)
    names = sorted(DEMO_QUERIES)

    def run(columnar):
        scheduler = ShardedScheduler(shards=3, backend=backend,
                                     batch_size=64, columnar=columnar)
        for name in names:
            scheduler.add_query(DEMO_QUERIES[name], name=name)
        alerts = scheduler.execute(ListStream(events, presorted=True))
        return alerts, scheduler.stats

    oracle_alerts, oracle_stats = run(False)
    columnar_alerts, columnar_stats = run(True)
    assert (sorted(_fingerprints(columnar_alerts))
            == sorted(_fingerprints(oracle_alerts)))
    assert (columnar_stats.pattern_evaluations
            == oracle_stats.pattern_evaluations)
    assert (columnar_stats.pattern_evaluations_saved
            == oracle_stats.pattern_evaluations_saved)
    # The merged stats carry the columnar observability across shards.
    assert columnar_stats.column_blocks_built > 0
    assert columnar_stats.distinct_predicates > 0
    assert columnar_stats.predicate_sharing
    assert oracle_stats.column_blocks_built == 0
    assert oracle_stats.distinct_predicates == 0


# ---------------------------------------------------------------------------
# Checkpoint / restore
# ---------------------------------------------------------------------------

def test_columnar_parity_across_checkpoint_restore(tmp_path):
    """Crash-recover a columnar run; alerts match the uninterrupted oracle."""
    events = jittered_events(23, count=400)
    names = sorted(DEMO_QUERIES)

    oracle = _scheduler(names, columnar=False)
    oracle.execute(ListStream(events, presorted=True), batch_size=64)
    reference = {engine.name: _fingerprints(engine.alerts)
                 for engine in oracle.engines}

    store = CheckpointStore(tmp_path)
    first = _scheduler(names, columnar=True, checkpoint_store=store,
                       checkpoint_interval=100)
    cut = len(events) // 2
    first.process_events(events[:cut])
    snapshot = store.latest()
    assert snapshot is not None

    recovered = _scheduler(names, columnar=True)
    recovered.restore_state(snapshot)
    early = {engine.name: _fingerprints(engine.alerts)
             for engine in recovered.engines}
    recovered.execute(resume_events(events, recovered.restored_cursor),
                      batch_size=64)
    for engine in recovered.engines:
        assert _fingerprints(engine.alerts) == reference[engine.name]
        # The restored ledger replayed the pre-crash alerts verbatim.
        assert (reference[engine.name][:len(early[engine.name])]
                == early[engine.name])
    # Restored predicate counters persist as a reporting baseline and the
    # live index keeps counting on top of them.
    assert recovered.stats.distinct_predicates > 0
    report = recovered.shared_predicate_report()
    assert any(entry["rows_evaluated"] > 0 for entry in report)
