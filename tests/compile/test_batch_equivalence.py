"""Batch/per-event equivalence for the batch ingestion path.

``process_events`` is a pure performance artifact: feeding a stream in
batches (with the deferred watermark advance) must produce the same
per-engine alert streams — and, at scheduler level, the same statistics —
as feeding the same events one at a time.  These tests enforce that across
the demo queries, randomized event streams and batch sizes, in the style
of the compiled/interpreted equivalence suite.
"""

from __future__ import annotations

import pytest

from repro.core import ConcurrentQueryScheduler, QueryEngine
from repro.events.stream import ListStream, iter_batches
from repro.queries.demo_queries import DEMO_QUERIES

from tests.compile.test_compiled_equivalence import random_events

BATCH_SIZES = (1, 7, 64, 512)


def _alert_fingerprint(alert):
    return (alert.timestamp, alert.data, alert.group_key,
            alert.window_start, alert.window_end, alert.agentid,
            alert.model_kind)


@pytest.fixture(scope="module")
def streams():
    return [random_events(seed) for seed in (5, 23, 71)]


# ---------------------------------------------------------------------------
# Chunking
# ---------------------------------------------------------------------------

def test_iter_batches_preserves_order_and_remainder(streams):
    events = streams[0]
    for size in BATCH_SIZES:
        batches = list(iter_batches(events, size))
        assert [e for batch in batches for e in batch] == events
        assert all(len(batch) == size for batch in batches[:-1])
        assert 1 <= len(batches[-1]) <= size


def test_iter_batches_rejects_non_positive_size(streams):
    with pytest.raises(ValueError):
        list(iter_batches(streams[0], 0))
    with pytest.raises(ValueError):
        list(ListStream([]).batches(-3))


def test_stream_batches_delegates(streams):
    stream = ListStream(streams[0], presorted=True)
    assert [e for b in stream.batches(13) for e in b] == streams[0]


# ---------------------------------------------------------------------------
# Engine-level equivalence
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(DEMO_QUERIES))
def test_engine_batches_match_per_event(name, streams):
    text = DEMO_QUERIES[name]
    for events in streams:
        reference_engine = QueryEngine(text)
        reference_engine.execute(ListStream(events, presorted=True))
        reference = [_alert_fingerprint(a) for a in reference_engine.alerts]
        for size in BATCH_SIZES:
            engine = QueryEngine(text)
            for batch in iter_batches(events, size):
                engine.process_events(batch)
            engine.finish()
            assert [_alert_fingerprint(a)
                    for a in engine.alerts] == reference
            assert engine.events_processed == len(events)


# ---------------------------------------------------------------------------
# Scheduler-level equivalence, including statistics
# ---------------------------------------------------------------------------

def _scheduler_for(names):
    scheduler = ConcurrentQueryScheduler()
    for name in names:
        scheduler.add_query(DEMO_QUERIES[name], name=name)
    return scheduler


def test_scheduler_batches_match_per_event(streams):
    names = sorted(DEMO_QUERIES)
    for events in streams:
        reference = _scheduler_for(names)
        reference.execute(ListStream(events, presorted=True))
        per_engine = {
            engine.name: [_alert_fingerprint(a) for a in engine.alerts]
            for engine in reference.engines
        }
        for size in BATCH_SIZES:
            scheduler = _scheduler_for(names)
            scheduler.execute(ListStream(events, presorted=True),
                              batch_size=size)
            for engine in scheduler.engines:
                assert [_alert_fingerprint(a)
                        for a in engine.alerts] == per_engine[engine.name]
            # All accounting must be identical, except the shared-buffer
            # peak: the batch path samples it at batch boundaries, so it is
            # a close lower bound of the per-event figure.
            _assert_stats_match(scheduler.stats, reference.stats)


def _assert_stats_match(batch_stats, reference_stats):
    assert batch_stats.events_ingested == reference_stats.events_ingested
    assert batch_stats.queries == reference_stats.queries
    assert batch_stats.groups == reference_stats.groups
    assert batch_stats.alerts == reference_stats.alerts
    assert (batch_stats.pattern_evaluations
            == reference_stats.pattern_evaluations)
    assert (batch_stats.pattern_evaluations_saved
            == reference_stats.pattern_evaluations_saved)
    assert batch_stats.buffered_events == reference_stats.buffered_events
    assert (batch_stats.buffered_events
            <= batch_stats.peak_buffered_events
            <= reference_stats.peak_buffered_events)


def test_scheduler_process_events_equals_loop(streams):
    """process_events on an explicit batch == process_event per event."""
    names = ["rule-c5-data-exfiltration", "timeseries-network-spike"]
    events = streams[0]
    one = _scheduler_for(names)
    batch_alerts = one.process_events(events)
    batch_alerts.extend(one.finish())
    other = _scheduler_for(names)
    loop_alerts = []
    for event in events:
        loop_alerts.extend(other.process_event(event))
    loop_alerts.extend(other.finish())
    assert (sorted(_alert_fingerprint(a) for a in batch_alerts)
            == sorted(_alert_fingerprint(a) for a in loop_alerts))
    _assert_stats_match(one.stats, other.stats)
