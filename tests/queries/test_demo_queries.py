"""Tests for the built-in demo query library."""

import pytest

from repro.core.language import parse_query
from repro.queries import (
    ADVANCED_QUERY_NAMES,
    DEMO_QUERIES,
    RULE_QUERY_NAMES,
    demo_query,
    demo_query_names,
)


class TestDemoQueryLibrary:
    def test_eight_queries(self):
        assert len(DEMO_QUERIES) == 8
        assert len(demo_query_names()) == 8

    def test_five_rule_queries_and_three_advanced(self):
        assert len(RULE_QUERY_NAMES) == 5
        assert len(ADVANCED_QUERY_NAMES) == 3

    @pytest.mark.parametrize("name", sorted(DEMO_QUERIES))
    def test_every_demo_query_parses(self, name):
        query = demo_query(name)
        assert query.name == name
        assert query.returns is not None

    def test_rule_queries_are_rule_models(self):
        for name in RULE_QUERY_NAMES:
            assert demo_query(name).model_kind == "rule"

    def test_advanced_query_model_kinds(self):
        kinds = {name: demo_query(name).model_kind
                 for name in ADVANCED_QUERY_NAMES}
        assert kinds["invariant-excel-children"] == "invariant"
        assert kinds["timeseries-network-spike"] == "time-series"
        assert kinds["outlier-exfiltration"] == "outlier"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            demo_query("no-such-query")

    def test_rule_queries_pin_a_host(self):
        for name in RULE_QUERY_NAMES:
            query = demo_query(name)
            assert any(constraint.attr == "agentid"
                       for constraint in query.global_constraints)

    def test_exfiltration_query_matches_paper_query1_shape(self):
        query = demo_query("rule-c5-data-exfiltration")
        assert len(query.patterns) == 4
        assert query.temporal_order is not None
        assert query.returns.distinct is True

    def test_builders_are_parameterizable(self):
        from repro.queries.demo_queries import (
            invariant_excel_children,
            outlier_exfiltration,
            timeseries_network_spike,
        )
        invariant = parse_query(invariant_excel_children(
            training_windows=7, window_minutes=2))
        assert invariant.invariant.training_windows == 7
        assert invariant.window.length == 120.0
        sma = parse_query(timeseries_network_spike(window_minutes=5,
                                                   floor_bytes=123))
        assert sma.window.length == 300.0
        outlier = parse_query(outlier_exfiltration(eps=42, min_pts=2))
        assert outlier.cluster.method_args == (42.0, 2.0)
