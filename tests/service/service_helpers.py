"""Shared helpers for the always-on service tests."""

from __future__ import annotations

from repro.core.engine.alerts import CollectingSink
from repro.core.scheduler.concurrent import ConcurrentQueryScheduler
from repro.core.snapshot.codecs import encode_alert
from repro.events.entities import NetworkEntity, ProcessEntity
from repro.events.event import Event, Operation
from repro.events.serialization import event_to_dict

#: A tumbling-window aggregation: alerts once a host's sent bytes in a
#: 10-second window exceed 100 — stateful enough that open windows and
#: drain/resume semantics matter.
SUM_QUERY = """
proc p send ip i as evt #time(10)
state ss { t := sum(evt.amount) } group by evt.agentid
alert ss.t > 100
return ss.t"""

#: A second query over the same stream shape (different threshold), so
#: multi-query/multi-tenant tests exercise the shared dispatch path.
BIG_QUERY = """
proc p send ip i as evt #time(20)
state ss { t := sum(evt.amount) } group by evt.agentid
alert ss.t > 300
return ss.t"""


def make_send_event(index: int, host: str = "h1",
                    amount: float = 50.0) -> Event:
    """One deterministic network-send event per call (1-based ids)."""
    return Event(
        subject=ProcessEntity.make("x.exe", pid=2, host=host),
        operation=Operation.SEND,
        obj=NetworkEntity.make("10.0.0.1", "10.0.0.2", dstport=443),
        timestamp=float(index), agentid=host, amount=amount,
        event_id=index + 1)


def make_stream(count: int, hosts=("h1", "h2")) -> list:
    """A deterministic multi-host event stream (timestamp-ordered)."""
    return [make_send_event(index, host=hosts[index % len(hosts)])
            for index in range(count)]


def event_dicts(events) -> list:
    """The wire (JSON-dict) form of a list of events."""
    return [event_to_dict(event) for event in events]


def batch_reference(events, queries) -> list:
    """The fault-free batch run's encoded alerts (the parity oracle).

    ``queries`` maps scheduler-facing names to query text; the reference
    scheduler processes the whole stream then finishes, exactly what a
    service fed the same events and drained with ``finish_stream`` must
    reproduce.
    """
    sink = CollectingSink()
    scheduler = ConcurrentQueryScheduler(sink=sink)
    for name, text in queries.items():
        scheduler.add_query(text, name=name)
    scheduler.process_events(events)
    scheduler.finish()
    return [encode_alert(alert) for alert in sink]
