"""The JSON-lines TCP front door: ops, malformed input, flaky clients."""

from __future__ import annotations

import json
import socket
import time

import pytest

from service_helpers import SUM_QUERY, event_dicts, make_stream
from repro.core.retry import BackoffPolicy, RetryPolicy
from repro.service import (SAQLService, ServiceClient, ServiceConfig,
                           ServiceTransport)

FAST = ServiceConfig(batch_size=8, max_batch_delay=0.01,
                     retry=RetryPolicy(max_attempts=2,
                                       backoff=BackoffPolicy(initial=0.001,
                                                             maximum=0.002)))


@pytest.fixture
def served():
    service = SAQLService(config=FAST).start()
    transport = ServiceTransport(service).start()
    yield service, transport.address
    transport.shutdown()
    if service.state != "stopped":
        service.drain()


def client_for(address) -> ServiceClient:
    return ServiceClient(address[0], address[1], timeout=5.0)


class TestOps:
    def test_full_control_plane_roundtrip(self, served):
        service, address = served
        with client_for(address) as client:
            assert client.check("ping")["pong"] is True
            assert client.check("health")["health"]["state"] == "serving"
            scoped = client.check("register", tenant="acme", name="sum",
                                  query=SUM_QUERY)["scoped"]
            assert scoped == "acme/sum"
            listed = client.check("queries", tenant="acme")["queries"]
            assert [q["name"] for q in listed] == ["sum"]

            counts = client.ingest_many(event_dicts(make_stream(30)),
                                        batch_size=10)
            assert counts["accepted"] == 30
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                stats = client.check("stats")["stats"]
                if stats["scheduler"]["events_ingested"] == 30:
                    break
                time.sleep(0.02)
            assert stats["scheduler"]["events_ingested"] == 30
            assert stats["queue"]["accepted"] == 30

            removed = client.check("remove", tenant="acme", name="sum")
            assert removed["flushed_alerts"] >= 1

    def test_single_event_ingest_op(self, served):
        service, address = served
        with client_for(address) as client:
            client.check("register", tenant="t", name="q", query=SUM_QUERY)
            event = event_dicts(make_stream(1))[0]
            assert client.check("ingest", event=event)["result"] == "accepted"

    def test_errors_are_responses_not_disconnects(self, served):
        service, address = served
        with client_for(address) as client:
            unknown = client.request("frobnicate")
            assert unknown["ok"] is False and "unknown op" in unknown["error"]
            missing = client.request("register", tenant="t")
            assert missing["ok"] is False
            bad_query = client.request("register", tenant="t", name="q",
                                       query="not saql")
            assert bad_query["ok"] is False
            bad_event = client.request("ingest", event={"nope": 1})
            assert bad_event["ok"] is False
            # The connection survived all four errors.
            assert client.check("ping")["pong"] is True

    def test_drain_op_requests_graceful_drain(self, served):
        service, address = served
        with client_for(address) as client:
            assert client.check("drain")["draining"] is True
        assert service.wait_for_drain_request(timeout=2.0)
        service.drain(reason="client")
        assert service.state == "stopped"


class TestRawProtocol:
    def test_malformed_json_line_gets_error_response(self, served):
        service, address = served
        with socket.create_connection(address, timeout=5.0) as raw:
            raw.sendall(b"this is not json\n")
            response = json.loads(raw.makefile().readline())
            assert response["ok"] is False
            assert "malformed JSON" in response["error"]

    def test_non_object_request_rejected(self, served):
        service, address = served
        with socket.create_connection(address, timeout=5.0) as raw:
            raw.sendall(b"[1, 2, 3]\n")
            response = json.loads(raw.makefile().readline())
            assert response["ok"] is False

    def test_midline_disconnect_does_not_kill_the_service(self, served):
        service, address = served
        flaky = socket.create_connection(address, timeout=5.0)
        flaky.sendall(b'{"op": "ingest", "event":')  # half a request
        flaky.close()
        # The service keeps serving other clients.
        with client_for(address) as client:
            assert client.check("ping")["pong"] is True

    def test_hung_client_does_not_block_others(self, served):
        service, address = served
        hung = socket.create_connection(address, timeout=5.0)
        try:
            # Says nothing, reads nothing — the per-client recv timeout
            # keeps its handler thread parked without wedging anyone.
            for _ in range(3):
                with client_for(address) as client:
                    assert client.check("ping")["pong"] is True
        finally:
            hung.close()

    def test_ingest_while_draining_reports_draining(self, served):
        service, address = served
        with client_for(address) as client:
            client.check("register", tenant="t", name="q", query=SUM_QUERY)
            client.check("drain")
            service.drain(reason="test")
            event = event_dicts(make_stream(1))[0]
            response = client.request("ingest", event=event)
            assert response["ok"] is False
            assert response.get("draining") is True
