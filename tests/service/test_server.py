"""The service core: lifecycle, control plane, drain/resume, parity.

The headline test is robustness parity: a service run with injected
sink failures, a mid-stream drain ("SIGTERM") and a resumed restart
must deliver exactly the alert set of a fault-free batch run —
duplicate-free and in per-query emission order.
"""

from __future__ import annotations

import json
import time

import pytest

from service_helpers import (BIG_QUERY, SUM_QUERY, batch_reference, event_dicts,
                             make_send_event, make_stream)
from repro.core.retry import BackoffPolicy, RetryPolicy
from repro.service import (FileSink, SAQLService, ServiceClosed,
                           ServiceConfig, ServiceError, TenantQuota,
                           WebhookSink, read_alert_file)
from repro.testing import FlakySinkTransport

#: Fast everything: small batches, millisecond pump waits and retries.
FAST = dict(batch_size=8, max_batch_delay=0.01, checkpoint_interval=10,
            retry=RetryPolicy(max_attempts=4,
                              backoff=BackoffPolicy(initial=0.001,
                                                    maximum=0.002,
                                                    jitter=0.0)))


def settle(service, timeout=5.0):
    """Wait until the queue is empty and delivery has caught up."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        stats = service.stats()
        if (stats["queue"]["depth"] == 0
                and stats["sinks"]["lag"] == 0):
            return
        time.sleep(0.02)
    raise AssertionError("service did not settle in time")


class TestLifecycle:
    def test_basic_flow(self, state_dir, tmp_path):
        out = tmp_path / "alerts.jsonl"
        service = SAQLService(state_dir=state_dir, sinks=[FileSink(out)],
                              config=ServiceConfig(**FAST)).start()
        assert service.register_query("acme", "sum", SUM_QUERY) == "acme/sum"
        events = make_stream(40)
        counts = service.submit_events(event_dicts(events))
        assert counts == {"accepted": 40, "shed": 0, "duplicate": 0}
        settle(service)
        report = service.drain(finish_stream=True, reason="eof")
        assert report.checkpointed
        assert read_alert_file(out) == batch_reference(
            events, {"acme/sum": SUM_QUERY})
        assert service.state == "stopped"

    def test_double_start_and_bad_drain_rejected(self):
        service = SAQLService(config=ServiceConfig(**FAST))
        with pytest.raises(ServiceError):
            service.drain()
        service.start()
        with pytest.raises(ServiceError):
            service.start()
        service.drain()
        with pytest.raises(ServiceError):
            service.start()

    def test_resume_without_state_dir_rejected(self):
        with pytest.raises(ServiceError):
            SAQLService(config=ServiceConfig(**FAST)).start(resume=True)

    def test_submit_after_drain_raises_service_closed(self):
        service = SAQLService(config=ServiceConfig(**FAST)).start()
        service.drain()
        with pytest.raises(ServiceClosed):
            service.submit_event(make_send_event(0))
        with pytest.raises(ServiceClosed):
            service.register_query("acme", "sum", SUM_QUERY)

    def test_malformed_event_rejected(self):
        service = SAQLService(config=ServiceConfig(**FAST)).start()
        with pytest.raises(ServiceError):
            service.submit_event({"not": "an event"})
        service.drain()


class TestControlPlane:
    def test_runtime_remove_flushes_open_windows(self, tmp_path):
        received = []
        from repro.service import CallbackDeliverySink
        service = SAQLService(
            sinks=[CallbackDeliverySink(received.append)],
            config=ServiceConfig(**FAST)).start()
        service.register_query("acme", "sum", SUM_QUERY)
        # 3 events in one open window: above threshold but not yet closed.
        for index in range(3):
            service.submit_event(make_send_event(index))
        settle(service)
        flushed = service.remove_query("acme", "sum")
        assert [a.query_name for a in flushed] == ["acme/sum"]
        assert service.registry.entries() == []
        service.drain()

    def test_quota_enforced_through_service(self):
        config = ServiceConfig(default_quota=TenantQuota(max_queries=1),
                               **FAST)
        service = SAQLService(config=config).start()
        service.register_query("acme", "sum", SUM_QUERY)
        from repro.service import QuotaExceeded
        with pytest.raises(QuotaExceeded):
            service.register_query("acme", "big", BIG_QUERY)
        service.register_query("beta", "sum", SUM_QUERY)
        service.drain()

    def test_bad_query_rolls_back_registration(self):
        service = SAQLService(config=ServiceConfig(**FAST)).start()
        from repro.core import SAQLError
        with pytest.raises(SAQLError):
            service.register_query("acme", "broken", "not a query at all")
        # The failed registration must not consume quota or manifest space.
        assert service.registry.entries() == []
        service.register_query("acme", "sum", SUM_QUERY)
        service.drain()

    def test_manifest_registrations_survive_restart(self, state_dir):
        config = ServiceConfig(**FAST)
        first = SAQLService(state_dir=state_dir, config=config).start()
        first.register_query("acme", "sum", SUM_QUERY)
        first.register_query("beta", "big", BIG_QUERY)
        first.drain()
        second = SAQLService(state_dir=state_dir, config=config)
        second.start(resume=True)
        assert [(e.tenant, e.name) for e in second.registry.entries()] == [
            ("acme", "sum"), ("beta", "big")]
        second.drain()


class TestBackpressure:
    def test_shed_policy_bounds_depth_and_counts(self):
        config = ServiceConfig(queue_capacity=4, queue_policy="shed",
                               **FAST)
        service = SAQLService(config=config).start()
        service.register_query("acme", "sum", SUM_QUERY)
        outcomes = service.submit_events(event_dicts(make_stream(500)))
        stats = service.stats()
        # Bounded: never deeper than capacity, and nothing silently lost —
        # every submission is accounted for as accepted or shed.
        assert stats["queue"]["high_water"] <= 4
        assert outcomes["accepted"] + outcomes["shed"] == 500
        assert stats["queue"]["shed"] == outcomes["shed"]
        settle(service)
        assert (service.stats()["scheduler"]["events_ingested"]
                == outcomes["accepted"])
        service.drain()

    def test_block_policy_loses_nothing(self):
        config = ServiceConfig(queue_capacity=4, queue_policy="block",
                               **FAST)
        service = SAQLService(config=config).start()
        service.register_query("acme", "sum", SUM_QUERY)
        outcomes = service.submit_events(event_dicts(make_stream(300)))
        assert outcomes == {"accepted": 300, "shed": 0, "duplicate": 0}
        settle(service)
        stats = service.stats()
        assert stats["scheduler"]["events_ingested"] == 300
        assert stats["queue"]["high_water"] <= 4
        service.drain()


class TestQuarantine:
    def test_failing_delivery_callback_never_kills_the_run(self, tmp_path):
        """A raising delivery sink dead-letters; the stream keeps going."""
        from repro.testing import FailingSink
        out = tmp_path / "alerts.jsonl"
        service = SAQLService(
            sinks=[FailingSink(), FileSink(out)],
            config=ServiceConfig(**{**FAST, "batch_size": 4}),
            state_dir=tmp_path / "state").start()
        service.register_query("acme", "sum", SUM_QUERY)
        events = make_stream(40)
        service.submit_events(event_dicts(events))
        settle(service)
        report = service.drain(finish_stream=True)
        reference = batch_reference(events, {"acme/sum": SUM_QUERY})
        assert read_alert_file(out) == reference
        assert report.dead_lettered == len(reference)
        dead = (tmp_path / "state" / "dead-letters.jsonl")
        assert len(dead.read_text().splitlines()) == len(reference)

    def test_stats_shape_is_json_safe(self, state_dir):
        service = SAQLService(state_dir=state_dir,
                              config=ServiceConfig(**FAST)).start()
        service.register_query("acme", "sum", SUM_QUERY)
        service.submit_events(event_dicts(make_stream(20)))
        settle(service)
        stats = service.stats()
        json.dumps(stats)  # must be strictly serializable
        for key in ("health", "ingestion", "queue", "sinks", "scheduler",
                    "quarantined", "tenants", "resumed"):
            assert key in stats
        assert stats["tenants"]["acme"]["queries"] == 1
        assert stats["health"]["state"] == "serving"
        service.drain()


class TestExactlyOnceParity:
    """The e2e acceptance test: faults + restart == fault-free batch."""

    def test_flaky_sink_and_midstream_restart_parity(self, state_dir,
                                                     tmp_path):
        events = make_stream(120)
        queries = {"acme/sum": SUM_QUERY, "acme/big": BIG_QUERY}
        reference = batch_reference(events, queries)
        assert len(reference) >= 6, "stream must actually alert"

        out = tmp_path / "alerts.jsonl"
        transport = FlakySinkTransport(fail_first=2)  # every alert retries

        def build():
            return SAQLService(
                state_dir=state_dir,
                sinks=[FileSink(out),
                       WebhookSink("http://flaky.test/hook",
                                   transport=transport)],
                config=ServiceConfig(**FAST))

        first = build().start()
        for name, text in queries.items():
            tenant, query_name = name.split("/")
            first.register_query(tenant, query_name, text)
        # Mid-stream "SIGTERM": drain without finishing open windows.
        first.submit_events(event_dicts(events[:70]))
        settle(first)
        report = first.drain(reason="sigterm")
        assert report.checkpointed and not report.finished_stream

        second = build().start(resume=True)
        # The producer re-sends the whole stream; the resume cursor drops
        # what the first run already processed.
        counts = second.submit_events(event_dicts(events))
        assert counts["duplicate"] == 70
        assert counts["accepted"] == 50
        settle(second)
        second.drain(finish_stream=True, reason="eof")

        # Parity on the durable file sink: the same alert set as the
        # fault-free batch oracle, duplicate-free.  (Global interleaving
        # across queries depends on batch boundaries; the per-query
        # order check below is the ordering guarantee.)
        delivered = read_alert_file(out)
        serialized = [json.dumps(entry, sort_keys=True)
                      for entry in delivered]
        assert len(serialized) == len(set(serialized))
        assert sorted(serialized) == sorted(
            json.dumps(entry, sort_keys=True) for entry in reference)
        # The flaky webhook converged to the same alert set.
        webhook_sorted = sorted(json.dumps(e, sort_keys=True)
                                for e in transport.delivered)
        assert webhook_sorted == sorted(serialized)
        # Per-query order within the file matches the oracle's.
        for name in queries:
            assert ([e for e in delivered if e["query_name"] == name]
                    == [e for e in reference if e["query_name"] == name])

    def test_resume_replays_undelivered_ledger_alerts(self, state_dir,
                                                      tmp_path):
        """Alerts checkpointed but never delivered re-deliver on resume."""
        events = make_stream(60)
        out = tmp_path / "alerts.jsonl"
        # First run: sink down the whole time -> everything dead-letters.
        from repro.testing import FailingSink
        down = SAQLService(state_dir=state_dir, sinks=[FailingSink()],
                           config=ServiceConfig(**FAST)).start()
        down.register_query("acme", "sum", SUM_QUERY)
        down.submit_events(event_dicts(events[:40]))
        settle(down)
        first_report = down.drain(reason="sigterm")
        assert first_report.delivered == 0
        assert first_report.dead_lettered > 0

        # Second run: healthy sink.  The ledger has no record of those
        # alerts, so the resume replay delivers them now.
        healthy = SAQLService(state_dir=state_dir,
                              sinks=[FileSink(out)],
                              config=ServiceConfig(**FAST)).start(resume=True)
        healthy.submit_events(event_dicts(events))
        settle(healthy)
        healthy.drain(finish_stream=True)
        assert read_alert_file(out) == batch_reference(
            events, {"acme/sum": SUM_QUERY})
