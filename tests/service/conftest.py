"""Shared fixtures for the always-on service tests."""

from __future__ import annotations

import pytest


@pytest.fixture
def state_dir(tmp_path):
    return tmp_path / "state"
