"""Service observability: the shared registry, exposition op, slow-query
log, dead-letter depth and the optional event journal.

One registry spans the whole service (scheduler stages, queue waits,
sink delivery, pump batches), so these tests drive a real service and
assert on the merged view the ``metrics`` transport op exposes.
"""

from __future__ import annotations

import time

import pytest

from repro.core.retry import BackoffPolicy, RetryPolicy
from repro.obs import MetricRegistry, parse_prometheus
from repro.service import (SAQLService, ServiceClient, ServiceConfig,
                           ServiceTransport, SinkDispatcher, WebhookSink)
from repro.service.queue import IngestionQueue
from repro.testing import FlakySinkTransport

from service_helpers import SUM_QUERY, make_stream

from repro.core.engine.alerts import Alert


def _make_alert(index: int, query: str = "q") -> Alert:
    return Alert(query_name=query, timestamp=float(index),
                 data=(("value", index),), group_key=f"g{index % 2}",
                 window_start=float(index), window_end=float(index + 10),
                 agentid="h1")


FAST_RETRY = RetryPolicy(max_attempts=3,
                         backoff=BackoffPolicy(initial=0.001, maximum=0.002,
                                               jitter=0.0))


def _drained_service(events, config=None, sinks=(), state_dir=None):
    service = SAQLService(state_dir=state_dir, sinks=list(sinks),
                          config=config or ServiceConfig())
    service.start()
    for host in {event.agentid for event in events}:
        service.register_query("t", f"sum-{host}", SUM_QUERY)
    for event in events:
        service.submit_event(event)
    return service


class TestServiceRegistry:
    def test_drain_produces_both_e2e_points(self, tmp_path):
        received = []
        from repro.service import CallbackDeliverySink
        service = _drained_service(
            make_stream(80), sinks=[CallbackDeliverySink(received.append)])
        service.drain(finish_stream=True)
        snapshot = service.metrics_snapshot()
        assert received  # alerts actually flowed through delivery
        e2e = {entry["labels"]["point"]: entry["count"]
               for entry in snapshot["families"]
               ["saql_alert_e2e_seconds"]["series"]}
        assert e2e["emit"] > 0
        assert e2e["sink_ack"] > 0
        stages = {entry["labels"]["stage"] for entry in
                  snapshot["families"]["saql_stage_seconds"]["series"]}
        assert "pump_batch" in stages

    def test_disabled_metrics_snapshot_is_none(self):
        service = _drained_service(
            make_stream(20), config=ServiceConfig(metrics=False))
        service.drain(finish_stream=True)
        assert service.metrics_snapshot() is None

    def test_sink_retry_and_dead_letter_counters(self, tmp_path):
        transport = FlakySinkTransport(fail_first=10)  # > retry budget
        registry = MetricRegistry()
        dispatcher = SinkDispatcher(
            [WebhookSink("http://example.test/hook", transport=transport)],
            retry=FAST_RETRY, dead_letter_path=tmp_path / "dead.jsonl",
            metrics=registry)
        dispatcher.start()
        dispatcher.submit(_make_alert(1))
        assert dispatcher.flush(timeout=5.0)
        dispatcher.stop()
        families = registry.snapshot()["families"]
        (retries,) = families["saql_sink_retries_total"]["series"]
        assert retries["value"] == 2  # attempts 2 and 3 were retries
        (dead,) = families["saql_sink_dead_letters_total"]["series"]
        assert dead["value"] == 1
        (delivery,) = families["saql_sink_delivery_seconds"]["series"]
        assert delivery["count"] == 3  # every attempt observed
        assert dispatcher.dead_letter_depth() == 1

    def test_dead_letter_depth_survives_restart(self, tmp_path):
        path = tmp_path / "dead.jsonl"
        path.write_text('{"sink": "s", "key": "k", "error": "x", '
                        '"alert": {}}\n', encoding="utf-8")
        dispatcher = SinkDispatcher([], dead_letter_path=path)
        assert dispatcher.dead_letter_depth() == 1

    def test_queue_admission_wait_observed_when_blocked(self):
        registry = MetricRegistry()
        queue = IngestionQueue(capacity=1, policy="block",
                               block_timeout=0.01, metrics=registry)
        queue.put("a")
        assert queue.put("b") is False  # sheds after the bounded wait
        (series,) = registry.snapshot()["families"][
            "saql_queue_admission_wait_seconds"]["series"]
        assert series["count"] == 1
        assert series["sum"] >= 0.01


class TestStatsSurface:
    def test_stats_exposes_slow_queries_and_dead_letters(self):
        config = ServiceConfig(journal_events=True)
        service = _drained_service(make_stream(60), config=config)
        stats = service.stats()
        assert stats["slow_queries"] == []  # nothing slow at this scale
        assert stats["sinks"]["dead_letter_depth"] == 0
        assert "metrics_snapshot" not in stats["scheduler"]
        service.drain(finish_stream=True)

    def test_event_journal_surfaces_store_stats(self, tmp_path):
        config = ServiceConfig(journal_events=True)
        service = _drained_service(make_stream(60), config=config,
                                   state_dir=tmp_path / "state")
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            stats = service.stats()
            if stats["event_store"]["total_events"] == 60:
                break
            time.sleep(0.02)
        assert stats["event_store"]["total_events"] == 60
        assert stats["health"]["event_store"]["total_events"] == 60
        service.drain(finish_stream=True)
        # Drain seals the journal tail into a segment.
        final = service._event_store.stats()
        assert final.sealed_segments >= 1
        assert (tmp_path / "state" / "events").is_dir()

    def test_slow_query_log_records_over_threshold_batches(self):
        from repro.core import ConcurrentQueryScheduler
        scheduler = ConcurrentQueryScheduler(slow_query_threshold=1e-12)
        scheduler.add_query(SUM_QUERY, name="sum")
        scheduler.process_events(make_stream(40))
        scheduler.finish()
        entries = scheduler.slow_queries()
        assert entries, "a near-zero threshold flags every batch"
        entry = entries[-1]
        assert entry["query"] == "sum"
        assert entry["seconds"] >= 0.0
        assert entry["p99_seconds"] >= entry["seconds"] * 0  # present
        assert set(entry) == {"query", "seconds", "events", "p99_seconds"}


class TestMetricsTransportOp:
    def test_prometheus_and_json_formats(self):
        service = _drained_service(make_stream(40))
        transport = ServiceTransport(service).start()
        host, port = transport.address
        try:
            with ServiceClient(host, port) as client:
                response = client.check("metrics")
                assert response["content_type"].startswith("text/plain")
                parsed = parse_prometheus(response["body"])
                assert parsed["types"]["saql_events_total"] == "counter"
                assert (parsed["types"]["saql_stage_seconds"]
                        == "histogram")
                as_json = client.check("metrics", format="json")
                assert "saql_events_total" in \
                    as_json["metrics"]["families"]
                bad = client.request("metrics", format="xml")
                assert not bad["ok"]
        finally:
            transport.shutdown()
            service.drain()

    def test_metrics_op_errors_when_disabled(self):
        service = _drained_service(
            make_stream(5), config=ServiceConfig(metrics=False))
        transport = ServiceTransport(service).start()
        host, port = transport.address
        try:
            with ServiceClient(host, port) as client:
                response = client.request("metrics")
                assert not response["ok"]
                assert "disabled" in response["error"]
        finally:
            transport.shutdown()
            service.drain()

    def test_idle_connection_survives_past_recv_timeout(self):
        """Regression: a >1s idle client used to be dropped because the
        buffered reader broke after a recv timeout."""
        service = _drained_service(make_stream(5))
        transport = ServiceTransport(service).start()
        host, port = transport.address
        try:
            with ServiceClient(host, port) as client:
                assert client.check("ping")["pong"]
                time.sleep(1.3)
                assert client.check("ping")["pong"]
        finally:
            transport.shutdown()
            service.drain()
