"""The bounded ingestion queue: backpressure policies and accounting.

The acceptance contract: queue depth stays bounded under load, the
chosen policy is honored (block vs shed), nothing is dropped silently
(every admission outcome is counted) and a stalled consumer is detected.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.service import IngestionQueue, QueueClosed


class TestAdmission:
    def test_validation(self):
        with pytest.raises(ValueError):
            IngestionQueue(capacity=0)
        with pytest.raises(ValueError):
            IngestionQueue(policy="drop-oldest")
        with pytest.raises(ValueError):
            IngestionQueue(block_timeout=0.0)
        with pytest.raises(ValueError):
            IngestionQueue(slow_consumer_after=0.0)

    def test_depth_never_exceeds_capacity(self):
        queue = IngestionQueue(capacity=8, policy="shed")
        for item in range(50):
            queue.put(item)
        metrics = queue.metrics()
        assert metrics["depth"] == 8
        assert metrics["high_water"] == 8
        assert metrics["accepted"] == 8
        assert metrics["shed"] == 42

    def test_shed_policy_rejects_immediately_and_counts(self):
        queue = IngestionQueue(capacity=2, policy="shed")
        assert queue.put("a") and queue.put("b")
        started = time.monotonic()
        assert queue.put("c") is False
        assert time.monotonic() - started < 0.1
        metrics = queue.metrics()
        assert metrics["offered"] == metrics["accepted"] + metrics["shed"]

    def test_block_policy_waits_for_room(self):
        queue = IngestionQueue(capacity=1, policy="block")
        queue.put("a")
        admitted = []

        def producer():
            admitted.append(queue.put("b"))

        thread = threading.Thread(target=producer)
        thread.start()
        time.sleep(0.1)
        assert not admitted, "producer should be blocked on a full queue"
        assert queue.get_batch(1) == ["a"]
        thread.join(timeout=2.0)
        assert admitted == [True]
        assert queue.metrics()["blocked_waits"] == 1
        assert queue.metrics()["blocked_seconds"] > 0.0

    def test_block_timeout_degrades_to_counted_shed(self):
        queue = IngestionQueue(capacity=1, policy="block",
                               block_timeout=0.05)
        queue.put("a")
        started = time.monotonic()
        assert queue.put("b") is False
        elapsed = time.monotonic() - started
        assert 0.04 <= elapsed < 1.0
        assert queue.metrics()["shed"] == 1

    def test_many_blocking_producers_stay_bounded(self):
        queue = IngestionQueue(capacity=4, policy="block")
        produced = 64
        threads = [threading.Thread(target=queue.put, args=(i,))
                   for i in range(produced)]
        for thread in threads:
            thread.start()
        collected = []
        while len(collected) < produced:
            collected.extend(queue.get_batch(8, timeout=0.5))
        for thread in threads:
            thread.join(timeout=2.0)
        metrics = queue.metrics()
        assert sorted(collected) == list(range(produced))
        assert metrics["accepted"] == produced
        assert metrics["shed"] == 0
        assert metrics["high_water"] <= queue.capacity


class TestConsumer:
    def test_get_batch_caps_and_preserves_order(self):
        queue = IngestionQueue(capacity=16)
        for item in range(10):
            queue.put(item)
        assert queue.get_batch(4) == [0, 1, 2, 3]
        assert queue.get_batch(100) == [4, 5, 6, 7, 8, 9]

    def test_get_batch_times_out_empty(self):
        queue = IngestionQueue(capacity=4)
        started = time.monotonic()
        assert queue.get_batch(4, timeout=0.05) == []
        assert time.monotonic() - started >= 0.04

    def test_get_batch_validates(self):
        with pytest.raises(ValueError):
            IngestionQueue().get_batch(0)


class TestLifecycle:
    def test_put_after_close_raises(self):
        queue = IngestionQueue(capacity=4)
        queue.put("a")
        queue.close()
        with pytest.raises(QueueClosed):
            queue.put("b")
        # Queued work survives the close for the pump to drain.
        assert queue.get_batch(4) == ["a"]

    def test_close_wakes_blocked_producer(self):
        queue = IngestionQueue(capacity=1, policy="block")
        queue.put("a")
        outcome = []

        def producer():
            try:
                queue.put("b")
                outcome.append("admitted")
            except QueueClosed:
                outcome.append("closed")

        thread = threading.Thread(target=producer)
        thread.start()
        time.sleep(0.1)
        queue.close()
        thread.join(timeout=2.0)
        assert outcome == ["closed"]


class TestSlowConsumer:
    def test_full_spell_past_threshold_flags_slow_consumer(self):
        queue = IngestionQueue(capacity=2, policy="shed",
                               slow_consumer_after=0.05)
        queue.put("a")
        queue.put("b")
        time.sleep(0.1)
        live = queue.metrics()
        assert live["slow_consumer"] is True
        assert live["longest_stall_seconds"] >= 0.05
        queue.get_batch(2)
        drained = queue.metrics()
        assert drained["consumer_stalls"] == 1
        assert drained["slow_consumer"] is False

    def test_fast_consumer_never_flags(self):
        queue = IngestionQueue(capacity=4, slow_consumer_after=5.0)
        for item in range(4):
            queue.put(item)
        queue.get_batch(4)
        metrics = queue.metrics()
        assert metrics["consumer_stalls"] == 0
        assert metrics["slow_consumer"] is False
