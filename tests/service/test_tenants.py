"""Tenant scoping, quotas and the restart manifest."""

from __future__ import annotations

import pytest

from repro.service import (QuotaExceeded, TenantQuota, TenantRegistry,
                           UnknownQuery)
from repro.service.tenants import scoped_name, split_scoped


class TestScoping:
    def test_scoped_name_roundtrip(self):
        assert scoped_name("acme", "burst") == "acme/burst"
        assert split_scoped("acme/burst") == ("acme", "burst")
        # Query names may themselves contain the separator.
        assert split_scoped("acme/team/burst") == ("acme", "team/burst")

    def test_invalid_names_rejected(self):
        registry = TenantRegistry()
        with pytest.raises(ValueError):
            registry.register("", "q", "text")
        with pytest.raises(ValueError):
            registry.register("a/b", "q", "text")
        with pytest.raises(ValueError):
            registry.register("acme", "", "text")


class TestQuotas:
    def test_default_quota_enforced(self):
        registry = TenantRegistry(default_quota=TenantQuota(max_queries=2))
        registry.register("acme", "q1", "text")
        registry.register("acme", "q2", "text")
        with pytest.raises(QuotaExceeded):
            registry.register("acme", "q3", "text")
        # Quotas are per tenant: another tenant is unaffected.
        registry.register("beta", "q1", "text")

    def test_per_tenant_override(self):
        registry = TenantRegistry(default_quota=TenantQuota(max_queries=1))
        registry.set_quota("acme", TenantQuota(max_queries=3))
        for name in ("q1", "q2", "q3"):
            registry.register("acme", name, "text")
        registry.register("beta", "q1", "text")
        with pytest.raises(QuotaExceeded):
            registry.register("beta", "q2", "text")

    def test_name_collision_rejected(self):
        registry = TenantRegistry()
        registry.register("acme", "q1", "text")
        with pytest.raises(ValueError):
            registry.register("acme", "q1", "other")

    def test_remove_frees_quota(self):
        registry = TenantRegistry(default_quota=TenantQuota(max_queries=1))
        registry.register("acme", "q1", "text")
        registry.remove("acme", "q1")
        registry.register("acme", "q2", "text")
        with pytest.raises(UnknownQuery):
            registry.remove("acme", "q1")

    def test_quota_validation(self):
        with pytest.raises(ValueError):
            TenantQuota(max_queries=0)


class TestManifest:
    def test_roundtrip_preserves_registration_order(self, tmp_path):
        registry = TenantRegistry()
        order = [("b", "q2"), ("a", "q1"), ("b", "q1"), ("c", "q9")]
        for tenant, name in order:
            registry.register(tenant, name, f"query {tenant}/{name}")
        path = tmp_path / "manifest.json"
        registry.save_manifest(path)
        restored = TenantRegistry.load_manifest(path)
        assert [(e.tenant, e.name) for e in restored.entries()] == order
        assert [e.query for e in restored.entries()] == [
            f"query {tenant}/{name}" for tenant, name in order]
        assert restored.tenants() == ["b", "a", "c"]

    def test_shrunk_quota_does_not_drop_live_queries(self, tmp_path):
        registry = TenantRegistry(default_quota=TenantQuota(max_queries=4))
        for name in ("q1", "q2", "q3"):
            registry.register("acme", name, "text")
        path = tmp_path / "manifest.json"
        registry.save_manifest(path)
        restored = TenantRegistry.load_manifest(
            path, default_quota=TenantQuota(max_queries=1))
        assert len(restored.queries("acme")) == 3

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text('{"version": 99, "queries": []}')
        with pytest.raises(ValueError):
            TenantRegistry.load_manifest(path)
