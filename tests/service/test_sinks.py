"""Alert delivery: keys, the delivery ledger, retrying dispatch, dead letters."""

from __future__ import annotations

import json
import time

import pytest

from repro.core.engine.alerts import Alert
from repro.core.retry import BackoffPolicy, RetryPolicy
from repro.core.snapshot.codecs import decode_alert, encode_alert
from repro.service import (CallbackDeliverySink, DeliveryLedger, FileSink,
                           SinkDispatcher, WebhookSink, alert_key,
                           read_alert_file)
from repro.testing import FailingSink, FlakySinkTransport

#: Fast retries for tests: 3 attempts, millisecond backoff.
FAST_RETRY = RetryPolicy(max_attempts=3,
                         backoff=BackoffPolicy(initial=0.001, maximum=0.002,
                                               jitter=0.0))


def make_alert(index: int, query: str = "q") -> Alert:
    return Alert(query_name=query, timestamp=float(index),
                 data=(("value", index),), group_key=f"g{index % 2}",
                 window_start=float(index), window_end=float(index + 10),
                 agentid="h1")


class TestAlertKey:
    def test_stable_across_snapshot_roundtrip(self):
        alert = make_alert(3)
        restored = decode_alert(encode_alert(alert))
        assert alert_key(alert) == alert_key(restored)

    def test_distinct_alerts_distinct_keys(self):
        keys = {alert_key(make_alert(i)) for i in range(50)}
        assert len(keys) == 50


class TestDeliveryLedger:
    def test_in_memory_dedupes(self):
        ledger = DeliveryLedger()
        assert not ledger.delivered("s", "k")
        ledger.record("s", "k")
        assert ledger.delivered("s", "k")
        assert not ledger.delivered("other", "k")
        assert len(ledger) == 1

    def test_persists_across_reopen(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        first = DeliveryLedger(path)
        first.record("s", "k1")
        first.record("s", "k2")
        first.close()
        second = DeliveryLedger(path)
        assert second.delivered("s", "k1")
        assert second.delivered("s", "k2")
        second.record("s", "k2")  # idempotent: no duplicate line
        second.close()
        assert len(path.read_text().strip().splitlines()) == 2

    def test_torn_tail_line_is_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = DeliveryLedger(path)
        ledger.record("s", "k1")
        ledger.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"sink": "s", "key": "k2')  # torn write
        reopened = DeliveryLedger(path)
        assert reopened.delivered("s", "k1")
        assert not reopened.delivered("s", "k2")
        reopened.close()


class TestFileSink:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        sink = FileSink(path)
        alerts = [make_alert(i) for i in range(3)]
        for alert in alerts:
            sink.emit(alert)
        sink.close()
        assert read_alert_file(path) == [encode_alert(a) for a in alerts]

    def test_name_is_path_scoped(self, tmp_path):
        assert str(tmp_path) in FileSink(tmp_path / "a.jsonl").name


class TestWebhookSink:
    def test_flaky_transport_retries_then_delivers(self):
        transport = FlakySinkTransport(fail_first=2)
        sink = WebhookSink("http://example.test/hook", transport=transport)
        dispatcher = SinkDispatcher([sink], retry=FAST_RETRY)
        dispatcher.start()
        dispatcher.submit(make_alert(1))
        assert dispatcher.flush(timeout=5.0)
        dispatcher.stop()
        metrics = dispatcher.metrics()
        assert metrics["delivered"] == 1
        assert metrics["retries"] == 2
        assert metrics["dead_lettered"] == 0
        assert transport.delivered == [encode_alert(make_alert(1))]

    def test_exhausted_retries_dead_letter(self, tmp_path):
        transport = FlakySinkTransport(fail_first=10)  # > retry budget
        sink = WebhookSink("http://example.test/hook", transport=transport)
        ledger = DeliveryLedger()
        dispatcher = SinkDispatcher([sink], ledger=ledger, retry=FAST_RETRY,
                                    dead_letter_path=tmp_path / "dead.jsonl")
        dispatcher.start()
        dispatcher.submit(make_alert(1))
        assert dispatcher.flush(timeout=5.0)
        dispatcher.stop()
        metrics = dispatcher.metrics()
        assert metrics["delivered"] == 0
        assert metrics["dead_lettered"] == 1
        # Dead letters are NOT marked delivered: a later resume retries.
        assert len(ledger) == 0
        entries = [json.loads(line) for line in
                   (tmp_path / "dead.jsonl").read_text().splitlines()]
        assert entries[0]["sink"] == sink.name
        assert entries[0]["alert"] == encode_alert(make_alert(1))


class TestDispatcher:
    def test_serial_delivery_preserves_order(self):
        received = []
        dispatcher = SinkDispatcher(
            [CallbackDeliverySink(received.append)], retry=FAST_RETRY)
        dispatcher.start()
        alerts = [make_alert(i) for i in range(20)]
        for alert in alerts:
            dispatcher.submit(alert)
        assert dispatcher.flush(timeout=5.0)
        dispatcher.stop()
        assert received == alerts

    def test_ledger_skips_duplicates_on_resubmit(self):
        received = []
        ledger = DeliveryLedger()
        dispatcher = SinkDispatcher(
            [CallbackDeliverySink(received.append)], ledger=ledger,
            retry=FAST_RETRY)
        dispatcher.start()
        alerts = [make_alert(i) for i in range(5)]
        for alert in alerts:
            dispatcher.submit(alert)
        dispatcher.flush(timeout=5.0)
        assert dispatcher.resubmit(alerts) == 5  # a resume-style replay
        dispatcher.flush(timeout=5.0)
        dispatcher.stop()
        assert received == alerts  # no re-delivery
        assert dispatcher.metrics()["duplicates_skipped"] == 5

    def test_one_dead_sink_does_not_block_the_other(self, tmp_path):
        received = []
        dispatcher = SinkDispatcher(
            [FailingSink(), CallbackDeliverySink(received.append)],
            retry=FAST_RETRY, dead_letter_path=tmp_path / "dead.jsonl")
        dispatcher.start()
        alerts = [make_alert(i) for i in range(4)]
        for alert in alerts:
            dispatcher.submit(alert)
        assert dispatcher.flush(timeout=5.0)
        dispatcher.stop()
        assert received == alerts
        metrics = dispatcher.metrics()
        assert metrics["delivered"] == 4  # the healthy sink's deliveries
        assert metrics["dead_lettered"] == 4

    def test_lag_reflects_backlog(self):
        blocker = lambda alert: time.sleep(0.2)
        dispatcher = SinkDispatcher([CallbackDeliverySink(blocker)],
                                    retry=FAST_RETRY)
        dispatcher.start()
        for index in range(3):
            dispatcher.submit(make_alert(index))
        time.sleep(0.05)
        lagging = dispatcher.metrics()
        assert lagging["lag"] >= 1
        assert lagging["oldest_pending_seconds"] >= 0.0
        assert dispatcher.flush(timeout=10.0)
        dispatcher.stop()
        assert dispatcher.metrics()["lag"] == 0

    def test_retry_cadence_deterministic_per_alert(self):
        policy = RetryPolicy(max_attempts=4)
        key = alert_key(make_alert(1))
        seed = int(key[:8], 16)
        assert (list(policy.delays(seed=seed))
                == list(policy.delays(seed=seed)))
