"""The shared retry/backoff module (hoisted from the supervision module).

The jitter contract under test: deterministic under a seeded RNG, the
ramp stays within the policy's cap (jitter included), deadline-capped
intervals never overshoot, and the supervision re-exports keep old
import paths working.
"""

from __future__ import annotations

import time

import pytest

from repro.core.retry import DEFAULT_BACKOFF, Backoff, BackoffPolicy, RetryPolicy


class TestBackoffPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(initial=0.0)
        with pytest.raises(ValueError):
            BackoffPolicy(initial=0.5, maximum=0.1)
        with pytest.raises(ValueError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.0)

    def test_seeded_jitter_is_deterministic(self):
        policy = BackoffPolicy(initial=0.01, maximum=1.0, jitter=0.25)
        first = [policy.waiter(seed=42).interval() for _ in range(1)]
        runs = [[policy.waiter(seed=42).interval() for _ in range(1)][0]
                for _ in range(3)]
        assert all(value == first[0] for value in runs)
        sequence_a = _intervals(policy.waiter(seed=7), 8)
        sequence_b = _intervals(policy.waiter(seed=7), 8)
        assert sequence_a == sequence_b

    def test_different_seeds_dephase(self):
        policy = BackoffPolicy(initial=0.01, maximum=1.0, jitter=0.25)
        assert (_intervals(policy.waiter(seed=1), 6)
                != _intervals(policy.waiter(seed=2), 6))

    def test_cap_respected_with_jitter(self):
        policy = BackoffPolicy(initial=0.001, maximum=0.05, factor=3.0,
                               jitter=0.25)
        for seed in range(20):
            for quantum in _intervals(policy.waiter(seed=seed), 12):
                assert quantum <= policy.maximum * (1.0 + policy.jitter)
                assert quantum > 0.0

    def test_ramp_grows_toward_cap(self):
        policy = BackoffPolicy(initial=0.001, maximum=0.064, factor=2.0,
                               jitter=0.0)
        quanta = _intervals(policy.waiter(seed=0), 10)
        assert quanta[:7] == pytest.approx(
            [0.001 * 2 ** i for i in range(7)])
        assert all(q == pytest.approx(policy.maximum) for q in quanta[7:])


class TestBackoffDeadline:
    def test_deadline_monotonic_and_capped(self):
        policy = BackoffPolicy(initial=0.01, maximum=0.5, jitter=0.25)
        waiter = policy.waiter(deadline=0.2, seed=3)
        while not waiter.expired:
            remaining = waiter.remaining()
            quantum = waiter.interval()
            # Never sleep past the deadline (modulo the positive floor).
            assert quantum <= max(remaining, 1e-4) + 1e-9
            time.sleep(quantum)
        assert waiter.remaining() <= 0.0
        assert not waiter.wait()

    def test_no_deadline_never_expires(self):
        waiter = DEFAULT_BACKOFF.waiter()
        assert waiter.remaining() is None
        assert not waiter.expired

    def test_reset_restarts_ramp_and_clock(self):
        policy = BackoffPolicy(initial=0.001, maximum=1.0, factor=8.0,
                               jitter=0.0)
        waiter = policy.waiter(deadline=60.0, seed=0)
        ramped = [waiter.interval() for _ in range(4)]
        assert ramped[-1] > ramped[0]
        waiter.reset()
        assert waiter.interval() == pytest.approx(policy.initial)
        assert waiter.elapsed < 1.0


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)

    def test_delays_count_and_determinism(self):
        policy = RetryPolicy(max_attempts=5)
        delays = list(policy.delays(seed=9))
        assert len(delays) == policy.max_attempts - 1
        assert delays == list(policy.delays(seed=9))
        assert delays != list(policy.delays(seed=10))

    def test_single_attempt_yields_no_delays(self):
        assert list(RetryPolicy(max_attempts=1).delays()) == []

    def test_delays_respect_backoff_cap(self):
        policy = RetryPolicy(
            max_attempts=12,
            backoff=BackoffPolicy(initial=0.001, maximum=0.01, jitter=0.2))
        for delay in policy.delays(seed=5):
            assert delay <= 0.01 * 1.2


def test_supervision_reexports_are_the_same_objects():
    from repro.core.parallel import supervision

    assert supervision.BackoffPolicy is BackoffPolicy
    assert supervision.Backoff is Backoff
    assert supervision.DEFAULT_BACKOFF is DEFAULT_BACKOFF
    # The policy type embedded in SupervisionPolicy is the shared one.
    assert isinstance(supervision.SupervisionPolicy().backoff, BackoffPolicy)


def _intervals(waiter: Backoff, count: int):
    return [waiter.interval() for _ in range(count)]
