"""Bounded soak: a long stream through ``saql serve`` with small
segment/rebase thresholds, asserting the two curves PR 9 flattened.

The always-on service's durability cost must track *working state*, not
stream length: resident memory plateaus once the engines' windows are
warm, and in diff mode the per-checkpoint bytes plateau at the delta
size instead of growing with the alert ledger and state history.  The
stream length scales with ``SAQL_BENCH_SCALE`` so CI can run a shorter
soak than a local full-scale one.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.engine.alerts import CollectingSink
from repro.core.scheduler.concurrent import ConcurrentQueryScheduler
from repro.core.snapshot.codecs import encode_alert
from repro.events.entities import NetworkEntity, ProcessEntity
from repro.events.event import Event, Operation
from repro.events.serialization import event_to_dict
from repro.service import ServiceClient, read_alert_file
from tests.integration.test_service_smoke import (finish, spawn_serve,
                                                  wait_serving)

SOAK_QUERY = """
proc p send ip i as evt #time(50)
state ss { t := sum(evt.amount), n := count(evt.amount) }
group by evt.agentid
alert ss.t > 100
return ss.t, ss.n"""

HOSTS = ["h1", "h2", "h3", "h4"]


def _scale() -> float:
    return float(os.environ.get("SAQL_BENCH_SCALE", "1.0"))


def make_stream(count):
    return [Event(subject=ProcessEntity.make("x.exe", pid=2,
                                             host=HOSTS[i % len(HOSTS)]),
                  operation=Operation.SEND,
                  obj=NetworkEntity.make("10.0.0.1", "10.0.0.2",
                                         dstport=443),
                  timestamp=float(i), agentid=HOSTS[i % len(HOSTS)],
                  amount=10.0, event_id=i + 1)
            for i in range(count)]


def rss_kilobytes(pid):
    with open(f"/proc/{pid}/status", "r", encoding="utf-8") as handle:
        for line in handle:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    raise AssertionError("no VmRSS in /proc status")


def settle_ingested(client, ingested, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        stats = client.check("stats")["stats"]
        if (stats["scheduler"]["events_ingested"] == ingested
                and stats["queue"]["depth"] == 0
                and stats["sinks"]["lag"] == 0):
            return stats
        time.sleep(0.05)
    raise AssertionError("service did not settle in time")


@pytest.mark.skipif(not Path("/proc").exists(),
                    reason="needs /proc for RSS sampling")
class TestStorageSoak:
    def test_rss_and_checkpoint_bytes_plateau(self, tmp_path):
        count = max(900, int(3000 * _scale()))
        events = make_stream(count)
        wire = [event_to_dict(event) for event in events]
        query_file = tmp_path / "soak.saql"
        query_file.write_text(SOAK_QUERY)

        proc = spawn_serve(
            tmp_path,
            "--query", f"acme/soak={query_file}",
            "--checkpoint-mode", "diff",
            "--checkpoint-rebase", "6",
        )
        rss_samples = []
        try:
            host, port = wait_serving(proc)
            thirds = [count // 3, 2 * count // 3, count]
            sent = 0
            with ServiceClient(host, port, timeout=30.0) as client:
                for edge in thirds:
                    client.ingest_many(wire[sent:edge], batch_size=64)
                    sent = edge
                    settle_ingested(client, sent)
                    rss_samples.append(rss_kilobytes(proc.pid))
                client.check("drain", finish_stream=True)
            code, output = finish(proc)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert code == 0, output

        # RSS plateau: the last third must not keep climbing the way the
        # first third did while the process warmed up.  Bounded state
        # means growth between the 2/3 and 3/3 samples is noise, not a
        # stream-length trend (generous slack for allocator jitter).
        warm, later, last = rss_samples
        assert last - later <= max(20 * 1024, (later - warm) + 8 * 1024), (
            f"RSS still climbing through the soak: {rss_samples} kB")

        # Checkpoint-bytes plateau: the surviving chains must be mostly
        # deltas, and the median delta must be far smaller than a full
        # dump — per-checkpoint cost has detached from history length.
        checkpoint_dir = tmp_path / "state" / "checkpoints"
        kinds = {"full": [], "delta": []}
        for path in sorted(checkpoint_dir.glob("checkpoint-*.json")):
            payload = json.loads(path.read_text())
            kinds[payload.get("kind", "full")].append(
                path.stat().st_size)
        assert kinds["delta"], "diff mode never wrote a delta"
        median_delta = sorted(kinds["delta"])[len(kinds["delta"]) // 2]
        assert kinds["full"], "diff mode never wrote a base"
        assert median_delta < min(kinds["full"]) / 3, (
            f"deltas ({kinds['delta']}) are not materially smaller than "
            f"full dumps ({kinds['full']})")

        # And the soak changed no answers: the delivered alert file
        # matches the fault-free batch oracle exactly.
        sink = CollectingSink()
        scheduler = ConcurrentQueryScheduler(sink=sink)
        scheduler.add_query(SOAK_QUERY, name="acme/soak")
        scheduler.process_events(events)
        scheduler.finish()
        reference = [encode_alert(alert) for alert in sink]
        assert reference, "soak stream must actually alert"
        delivered = read_alert_file(tmp_path / "alerts.jsonl")
        assert delivered == reference
