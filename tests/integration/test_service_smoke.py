"""End-to-end smoke test for ``saql serve``: the CI robustness scenario.

Spawns the real CLI as a subprocess, feeds it events over the TCP
transport, SIGTERMs it mid-stream, restarts it with ``--resume``,
re-sends the whole stream (the resume cursor must drop the duplicates)
and asserts the delivered alert file is exactly the fault-free batch
oracle — duplicate-free, nothing lost across the restart.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.core.engine.alerts import CollectingSink
from repro.core.scheduler.concurrent import ConcurrentQueryScheduler
from repro.core.snapshot.codecs import encode_alert
from repro.events.entities import NetworkEntity, ProcessEntity
from repro.events.event import Event, Operation
from repro.events.serialization import event_to_dict
from repro.obs import parse_prometheus
from repro.service import ServiceClient, read_alert_file

SUM_QUERY = """
proc p send ip i as evt #time(10)
state ss { t := sum(evt.amount) } group by evt.agentid
alert ss.t > 100
return ss.t"""

STREAM_LEN = 120
CUTOVER = 70  # events delivered before the mid-stream SIGTERM

SERVING = re.compile(r"serving on ([\d.]+):(\d+)")


def make_stream(count):
    return [Event(subject=ProcessEntity.make("x.exe", pid=2,
                                             host=("h1", "h2")[i % 2]),
                  operation=Operation.SEND,
                  obj=NetworkEntity.make("10.0.0.1", "10.0.0.2", dstport=443),
                  timestamp=float(i), agentid=("h1", "h2")[i % 2],
                  amount=50.0, event_id=i + 1)
            for i in range(count)]


def batch_reference(events):
    sink = CollectingSink()
    scheduler = ConcurrentQueryScheduler(sink=sink)
    scheduler.add_query(SUM_QUERY, name="acme/sum")
    scheduler.process_events(events)
    scheduler.finish()
    return [encode_alert(alert) for alert in sink]


def spawn_serve(tmp_path, *extra):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    args = [sys.executable, "-m", "repro.ui.cli", "serve",
            "--state-dir", str(tmp_path / "state"),
            "--port", "0",
            "--sink-file", str(tmp_path / "alerts.jsonl"),
            "--batch-size", "8",
            "--checkpoint-interval", "10",
            *extra]
    return subprocess.Popen(args, env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)


def wait_serving(proc):
    """Read serve's stdout until the readiness line; return (host, port)."""
    deadline = time.monotonic() + 30.0
    lines = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        lines.append(line)
        match = SERVING.search(line)
        if match:
            return match.group(1), int(match.group(2))
    raise AssertionError(f"serve never became ready; output: {lines!r}")


def settle(client, ingested, timeout=15.0):
    """Poll stats until the scheduler and sinks have caught up."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        stats = client.check("stats")["stats"]
        if (stats["scheduler"]["events_ingested"] == ingested
                and stats["queue"]["depth"] == 0
                and stats["sinks"]["lag"] == 0):
            return stats
        time.sleep(0.05)
    raise AssertionError("service did not settle in time")


def scrape_metrics_midrun(client):
    """Hit the ``metrics`` op while the service is live and assert the
    key series the dashboards depend on are present and non-zero."""
    response = client.check("metrics")
    assert response["content_type"].startswith("text/plain")
    parsed = parse_prometheus(response["body"])
    assert parsed["types"]["saql_stage_seconds"] == "histogram"
    stages = {labels["stage"] for labels, _ in
              parsed["samples"]["saql_stage_seconds_count"]}
    # batch-size 8 sits below the columnar threshold, so these runs take
    # the closure path: no columnar_pivot/predicate_eval stages here.
    assert {"pattern_match", "pump_batch", "window_close",
            "checkpoint_write"} <= stages
    # End-to-end alert latency: both milestones observed by now (alerts
    # have been emitted and acked by the file sink).
    e2e = {labels["point"]: value for labels, value in
           parsed["samples"]["saql_alert_e2e_seconds_count"]}
    assert e2e["emit"] > 0
    assert e2e["sink_ack"] > 0
    events = {(): 0}
    for labels, value in parsed["samples"]["saql_events_total"]:
        events[tuple(sorted(labels.items()))] = value
    assert events[()] > 0


def finish(proc, timeout=30.0):
    """Collect remaining output and the exit code."""
    try:
        output, _ = proc.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise
    return proc.returncode, output


class TestServeSmoke:
    def test_sigterm_midstream_then_resume_is_exactly_once(self, tmp_path):
        query_file = tmp_path / "sum.saql"
        query_file.write_text(SUM_QUERY)
        events = make_stream(STREAM_LEN)
        wire = [event_to_dict(event) for event in events]
        reference = batch_reference(events)
        assert len(reference) >= 3, "stream must actually alert"

        # Run 1: register via --query, ingest the first part of the
        # stream, then SIGTERM mid-stream.
        first = spawn_serve(tmp_path, "--query", f"acme/sum={query_file}")
        try:
            host, port = wait_serving(first)
            with ServiceClient(host, port, timeout=10.0) as client:
                counts = client.ingest_many(wire[:CUTOVER], batch_size=16)
                assert counts["accepted"] == CUTOVER
                settle(client, CUTOVER)
            first.send_signal(signal.SIGTERM)
            code, output = finish(first)
        finally:
            if first.poll() is None:
                first.kill()
        assert code == 0, output
        assert "drained" in output
        assert "resume with:" in output

        # Run 2: resume from the manifest + checkpoint (no --query flags
        # needed), re-send the WHOLE stream, drain finishing the stream.
        second = spawn_serve(tmp_path, "--resume")
        try:
            host, port = wait_serving(second)
            with ServiceClient(host, port, timeout=10.0) as client:
                counts = client.ingest_many(wire, batch_size=16)
                assert counts["duplicate"] == CUTOVER
                assert counts["accepted"] == STREAM_LEN - CUTOVER
                # The restored checkpoint carries the first run's stats,
                # so the counter continues from CUTOVER.
                settle(client, STREAM_LEN)
                scrape_metrics_midrun(client)
                client.check("drain", finish_stream=True)
            code, output = finish(second)
        finally:
            if second.poll() is None:
                second.kill()
        assert code == 0, output

        # Exactly-once parity: the delivered file equals the fault-free
        # batch oracle — in order, nothing duplicated, nothing lost.
        delivered = read_alert_file(tmp_path / "alerts.jsonl")
        assert delivered == reference
        serialized = [json.dumps(entry, sort_keys=True)
                      for entry in delivered]
        assert len(serialized) == len(set(serialized))
