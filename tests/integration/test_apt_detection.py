"""Integration test: the full demonstration scenario (Section III).

The 8 demo queries run concurrently over one hour of simulated enterprise
background with the 5-step APT attack injected.  Every attack step must be
detected by its rule query, the three advanced anomaly queries must flag
the malicious behaviour, and the benign background must not drown the
result in false positives.
"""

import pytest

from repro.core import ConcurrentQueryScheduler, QueryEngine
from repro.queries import DEMO_QUERIES, demo_query_names
from repro.storage import EventDatabase, ReplaySpec, StreamReplayer


@pytest.fixture(scope="module")
def detection_run(request):
    """Run all 8 queries once over the shared demo stream."""
    demo_stream = request.getfixturevalue("demo_stream")
    scheduler = ConcurrentQueryScheduler()
    for name in demo_query_names():
        scheduler.add_query(DEMO_QUERIES[name], name=name)
    alerts = scheduler.execute(demo_stream)
    return scheduler, alerts


class TestEndToEndDetection:
    def test_every_query_fires_at_least_once(self, detection_run):
        _, alerts = detection_run
        fired = {alert.query_name for alert in alerts}
        assert fired == set(demo_query_names())

    def test_no_runtime_errors(self, detection_run):
        scheduler, _ = detection_run
        assert not scheduler.error_reporter.has_errors()

    def test_rule_queries_fire_exactly_once(self, detection_run):
        _, alerts = detection_run
        for name in demo_query_names():
            if name.startswith("rule-"):
                count = sum(1 for alert in alerts if alert.query_name == name)
                assert count == 1, f"{name} fired {count} times"

    def test_alert_volume_is_small(self, detection_run):
        _, alerts = detection_run
        assert len(alerts) <= 15

    def test_detection_order_follows_attack_steps(self, detection_run):
        _, alerts = detection_run
        rule_alerts = {alert.query_name: alert.timestamp
                       for alert in alerts
                       if alert.query_name.startswith("rule-")}
        ordered = [rule_alerts[f"rule-c{step}-" + suffix]
                   for step, suffix in ((1, "initial-compromise"),
                                        (2, "malware-infection"),
                                        (3, "privilege-escalation"),
                                        (4, "penetration"),
                                        (5, "data-exfiltration"))]
        assert ordered == sorted(ordered)

    def test_exfiltration_alert_names_the_attacker(self, detection_run):
        _, alerts = detection_run
        exfil = [alert for alert in alerts
                 if alert.query_name == "rule-c5-data-exfiltration"][0]
        assert exfil.record["i1"] == "203.0.113.129"

    def test_outlier_alert_names_the_attacker(self, detection_run):
        _, alerts = detection_run
        outlier = [alert for alert in alerts
                   if alert.query_name == "outlier-exfiltration"][0]
        assert outlier.record["i.dstip"] == "203.0.113.129"

    def test_invariant_alert_reports_new_child(self, detection_run):
        _, alerts = detection_run
        invariant = [alert for alert in alerts
                     if alert.query_name == "invariant-excel-children"][0]
        assert "cmd.exe" in invariant.record["ss.set_proc"]

    def test_timeseries_alert_flags_the_malware(self, detection_run):
        _, alerts = detection_run
        spike = [alert for alert in alerts
                 if alert.query_name == "timeseries-network-spike"][0]
        assert spike.record["p"] == "sbblv.exe"

    def test_scheduler_groups_fewer_than_queries(self, detection_run):
        scheduler, _ = detection_run
        assert scheduler.stats.groups < scheduler.stats.queries

    def test_benign_stream_produces_no_alerts(self, small_enterprise):
        benign = small_enterprise.event_feed(0.0, 1800.0)
        scheduler = ConcurrentQueryScheduler()
        for name in demo_query_names():
            if name.startswith("rule-"):
                scheduler.add_query(DEMO_QUERIES[name], name=name)
        assert scheduler.execute(benign) == []


class TestStoreAndReplay:
    def test_replayed_slice_reproduces_detection(self, demo_stream, tmp_path):
        database = EventDatabase(demo_stream)
        path = tmp_path / "captured.jsonl"
        database.save(path)
        reloaded = EventDatabase.load(path)

        replayer = StreamReplayer(reloaded,
                                  ReplaySpec(hosts=["db-server"]))
        engine = QueryEngine(DEMO_QUERIES["rule-c5-data-exfiltration"],
                             name="exfil")
        alerts = engine.execute(replayer)
        assert len(alerts) == 1
        assert alerts[0].record["p4"] == "sbblv.exe"
