"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.attack import APTScenario
from repro.collection import Enterprise, EnterpriseConfig
from repro.events.entities import FileEntity, NetworkEntity, ProcessEntity
from repro.events.event import Event, Operation
from repro.events.stream import ListStream

DB_HOST = "db-server"
CLIENT_HOST = "client-01"


def make_process(exe_name: str, pid: int = 100,
                 host: str = DB_HOST) -> ProcessEntity:
    """Create a process entity for tests."""
    return ProcessEntity.make(exe_name, pid, host=host)


def make_file(name: str, host: str = DB_HOST) -> FileEntity:
    """Create a file entity for tests."""
    return FileEntity.make(name, host=host)


def make_connection(dstip: str, dstport: int = 443,
                    srcip: str = "10.0.1.30") -> NetworkEntity:
    """Create a network-connection entity for tests."""
    return NetworkEntity.make(srcip, dstip, srcport=50000, dstport=dstport)


def make_event(subject, operation, obj, timestamp, agentid=DB_HOST,
               amount=0.0, **attrs) -> Event:
    """Create an event for tests."""
    return Event(subject=subject, operation=operation, obj=obj,
                 timestamp=timestamp, agentid=agentid, amount=amount,
                 attrs=attrs)


@pytest.fixture
def sqlservr() -> ProcessEntity:
    return make_process("sqlservr.exe", 500)


@pytest.fixture
def network_write_events(sqlservr) -> ListStream:
    """Ten windows of sqlservr.exe writing 1000-byte chunks to one IP."""
    conn = make_connection("10.0.2.11")
    events = []
    for window in range(10):
        for k in range(5):
            events.append(make_event(
                sqlservr, Operation.WRITE, conn,
                timestamp=window * 600 + k * 60 + 1, amount=1000.0))
    return ListStream(events)


@pytest.fixture(scope="session")
def small_enterprise() -> Enterprise:
    """A small simulated enterprise shared across tests (read-only)."""
    return Enterprise(EnterpriseConfig(seed=11))


@pytest.fixture(scope="session")
def apt_scenario() -> APTScenario:
    """The default APT scenario shared across tests (read-only)."""
    return APTScenario(start_time=1800.0)


@pytest.fixture(scope="session")
def demo_stream(small_enterprise, apt_scenario) -> ListStream:
    """One hour of background plus the injected attack (session-scoped)."""
    return small_enterprise.event_feed(
        0.0, 3600.0, injected=apt_scenario.events())
