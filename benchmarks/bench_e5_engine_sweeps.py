"""E5 — engine-internals sweeps (Fig. 1 components).

Ablation benchmarks for the design choices DESIGN.md calls out:

* window length sweep for the state maintainer (shorter windows mean more
  window closings and state computations per event);
* window-state history depth (``ss[k]``) sweep;
* group-by cardinality sweep (how many peer groups the state maintainer
  tracks per window);
* multievent-matcher selectivity sweep (how much of the stream matches the
  query's patterns).
"""

import time

from benchmarks.conftest import fresh_stream, print_table
from repro.core import QueryEngine
from repro.events.entities import NetworkEntity, ProcessEntity
from repro.events.event import Event, Operation
from repro.events.stream import ListStream


def _uniform_stream(groups=20, events_per_group=200, duration=1800.0):
    events = []
    procs = [ProcessEntity.make(f"svc{index}.exe", 100 + index,
                                host="db-server")
             for index in range(groups)]
    conns = [NetworkEntity.make("10.0.1.30", f"10.0.2.{index}")
             for index in range(groups)]
    total = groups * events_per_group
    for position in range(total):
        group = position % groups
        events.append(Event(
            subject=procs[group], operation=Operation.WRITE,
            obj=conns[group], timestamp=duration * position / total,
            agentid="db-server", amount=10_000.0))
    return events


def _sma_query(window_seconds=600, history=3):
    terms = " + ".join(f"ss[{index}].value" for index in range(history))
    return (f"proc p write ip i as evt #time({window_seconds} s)\n"
            f"state[{history}] ss {{\n"
            f"  value := avg(evt.amount)\n"
            f"}} group by p\n"
            f"alert (ss[0].value > ({terms}) / {history}) && "
            f"(ss[0].value > 1000000)\n"
            f"return p, ss[0].value")


def _timed_run(query_text, events):
    engine = QueryEngine(query_text)
    started = time.perf_counter()
    engine.execute(fresh_stream(events))
    return time.perf_counter() - started


def test_e5_window_length_sweep(benchmark):
    """Execution cost versus sliding-window length."""
    events = _uniform_stream()
    rows = []
    for window_seconds in (30, 120, 600, 1800):
        elapsed = _timed_run(_sma_query(window_seconds=window_seconds),
                             events)
        rows.append((window_seconds, f"{len(events) / elapsed:,.0f}"))
    print_table("E5a: window length sweep (stateful query)",
                ("window (s)", "events/second"), rows)
    benchmark.pedantic(lambda: _timed_run(_sma_query(600), events),
                       rounds=3, iterations=1)


def test_e5_history_depth_sweep():
    """Execution cost versus window-state history depth ``ss[k]``."""
    events = _uniform_stream()
    rows = []
    for history in (1, 3, 6, 12):
        elapsed = _timed_run(_sma_query(history=history), events)
        rows.append((history, f"{len(events) / elapsed:,.0f}"))
    print_table("E5b: state history depth sweep",
                ("history (windows)", "events/second"), rows)


def test_e5_group_cardinality_sweep():
    """Execution cost versus number of per-window groups."""
    rows = []
    for groups in (5, 20, 80, 200):
        events = _uniform_stream(groups=groups, events_per_group=40)
        elapsed = _timed_run(_sma_query(), events)
        rows.append((groups, len(events), f"{len(events) / elapsed:,.0f}"))
    print_table("E5c: group-by cardinality sweep",
                ("groups", "events", "events/second"), rows)


def test_e5_matcher_selectivity_sweep():
    """Execution cost versus the fraction of events that match the query."""
    base_events = _uniform_stream(groups=10, events_per_group=300)
    rows = []
    for selective_prefix in ("svc0.exe", "svc%", "%"):
        query = (f'proc p["{selective_prefix}"] write ip i as evt '
                 f"#time(600 s)\n"
                 f"state ss {{ value := sum(evt.amount) }} group by p\n"
                 f"alert ss.value > 1000000000\nreturn p")
        engine = QueryEngine(query)
        started = time.perf_counter()
        engine.execute(fresh_stream(base_events))
        elapsed = time.perf_counter() - started
        selectivity = engine.matcher.pattern_matcher.selectivity
        rows.append((selective_prefix, f"{selectivity:.2f}",
                     f"{len(base_events) / elapsed:,.0f}"))
    print_table("E5d: multievent-matcher selectivity sweep",
                ("subject pattern", "selectivity", "events/second"), rows)
