"""E13 — shard supervision overhead and in-run crash recovery latency.

PR 7's shard supervisor keeps a sharded run alive through worker
failures: liveness probes detect dead/hung shards, a per-shard backlog
journal makes the lost batches replayable, and recovery either restarts
the shard from its last checkpoint or migrates its hosts to the
survivors through the snapshot transfer codecs — either way finishing
with the alerts of a fault-free run.  Supervision is only affordable if
the fault-free cost is small, so this experiment measures four arms over
the same multi-query, multi-host workload on the process backend:

* **unsupervised** — the plain sharded run (the PR-6 baseline);
* **supervised** — the same run with the default
  :class:`~repro.core.parallel.SupervisionPolicy`; the headline
  assertion is **<= 5% throughput overhead** (at full scale — smoke
  runs are timing noise);
* **kill -> restart** — shard 1 is SIGKILLed mid-stream (an injected
  OOM kill) with a checkpoint store configured; the supervisor restarts
  it from the last checkpoint and replays the journalled backlog.
  Recorded with the recovery latency and replay volume from the run's
  :class:`~repro.core.parallel.RecoveryRecord`, with alert-for-alert
  equality against the fault-free oracle asserted;
* **kill -> migrate** — the same kill with no checkpoint store: the
  dead shard's hosts are re-homed onto the survivors via snapshot
  transfer, again with alert parity asserted.

Rates land in ``benchmarks/BENCH_e13.json`` via the shared conftest
hook (annotated with recovery latency and events replayed, so the
trajectory keeps recovery cost visible alongside throughput).
"""

import random
import tempfile
import time

from benchmarks.conftest import (bench_scale, fresh_stream, print_table,
                                 record_rate)
from repro.core.parallel import ShardedScheduler, SupervisionPolicy
from repro.events.entities import NetworkEntity, ProcessEntity
from repro.events.event import Event, Operation
from repro.storage import CheckpointStore
from repro.testing import FaultPlan, FaultSpec

SHARDS = 3
BATCH = 256
HOSTS = [f"host-{n:02d}" for n in range(12)]

#: Stateful, shardable (and steal-safe) queries: tumbling and sliding
#: aggregation per host, so restart replay and migrate transfer both
#: move real window state.
QUERIES = [
    ("volume-tumbling", '''
proc p send ip i as evt #time(10)
state ss { t := sum(evt.amount), n := count(evt.amount) } group by evt.agentid
alert ss.t > 200000
return ss.t, ss.n'''),
    ("volume-sliding", '''
proc p send ip i as evt #time(40, 10)
state ss { t := sum(evt.amount), a := avg(evt.amount) } group by evt.agentid
alert ss.t > 800000
return ss.t, ss.a'''),
]


def fault_events(count):
    rng = random.Random(31)
    events = []
    for position in range(count):
        host = HOSTS[rng.randrange(len(HOSTS))]
        events.append(Event(
            subject=ProcessEntity.make("x.exe", pid=2, host=host),
            operation=Operation.SEND,
            obj=NetworkEntity.make("10.0.1.2", "10.0.0.9", dstport=443),
            timestamp=position * 0.01, agentid=host,
            amount=float(rng.randrange(100, 1000))))
    return events


def _build(**kwargs):
    scheduler = ShardedScheduler(shards=SHARDS, backend="process",
                                 batch_size=BATCH, **kwargs)
    for name, text in QUERIES:
        scheduler.add_query(text, name=name)
    return scheduler


def _fingerprints(alerts):
    return sorted((a.query_name, a.timestamp, a.data, repr(a.group_key),
                   a.window_start, a.window_end, a.agentid) for a in alerts)


def _timed_run(scheduler, source):
    start = time.perf_counter()
    alerts = scheduler.execute(source)
    return time.perf_counter() - start, alerts


def _paced(events, every=BATCH, delay=0.004):
    """Pace the parent's feed so the workers keep up with it.

    The fault arms need the worker to actually *reach* its kill point
    while the parent is still mid-stream (an unpaced parent can finish
    feeding the whole smoke-scale stream before the lagging worker dies,
    pushing detection into the collection phase).  The pacing cost is
    part of the measured wall-clock, so the fault-arm rates understate
    throughput slightly; the latency/replay numbers are the signal.
    """
    for position, event in enumerate(events):
        if position and position % every == 0:
            time.sleep(delay)
        yield event


def test_e13_supervision_overhead_and_recovery():
    count = int(80000 * bench_scale())
    # after_events counts the *target lane's* stream (~count / SHARDS
    # events), so this kills shard 1 about a quarter into its share —
    # early enough that the paced parent is still mid-stream when the
    # worker reaches the kill point, keeping detection in-run.
    kill_at = max(BATCH, count // (4 * SHARDS))
    interval = max(500, int(10000 * bench_scale()))
    events = fault_events(count)

    unsupervised = _build()
    unsupervised_seconds, alerts = _timed_run(unsupervised,
                                              fresh_stream(events))
    unsupervised_rate = count / unsupervised_seconds
    oracle = _fingerprints(alerts)

    supervised = _build(supervision=SupervisionPolicy())
    supervised_seconds, alerts = _timed_run(supervised,
                                            fresh_stream(events))
    supervised_rate = count / supervised_seconds
    assert supervised.recoveries == []
    assert _fingerprints(alerts) == oracle
    overhead = (unsupervised_rate - supervised_rate) / unsupervised_rate

    # Kill -> restart: a checkpoint store exists, so the supervisor
    # rebuilds the dead shard from its last snapshot and replays the
    # backlog journal.
    plan = FaultPlan([FaultSpec("kill", shard=1, after_events=kill_at)])
    with tempfile.TemporaryDirectory() as tmp:
        restart = _build(supervision=SupervisionPolicy(),
                         checkpoint_store=CheckpointStore(tmp),
                         checkpoint_interval=interval, fault_plan=plan)
        restart_seconds, alerts = _timed_run(restart, _paced(events))
        restart_rate = count / restart_seconds
        assert len(restart.recoveries) == 1
        restart_record = restart.recoveries[0]
        assert restart_record.mode == "restart"
        assert restart_record.restored_checkpoint
        assert _fingerprints(alerts) == oracle

    # Kill -> migrate: no checkpoint store, so the dead shard's hosts
    # move to the survivors through the snapshot transfer codecs.
    migrate = _build(supervision=SupervisionPolicy(), fault_plan=plan)
    migrate_seconds, alerts = _timed_run(migrate, _paced(events))
    migrate_rate = count / migrate_seconds
    assert len(migrate.recoveries) == 1
    migrate_record = migrate.recoveries[0]
    assert migrate_record.mode == "migrate"
    assert migrate_record.migrated_agentids
    assert _fingerprints(alerts) == oracle

    print_table(
        f"E13: shard supervision ({SHARDS} process shards, {count} "
        f"events, kill at {kill_at})",
        ["arm", "events/s", "notes"],
        [
            ["unsupervised", f"{unsupervised_rate:,.0f}",
             "the PR-6 baseline"],
            ["supervised", f"{supervised_rate:,.0f}",
             f"{overhead * 100:.1f}% overhead, 0 recoveries"],
            ["kill -> restart", f"{restart_rate:,.0f}",
             f"recovered in {restart_record.latency:.2f}s, "
             f"{restart_record.events_replayed} events replayed"],
            ["kill -> migrate", f"{migrate_rate:,.0f}",
             f"recovered in {migrate_record.latency:.2f}s, "
             f"{len(migrate_record.migrated_agentids)} hosts migrated"],
        ])

    record_rate("e13", "unsupervised", unsupervised_rate)
    record_rate("e13", "supervised", supervised_rate,
                overhead_percent=round(overhead * 100, 2))
    record_rate("e13", "kill_restart", restart_rate,
                recovery_latency_seconds=round(restart_record.latency, 4),
                events_replayed=restart_record.events_replayed)
    record_rate("e13", "kill_migrate", migrate_rate,
                recovery_latency_seconds=round(migrate_record.latency, 4),
                hosts_migrated=len(migrate_record.migrated_agentids))

    if bench_scale() >= 1.0:
        assert overhead <= 0.05, (
            f"supervision cost {overhead * 100:.1f}% throughput on a "
            f"fault-free run (limit 5%)")
