"""E3 — timely big-data analytics (Section I, challenge 2).

The paper motivates SAQL with the volume of system monitoring data
(~50 GB/day for 100 hosts) and the need for real-time analysis.  This
benchmark measures the engine's single-query event throughput and how it
scales with (a) the enterprise size (number of hosts) and (b) the stream
density, using the stateful SMA query — the most demanding single-query
code path (matching + windows + per-group aggregation).
"""

import time

from benchmarks.conftest import (bench_scale, fresh_stream, print_table,
                                 record_rate)
from repro.collection import Enterprise, EnterpriseConfig
from repro.core import QueryEngine
from repro.queries.demo_queries import (
    rule_c5_data_exfiltration,
    timeseries_network_spike,
)


def _events_for(extra_desktops, extra_web_servers, seed=7, duration=900.0):
    enterprise = Enterprise(EnterpriseConfig(
        seed=seed, extra_desktops=extra_desktops,
        extra_web_servers=extra_web_servers))
    return enterprise.background_events(0.0, duration * bench_scale())


def _throughput(query_text, events):
    engine = QueryEngine(query_text)
    started = time.perf_counter()
    engine.execute(fresh_stream(events))
    elapsed = time.perf_counter() - started
    return len(events) / elapsed if elapsed > 0 else float("inf")


def test_e3_throughput_vs_enterprise_size(benchmark):
    """Events/second of one stateful query as the host count grows."""
    rows = []
    sizes = [(0, 0), (4, 2), (12, 6)]
    for extra_desktops, extra_web in sizes:
        events = _events_for(extra_desktops, extra_web)
        hosts = 4 + extra_desktops + extra_web
        rate = _throughput(timeseries_network_spike(), events)
        record_rate("e3", f"stateful-sma-{hosts}-hosts", rate)
        rows.append((hosts, len(events), f"{rate:,.0f}"))
    print_table("E3a: stateful-query throughput vs enterprise size",
                ("hosts", "events (15 min)", "events/second"), rows)
    # Throughput should stay in the same order of magnitude as hosts grow
    # (the engine is per-event; more hosts means more events, not slower
    # per-event processing).
    slowest = min(float(row[2].replace(",", "")) for row in rows)
    fastest = max(float(row[2].replace(",", "")) for row in rows)
    assert fastest / slowest < 20

    baseline_events = _events_for(0, 0)
    benchmark.pedantic(
        lambda: QueryEngine(timeseries_network_spike()).execute(
            fresh_stream(baseline_events)),
        rounds=3, iterations=1)


def test_e3_rule_vs_stateful_cost(db_server_events):
    """Per-event cost of a rule query versus a stateful query."""
    rows = []
    for label, scenario, query in (
            ("rule (Query 1)", "rule-exfiltration",
             rule_c5_data_exfiltration()),
            ("stateful SMA (Query 2)", "stateful-sma-db-server",
             timeseries_network_spike())):
        rate = _throughput(query, db_server_events)
        record_rate("e3", scenario, rate)
        rows.append((label, f"{rate:,.0f}"))
    print_table("E3b: per-query-class throughput (db-server stream)",
                ("query class", "events/second"), rows)
    assert all(float(row[1].replace(",", "")) > 1000 for row in rows)
