"""E9 — incremental sliding-window aggregation.

The anomaly queries' cost is dominated by sliding-window aggregation, and
the paper's efficiency claim rests on not recomputing state from scratch.
This experiment isolates the state-maintenance ("close") phase on an
overlapping sliding window with hop = length/8 — the shape where the
buffered path stores and re-reduces every match 8 times — and compares:

* **buffered** — compiled aggregation closures over per-(window, group)
  match lists (``incremental=False``), the pre-PR-3 behaviour;
* **incremental** — streaming accumulators updated once per match, pane
  sharing (panes of ``gcd(hop, length)`` merged at close) and
  match-buffer elision (only accumulators plus one representative match
  retained per open bucket group).

Pattern matches are precomputed once and fed to both engines through
``process_matches``, so the measured rate is the window-aggregation
pipeline itself rather than pattern matching.  Alert-for-alert parity
with the ``compiled=False`` interpreter oracle is asserted on a stream
prefix at every scale.  At full scale the incremental path must deliver
>= 3x close-phase throughput and cut the peak number of retained matches
>= 5x; rates and the two peak retention counts land in
``benchmarks/BENCH_e9.json`` via the shared conftest hook.
"""

import math
import time

import pytest

from benchmarks.conftest import bench_scale, print_table, record_rate
from repro.collection import Enterprise, EnterpriseConfig
from repro.core import QueryEngine
from repro.core.engine.matching import PatternMatcher
from repro.core.language import parse_query

#: Four hours of db-server background at full scale.
STREAM_SECONDS = 14400.0

#: 8-minute windows hopping every minute: each match lands in 8 windows.
AGGREGATION_QUERY = '''
proc p write ip i as evt #time(480, 60)
state[3] ss {
  cnt := count(evt.amount)
  total := sum(evt.amount)
  mean := avg(evt.amount)
  sd := stddev(evt.amount)
  p95 := percentile(evt.amount, 95)
  peers := distinct_count(i.dstip)
}
group by p
alert ss[0].total > 0
return p, ss[0].total, ss[0].mean, ss[0].peers
'''

#: Events used for the cross-mode parity check (the interpreter oracle is
#: O(matches x windows x definitions) and would dominate the run at full
#: scale).
PARITY_PREFIX = 3000


@pytest.fixture(scope="module")
def db_stream():
    enterprise = Enterprise(EnterpriseConfig(seed=7))
    return enterprise.agent("db-server").generate_events(
        0.0, STREAM_SECONDS * bench_scale())


@pytest.fixture(scope="module")
def match_pairs(db_stream):
    """(event, matches) pairs for every *matching* event, precomputed once.

    Events without a pattern match exercise no aggregation (they only
    advance the watermark, identically in both modes), so the close-phase
    measurement feeds the matched slice — the same stream the matcher
    stage hands the state maintainer.
    """
    matcher = PatternMatcher(parse_query(AGGREGATION_QUERY), compiled=True)
    pairs = [(event, matcher.match_event(event)) for event in db_stream]
    return [(event, matches) for event, matches in pairs if matches]


#: Events per process_match_batch call (the scheduler's ingestion shape).
FEED_BATCH = 256


def _run_close_phase(pairs, **engine_kwargs):
    engine = QueryEngine(AGGREGATION_QUERY, **engine_kwargs)
    process = engine.process_match_batch
    for start in range(0, len(pairs), FEED_BATCH):
        process(pairs[start:start + FEED_BATCH])
    engine.finish()
    return engine


def _best_rate(pairs, repeats=3, **engine_kwargs):
    best, engine = 0.0, None
    for _ in range(repeats):
        started = time.perf_counter()
        outcome = _run_close_phase(pairs, **engine_kwargs)
        elapsed = time.perf_counter() - started
        rate = len(pairs) / elapsed if elapsed > 0 else float("inf")
        if rate > best:
            best, engine = rate, outcome
    return best, engine


def _rows(engine):
    return [(a.timestamp, repr(a.group_key), a.window_start, a.window_end,
             a.data) for a in engine.alerts]


def _assert_rows_equal(fast, slow):
    """Row-for-row equality; floats within tolerance (pane merging may
    associate additions differently than one long reduction)."""
    assert len(fast) == len(slow)
    for fast_row, slow_row in zip(fast, slow):
        assert fast_row[:4] == slow_row[:4]
        assert len(fast_row[4]) == len(slow_row[4])
        for (fast_label, fast_value), (slow_label, slow_value) in zip(
                fast_row[4], slow_row[4]):
            assert fast_label == slow_label
            if (isinstance(fast_value, (int, float))
                    and isinstance(slow_value, (int, float))
                    and not isinstance(fast_value, bool)
                    and not isinstance(slow_value, bool)):
                assert math.isclose(fast_value, slow_value, rel_tol=1e-9,
                                    abs_tol=1e-9)
            else:
                assert fast_value == slow_value


def test_e9_incremental_window_aggregation(benchmark, match_pairs):
    """Close-phase throughput and match retention, buffered vs incremental."""
    full_scale = bench_scale() >= 1.0

    # -- parity against the interpreter oracle on a prefix ---------------
    prefix = match_pairs[:PARITY_PREFIX]
    incremental_prefix = _run_close_phase(prefix)
    assert incremental_prefix._state_maintainer.incremental
    _assert_rows_equal(_rows(incremental_prefix),
                       _rows(_run_close_phase(prefix, incremental=False)))
    _assert_rows_equal(_rows(incremental_prefix),
                       _rows(_run_close_phase(prefix, compiled=False)))

    # -- throughput ------------------------------------------------------
    buffered_rate, buffered_engine = _best_rate(match_pairs,
                                                incremental=False)
    incremental_rate, incremental_engine = _best_rate(match_pairs)
    _assert_rows_equal(_rows(incremental_engine), _rows(buffered_engine))

    buffered_peak = buffered_engine.state_peak_buffered_matches
    incremental_peak = incremental_engine.state_peak_buffered_matches
    record_rate("e9", "close-buffered", buffered_rate)
    record_rate("e9", "close-incremental", incremental_rate)
    # Retention entries are counts (matches), not rates; see README.
    record_rate("e9", "peak-matches-buffered", float(buffered_peak))
    record_rate("e9", "peak-matches-incremental", float(incremental_peak))

    print_table(
        "E9: incremental sliding-window aggregation "
        f"({len(match_pairs)} matched events, "
        "window 480s hop 60s)",
        ("mode", "events/second", "speedup", "peak retained matches"),
        [
            ("buffered recompute", f"{buffered_rate:,.0f}", "1.00x",
             buffered_peak),
            ("incremental (panes + elision)", f"{incremental_rate:,.0f}",
             f"{incremental_rate / buffered_rate:.2f}x", incremental_peak),
        ])

    assert incremental_peak <= buffered_peak
    if full_scale:
        # The headline claims of this experiment.
        assert incremental_rate >= 3.0 * buffered_rate
        assert buffered_peak >= 5 * max(incremental_peak, 1)

    benchmark.pedantic(lambda: _run_close_phase(match_pairs),
                       rounds=1, iterations=1)


def test_e9_pane_sharing_engages(match_pairs):
    """The benchmark query actually takes the pane-sharing fast path."""
    engine = QueryEngine(AGGREGATION_QUERY)
    maintainer = engine._state_maintainer
    assert maintainer.incremental
    assert maintainer.shares_panes
    assert maintainer.pane_size == 60.0
