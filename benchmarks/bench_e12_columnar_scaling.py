"""E12 — columnar batch execution and cross-query predicate sharing.

PR 3 made a *single* query's window maintenance incremental and E8 opened
the multi-core axis, but `BENCH_e8.json` showed single-process throughput
halving from 12 to 24 concurrent queries: every event was still pushed
through every query's compiled closures, so concurrency bought nothing
past a dozen queries.  This experiment measures the columnar fast path:
each ingest batch pivots into a struct-of-arrays
:class:`~repro.core.compile.columnar.ColumnBlock`, structurally-equal
predicates across all registered queries are canonicalized into a shared
index, and each distinct predicate is evaluated column-at-a-time once per
batch.

The E8-style workload (the E4 query triple deployed host-by-host, in
equal thirds per kind) is executed single-process at 12/24/48 queries in
both modes — ``columnar`` (the default) and the per-event
compiled-closure ``oracle`` (``columnar=False``) — over a 16-host
enterprise stream with a fixed 8-host watched set, so the arms differ
only in query count.  Alert parity between the modes is asserted at
every scale; the scaling assertions (24-query columnar holds >= 0.75x
its 12-query arm and beats the 24-query oracle >= 1.5x) only fire on
full-sized streams (``SAQL_BENCH_SCALE >= 1``), so CI's smoke run
validates dispatch and parity without timing noise.

Rates land in ``benchmarks/BENCH_e12.json`` via the shared conftest hook,
with per-arm query counts and distinct-predicate counts under ``"arms"``
so the sharing win is attributable from the trajectory file alone.
"""

import time

import pytest

from benchmarks.bench_e8_sharded_scaling import _fingerprints
from benchmarks.conftest import (bench_scale, fresh_stream, print_table,
                                 record_rate)
from repro.collection import Enterprise, EnterpriseConfig
from repro.core import ConcurrentQueryScheduler
from repro.queries.demo_queries import (outlier_exfiltration,
                                        rule_c5_data_exfiltration,
                                        timeseries_network_spike)

#: Query counts for the scaling arms.
QUERY_COUNTS = (12, 24, 48)
#: Events per ingest batch; the acceptance bar applies at batch >= 64.
BATCH_SIZE = 512
#: Hosts the query arms watch.  Fixed across arms — each arm deploys the
#: same kind mix over the same hosts, so the arms isolate query-count
#: scaling from workload growth (more hosts watched would mean more
#: matched events, not more queries per event).
WATCHED_HOSTS = 8


def _workload_arm(hosts, count):
    """``count`` queries: equal thirds of the E4 triple over ``hosts``.

    Kind-major assignment (all rule-C5 slots first, then timeseries, then
    outlier) keeps every arm at exactly one third of each query kind, so
    doubling the count doubles each kind's population instead of shifting
    the mix toward the stateful kinds.
    """
    queries = []
    per_kind = count // 3
    for index in range(count):
        kind = min(index // per_kind, 2)
        host = hosts[index % len(hosts)]
        if kind == 0:
            text = rule_c5_data_exfiltration(agent=host)
        elif kind == 1:
            text = timeseries_network_spike(floor_bytes=500000 + index,
                                            agent=host)
        else:
            text = outlier_exfiltration(floor_bytes=5000000 + index,
                                        agent=host)
        queries.append((f"q{index:02d}-{host}", text))
    return queries


@pytest.fixture(scope="module")
def wide_enterprise():
    """Sixteen hosts; the arms watch 8, so global filters stay selective."""
    return Enterprise(EnterpriseConfig(seed=7, extra_desktops=9,
                                       extra_web_servers=3))


@pytest.fixture(scope="module")
def wide_events(wide_enterprise):
    """Thirty minutes of background events across all 16 hosts."""
    return wide_enterprise.background_events(0.0, 1800.0 * bench_scale())


def _run_mode(queries, events, columnar, repeats=3):
    """Best-of-N events/second for one execution mode.

    Query parsing and registration happen outside the timed region — the
    experiment measures steady-state stream execution, and both modes pay
    identical registration cost anyway.
    """
    best, alerts, stats = 0.0, None, None
    for _ in range(repeats):
        scheduler = ConcurrentQueryScheduler(columnar=columnar)
        for name, text in queries:
            scheduler.add_query(text, name=name)
        stream = fresh_stream(events)
        started = time.perf_counter()
        result = scheduler.execute(stream, batch_size=BATCH_SIZE)
        elapsed = time.perf_counter() - started
        rate = len(events) / elapsed if elapsed > 0 else float("inf")
        if rate > best:
            best, alerts, stats = rate, result, scheduler.stats
    return best, alerts, stats


def test_e12_columnar_scaling(benchmark, wide_events, wide_enterprise):
    """Events/second for 12/24/48 queries, columnar vs closure oracle."""
    hosts = wide_enterprise.hosts
    full_scale = bench_scale() >= 1.0
    rows = []
    columnar_rates = {}
    oracle_rates = {}
    for query_count in QUERY_COUNTS:
        queries = _workload_arm(hosts[:WATCHED_HOSTS], query_count)

        probe = ConcurrentQueryScheduler()
        for name, text in queries:
            probe.add_query(text, name=name)
        distinct = probe.distinct_predicate_count()
        arm = {"queries": query_count, "distinct_predicates": distinct}

        oracle_rate, oracle_alerts, _ = _run_mode(
            queries, wide_events, columnar=False)
        oracle_rates[query_count] = oracle_rate
        record_rate("e12", f"oracle-{query_count}-queries", oracle_rate,
                    mode="oracle", **arm)

        columnar_rate, columnar_alerts, stats = _run_mode(
            queries, wide_events, columnar=True)
        columnar_rates[query_count] = columnar_rate
        record_rate("e12", f"columnar-{query_count}-queries", columnar_rate,
                    mode="columnar",
                    predicate_evaluations=stats.predicate_evaluations,
                    predicate_evaluations_saved=(
                        stats.predicate_evaluations_saved),
                    **arm)

        # Alert-for-alert parity between the modes, at every scale.
        assert _fingerprints(columnar_alerts) == _fingerprints(oracle_alerts)
        # The shared index must actually dedupe: the round-robin workload
        # reuses the same predicate shapes across hosts, so the distinct
        # count stays well below the naive per-query atom total.
        assert 0 < distinct < 4 * query_count
        assert stats.column_blocks_built > 0
        assert stats.predicate_evaluations_saved > 0

        rows.append((query_count, distinct,
                     f"{oracle_rate:,.0f}", f"{columnar_rate:,.0f}",
                     f"{columnar_rate / oracle_rate:.2f}x"))

    if full_scale:
        # Concurrency must no longer halve throughput: doubling the query
        # count keeps >= 0.75x of the 12-query columnar rate...
        assert columnar_rates[24] >= 0.75 * columnar_rates[12]
        # ...and the shared index must beat per-event closures outright.
        assert columnar_rates[24] >= 1.5 * oracle_rates[24]

    print_table(
        "E12: columnar batch execution and predicate sharing "
        f"({len(wide_events)} events, {len(hosts)} hosts, "
        f"batch={BATCH_SIZE})",
        ("queries", "distinct preds", "oracle ev/s", "columnar ev/s",
         "speedup"),
        rows)

    queries = _workload_arm(hosts[:WATCHED_HOSTS], 24)
    benchmark.pedantic(
        lambda: _run_mode(queries, wide_events, columnar=True),
        rounds=1, iterations=1)


def test_e12_sharing_report(wide_enterprise, wide_events):
    """The per-predicate report exposes sharing and selectivity."""
    queries = _workload_arm(wide_enterprise.hosts[:WATCHED_HOSTS], 24)
    scheduler = ConcurrentQueryScheduler()
    for name, text in queries:
        scheduler.add_query(text, name=name)
    scheduler.execute(fresh_stream(wide_events[:4096]),
                      batch_size=BATCH_SIZE)
    report = scheduler.shared_predicate_report()
    assert report
    # The workload reuses the E4 triple per host: at least one canonical
    # predicate is subscribed by several query slots.
    assert max(entry["subscribers"] for entry in report) >= 2
    for entry in report:
        assert 0.0 <= entry["selectivity"] <= 1.0
        assert entry["rows_selected"] <= entry["rows_evaluated"]
    assert (scheduler.stats.distinct_predicates
            == scheduler.distinct_predicate_count() == len(report))
