"""E15 — segment-store seeks and differential checkpoint size.

PR 9 replaced both durability layers that scaled with *stream length*:
the in-memory event list became a segment store (append-only journal
sealed into immutable indexed segments) and checkpoints became
differential (deltas against a periodic full base).  This experiment
measures the three claims that refactor makes:

* **resume: seek vs scan** — replay after a checkpoint at ~95% of a
  long history.  The cursor-seek path must read only a sliver of the
  pre-cursor history (>= 90% of pre-cursor events never touched) and
  beat the filter-a-full-scan oracle; both paths must yield identical
  events.
* **checkpoint bytes: full vs diff** — a scheduler-shaped snapshot
  written 24 times at three churn levels in both modes.  At low churn
  the diff chain must be >= 3x smaller per checkpoint than full dumps;
  at total churn the writer falls back to fulls and costs parity, never
  more.
* **range-scan throughput** — a narrow host+time selection over a
  sealed store vs a linear scan-and-filter of the same data, with the
  indexed path pruning whole segments.

Oracle parity rides along: a legacy JSON-lines database file and
format-1/2 checkpoint files must restore bit-identically through the
new stack.  Rates land in ``benchmarks/BENCH_e15.json`` via the shared
conftest hook.
"""

import json
import random
import tempfile
import time
from pathlib import Path

from benchmarks.conftest import bench_scale, print_table, record_rate
from repro.core.snapshot import ResumeCursor, resume_events
from repro.events.entities import NetworkEntity, ProcessEntity
from repro.events.event import Event, Operation
from repro.storage import CheckpointStore, EventDatabase, StreamReplayer
from repro.storage.checkpoints import snapshot_checksum
from repro.storage.segments import event_key

HOSTS = [f"host-{n:02d}" for n in range(16)]


def storage_events(count):
    rng = random.Random(41)
    events = []
    for position in range(count):
        host = HOSTS[rng.randrange(len(HOSTS))]
        timestamp = position * 0.01
        if position % 17 == 0:
            events.append(Event(
                subject=ProcessEntity.make("etl.exe", pid=3, host=host),
                operation=Operation.WRITE,
                obj=ProcessEntity.make("child.exe", pid=4, host=host),
                timestamp=timestamp, agentid=host))
        else:
            events.append(Event(
                subject=ProcessEntity.make("svc.exe", pid=2, host=host),
                operation=Operation.SEND,
                obj=NetworkEntity.make("10.0.1.2", "10.0.0.9", dstport=443),
                timestamp=timestamp, agentid=host,
                amount=float(rng.randrange(100, 1000))))
    return events


def _canonical(value):
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def scheduler_snapshot(step, hosts, churn):
    """A snapshot shaped like the scheduler's export: assoc pair-lists
    of per-host window state plus append-only alert/distinct ledgers.
    ``churn`` is the fraction of hosts whose state changed this step."""
    moving = max(1, int(hosts * churn))
    return {
        "version": 1, "kind": "scheduler",
        "queries": ["exfil", "priv-esc", "beacon"],
        "engines": {
            "exfil": {
                "alerts": [f"alert-{index}" for index in range(step)],
                "histories": [
                    [["host", index],
                     {"count": (step * 7 + index if index < moving else 13),
                      "panes": [[1.0, 2.0], [3.0, 4.0]],
                      "blob": "s" * 64}]
                    for index in range(hosts)
                ],
            },
            "priv-esc": {
                "banks": [
                    [[index, "seq"],
                     {"partial": (step if index < moving else 0)}]
                    for index in range(hosts)
                ],
                "seen_distinct": [f"v-{index}" for index in range(step * 3)],
            },
            "beacon": {"alerts": [], "watermark": float(step)},
        },
        "cursor": {"watermark": float(step), "last_event_id": step * 100,
                   "frontier_ids": [step * 100],
                   "events_ingested": step * 5000},
    }


def test_e15_resume_seek_vs_scan(tmp_path):
    count = int(120000 * bench_scale())
    events = storage_events(count)
    database = EventDatabase.open(tmp_path / "db", segment_events=4096)
    database.insert_many(events)
    database.store.seal_tail()

    ordered = sorted(events, key=event_key)
    cut = int(count * 0.95)
    cursor = ResumeCursor(
        watermark=ordered[cut - 1].timestamp,
        last_event_id=ordered[cut - 1].event_id,
        frontier_ids=frozenset(
            event.event_id for event in ordered
            if event.timestamp == ordered[cut - 1].timestamp),
        events_ingested=cut)

    # Scan oracle: replay the whole stored history and filter through
    # the cursor — what resume cost before the store could seek.
    start = time.perf_counter()
    scanned = [event for event in database.scan()
               if not cursor.covers(event)]
    scan_seconds = time.perf_counter() - start

    # Seek path: the replayer resumes through the segment indexes.
    replayer = StreamReplayer(database)
    rows_before = database.store.stats().rows_read
    start = time.perf_counter()
    sought = list(resume_events(replayer, cursor))
    seek_seconds = time.perf_counter() - start
    rows_read = database.store.stats().rows_read - rows_before

    assert sought == scanned, "seek and scan resume disagree"
    pre_cursor_rows_touched = max(0, rows_read - len(sought))
    skipped_fraction = 1.0 - (pre_cursor_rows_touched / cut)

    scan_rate = count / scan_seconds if scan_seconds else 0.0
    seek_rate = count / seek_seconds if seek_seconds else 0.0

    print_table(
        f"E15a: resume at 95% of {count} events (seek vs scan)",
        ["arm", "events/s (of history)", "notes"],
        [
            ["scan+filter", f"{scan_rate:,.0f}",
             f"reads all {count} events"],
            ["cursor seek", f"{seek_rate:,.0f}",
             f"read {rows_read} rows for {len(sought)} resumed events; "
             f"skipped {skipped_fraction * 100:.1f}% of pre-cursor "
             "history"],
        ])
    record_rate("e15", "resume_scan", scan_rate)
    record_rate("e15", "resume_seek", seek_rate,
                resumed_events=len(sought), rows_read=rows_read,
                pre_cursor_skipped_fraction=round(skipped_fraction, 4))

    # The seek contract holds at every scale: it is structural (index
    # pruning), not a timing ratio.
    assert skipped_fraction >= 0.90, (
        f"cursor seek touched {pre_cursor_rows_touched} of {cut} "
        f"pre-cursor events (must skip >= 90%)")


def test_e15_checkpoint_bytes_full_vs_diff():
    checkpoints = 24
    hosts = max(8, int(200 * min(1.0, bench_scale())))
    rows = []
    ratios = {}
    for label, churn in (("low", 0.01), ("medium", 0.25), ("total", 1.0)):
        sizes = {}
        for mode in ("full", "diff"):
            with tempfile.TemporaryDirectory() as tmp:
                store = CheckpointStore(tmp, mode=mode, rebase_interval=8)
                start = time.perf_counter()
                for step in range(checkpoints):
                    store.save(scheduler_snapshot(step, hosts, churn))
                seconds = time.perf_counter() - start
                sizes[mode] = store.bytes_written
                if mode == "diff":
                    deltas = store.delta_writes
                # Both modes must recover the final snapshot exactly.
                assert _canonical(store.latest()) == _canonical(
                    scheduler_snapshot(checkpoints - 1, hosts, churn))
        ratio = sizes["full"] / sizes["diff"]
        ratios[label] = ratio
        rows.append([label, f"{sizes['full']:,}", f"{sizes['diff']:,}",
                     f"{ratio:.1f}x", f"{deltas}/{checkpoints}"])
        record_rate("e15", f"checkpoint_bytes_ratio_{label}_churn", ratio,
                    full_bytes=sizes["full"], diff_bytes=sizes["diff"],
                    checkpoints=checkpoints, hosts=hosts, churn=churn)

    print_table(
        f"E15b: checkpoint bytes, {checkpoints} checkpoints, "
        f"{hosts} hosts of state",
        ["churn", "full bytes", "diff bytes", "full/diff", "deltas"],
        rows)

    # Structural contracts, asserted at every scale: diff wins big at
    # low churn and never loses at total churn.
    assert ratios["low"] >= 3.0, (
        f"diff checkpoints only {ratios['low']:.1f}x smaller than full "
        "at low churn (required >= 3x)")
    assert ratios["total"] >= 0.9, (
        "diff mode cost more than full dumps at total churn "
        f"({ratios['total']:.2f}x) — the full-fallback guard regressed")


def test_e15_segment_pruned_range_scan(tmp_path):
    count = int(120000 * bench_scale())
    events = storage_events(count)
    database = EventDatabase.open(tmp_path / "db", segment_events=4096)
    database.insert_many(events)
    database.store.seal_tail()

    span_start = events[-1].timestamp * 0.70
    span_end = events[-1].timestamp * 0.72
    hosts = HOSTS[:2]

    start = time.perf_counter()
    scanned = [event for event in sorted(events, key=event_key)
               if span_start <= event.timestamp < span_end
               and event.agentid in set(hosts)]
    scan_seconds = time.perf_counter() - start

    rows_before = database.store.stats().rows_read
    start = time.perf_counter()
    selected = database.query(span_start, span_end, hosts=hosts)
    seek_seconds = time.perf_counter() - start
    rows_read = database.store.stats().rows_read - rows_before
    stats = database.store.stats()

    assert selected == scanned, "indexed selection and scan disagree"

    scan_rate = count / scan_seconds if scan_seconds else 0.0
    seek_rate = count / seek_seconds if seek_seconds else 0.0
    print_table(
        f"E15c: 2%-of-history, 2-host range scan over {count} events",
        ["arm", "events/s (of history)", "notes"],
        [
            ["scan+filter", f"{scan_rate:,.0f}", "reads everything"],
            ["segment-pruned", f"{seek_rate:,.0f}",
             f"{len(selected)} results from {rows_read} rows read; "
             f"{stats.segments_pruned} segments pruned, "
             f"{stats.segments_consulted} consulted"],
        ])
    record_rate("e15", "range_scan_linear", scan_rate)
    record_rate("e15", "range_scan_indexed", seek_rate,
                results=len(selected), rows_read=rows_read,
                segments_pruned=stats.segments_pruned)

    assert rows_read < count / 4, (
        f"indexed range scan read {rows_read} of {count} rows — "
        "segment pruning is not engaging")


def test_e15_legacy_format_oracle_parity(tmp_path):
    # Legacy JSON-lines database: the new stack must reload it and
    # rewrite it bit-identically.
    events = storage_events(int(4000 * min(1.0, bench_scale())))
    legacy = tmp_path / "legacy.jsonl"
    EventDatabase(events).save(legacy)
    rewritten = tmp_path / "rewritten.jsonl"
    EventDatabase.load(legacy).save(rewritten)
    assert legacy.read_bytes() == rewritten.read_bytes()

    # Format-1 (bare) and format-2 (checksummed) checkpoints must
    # restore bit-identically through the format-3 store in both modes.
    snapshot = scheduler_snapshot(5, hosts=20, churn=0.1)
    for fmt, payload in (
            (1, snapshot),
            (2, {"format": 2, "checksum": snapshot_checksum(snapshot),
                 "snapshot": snapshot})):
        directory = tmp_path / f"fmt{fmt}"
        directory.mkdir()
        (directory / "checkpoint-00000001.json").write_text(
            json.dumps(payload), encoding="utf-8")
        for mode in ("full", "diff"):
            loaded = CheckpointStore(directory, mode=mode).latest()
            assert _canonical(loaded) == _canonical(snapshot), (
                f"format-{fmt} checkpoint did not restore bit-identically "
                f"in {mode} mode")
