"""Shared fixtures and reporting helpers for the benchmark harness.

Each ``bench_eN_*`` module regenerates one experiment of EXPERIMENTS.md.
Benchmarks print the table rows they reproduce (run pytest with ``-s`` to
see them inline; the summary timings come from pytest-benchmark).
"""

from __future__ import annotations

import pytest

from repro.attack import APTScenario
from repro.collection import Enterprise, EnterpriseConfig
from repro.events.stream import ListStream

#: Duration of the simulated background used by the detection benchmarks.
BACKGROUND_SECONDS = 3600.0
ATTACK_START = 1800.0


def print_table(title, header, rows):
    """Print one experiment's reproduced table."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(header[i])),
                  max((len(str(row[i])) for row in rows), default=0))
              for i in range(len(header))]
    print(" | ".join(str(column).ljust(widths[i])
                     for i, column in enumerate(header)))
    print("-+-".join("-" * width for width in widths))
    for row in rows:
        print(" | ".join(str(column).ljust(widths[i])
                         for i, column in enumerate(row)))


@pytest.fixture(scope="session")
def enterprise():
    """The simulated enterprise shared by all benchmarks."""
    return Enterprise(EnterpriseConfig(seed=7))


@pytest.fixture(scope="session")
def apt_scenario():
    """The APT attack scenario used by the detection benchmarks."""
    return APTScenario(start_time=ATTACK_START)


@pytest.fixture(scope="session")
def demo_stream(enterprise, apt_scenario):
    """One hour of enterprise background with the attack injected."""
    return enterprise.event_feed(0.0, BACKGROUND_SECONDS,
                                 injected=apt_scenario.events())


@pytest.fixture(scope="session")
def db_server_events(enterprise):
    """Thirty minutes of database-server background events (list form)."""
    return enterprise.agent("db-server").generate_events(0.0, 1800.0)


def fresh_stream(events):
    """Wrap an already-sorted event list as a stream (cheap, reusable)."""
    return ListStream(events, presorted=True)
