"""Shared fixtures and reporting helpers for the benchmark harness.

Each ``bench_eN_*`` module regenerates one experiment of EXPERIMENTS.md.
Benchmarks print the table rows they reproduce (run pytest with ``-s`` to
see them inline; the summary timings come from pytest-benchmark).

Throughput-style benchmarks additionally record their rates via
:func:`record_rate`; at session end each experiment's rates are written to
a machine-readable ``BENCH_<experiment>.json`` next to this file (e.g.
``BENCH_e3.json``), so later revisions have a perf trajectory to compare
against.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path
from typing import Dict

import pytest

from repro.attack import APTScenario
from repro.collection import Enterprise, EnterpriseConfig
from repro.events.stream import ListStream

#: Duration of the simulated background used by the detection benchmarks.
BACKGROUND_SECONDS = 3600.0
ATTACK_START = 1800.0


def bench_scale() -> float:
    """Return the stream-duration scale for the throughput benchmarks.

    ``SAQL_BENCH_SCALE=0.1`` shrinks the synthesized streams ten-fold; CI
    uses this for a smoke run that catches dispatch regressions without the
    full event volume.  Performance-ratio assertions are skipped below 1.0
    because tiny streams are timing noise.
    """
    return float(os.environ.get("SAQL_BENCH_SCALE", "1.0"))

#: experiment -> scenario -> events/second, filled by record_rate().
_RECORDED_RATES: Dict[str, Dict[str, float]] = {}

#: experiment -> scenario -> arm metadata (query counts, distinct
#: predicates, ...), filled by record_rate(**details).
_RECORDED_ARMS: Dict[str, Dict[str, Dict[str, object]]] = {}


def record_rate(experiment: str, scenario: str,
                events_per_second: float, **details) -> None:
    """Record one scenario's throughput for the end-of-session JSON dump.

    Keyword ``details`` (e.g. ``queries=24, distinct_predicates=11``)
    are written alongside the rate under the payload's ``"arms"`` key, so
    sharing/scaling wins stay attributable from the trajectory files
    alone.
    """
    _RECORDED_RATES.setdefault(experiment, {})[scenario] = float(
        events_per_second)
    if details:
        _RECORDED_ARMS.setdefault(experiment, {})[scenario] = dict(details)


def _merged_records(attribute: str) -> Dict[str, Dict]:
    """Merge one record dict across every import of this module.

    pytest loads this file as its own ``conftest`` plugin module while the
    benchmark modules import it as ``benchmarks.conftest``; both copies can
    hold records, so the session hook merges them.
    """
    merged: Dict[str, Dict] = {}
    seen = set()
    for module_name in (__name__, "benchmarks.conftest", "conftest"):
        module = sys.modules.get(module_name)
        if module is None or id(module) in seen:
            continue
        seen.add(id(module))
        for experiment, records in getattr(module, attribute, {}).items():
            merged.setdefault(experiment, {}).update(records)
    return merged


def _all_recorded_rates() -> Dict[str, Dict[str, float]]:
    return _merged_records("_RECORDED_RATES")


def pytest_sessionfinish(session, exitstatus):
    """Write BENCH_<experiment>.json for every experiment that recorded rates.

    Scaled-down (smoke) runs do not overwrite the trajectory files: their
    rates come from streams too small to be comparable across revisions.
    """
    if bench_scale() != 1.0:
        return
    directory = Path(__file__).resolve().parent
    arms = _merged_records("_RECORDED_ARMS")
    for experiment, rates in sorted(_all_recorded_rates().items()):
        payload = {
            "experiment": experiment,
            "unit": "events/second",
            "python": platform.python_version(),
            # Rates are machine-dependent; the fingerprint lets trajectory
            # diffs distinguish a code regression from a machine change —
            # cpu_count is surfaced top-level because multi-core results
            # (sharded scaling, work stealing) are only comparable between
            # runs with the same core budget (the ROADMAP's
            # multi-core-recording caveat).
            "cpu_count": os.cpu_count(),
            "machine": {"cpus": os.cpu_count(),
                        "platform": platform.platform()},
            "rates": {scenario: round(rate, 1)
                      for scenario, rate in sorted(rates.items())},
        }
        experiment_arms = arms.get(experiment)
        if experiment_arms:
            payload["arms"] = {scenario: details for scenario, details
                               in sorted(experiment_arms.items())}
        path = directory / f"BENCH_{experiment}.json"
        path.write_text(json.dumps(payload, indent=2) + "\n")


def print_table(title, header, rows):
    """Print one experiment's reproduced table."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(header[i])),
                  max((len(str(row[i])) for row in rows), default=0))
              for i in range(len(header))]
    print(" | ".join(str(column).ljust(widths[i])
                     for i, column in enumerate(header)))
    print("-+-".join("-" * width for width in widths))
    for row in rows:
        print(" | ".join(str(column).ljust(widths[i])
                         for i, column in enumerate(row)))


@pytest.fixture(scope="session")
def enterprise():
    """The simulated enterprise shared by all benchmarks."""
    return Enterprise(EnterpriseConfig(seed=7))


@pytest.fixture(scope="session")
def apt_scenario():
    """The APT attack scenario used by the detection benchmarks."""
    return APTScenario(start_time=ATTACK_START)


@pytest.fixture(scope="session")
def demo_stream(enterprise, apt_scenario):
    """One hour of enterprise background with the attack injected."""
    return enterprise.event_feed(0.0, BACKGROUND_SECONDS,
                                 injected=apt_scenario.events())


@pytest.fixture(scope="session")
def db_server_events(enterprise):
    """Thirty minutes of database-server background events (list form)."""
    return enterprise.agent("db-server").generate_events(
        0.0, 1800.0 * bench_scale())


def fresh_stream(events):
    """Wrap an already-sorted event list as a stream (cheap, reusable)."""
    return ListStream(events, presorted=True)
