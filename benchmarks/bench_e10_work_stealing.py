"""E10 — mid-stream work stealing versus the static auto shard map.

PR 3's ``shard_map="auto"`` fixes skew that is visible in the observed
stream prefix; this experiment measures the case it cannot fix: load that
shifts *mid-stream*.  A synthetic enterprise stream starts uniform across
eight hosts (the prefix the auto map observes) and then collapses ~86% of
its traffic onto exactly the hosts the auto map co-located on one shard —
the worst case for a static assignment, and precisely the burst-host /
ramping-attack scenario the ROADMAP's work-stealing item names.

Three arms run over the same stream with the same steal-safe query pair
(a tumbling per-host aggregation plus a stateless rule):

* the single-process :class:`ConcurrentQueryScheduler` (the oracle),
* ``ShardedScheduler(shard_map="auto")`` — the static baseline,
* the same sharded scheduler with ``rebalance_interval`` set, so the
  :class:`~repro.core.parallel.WorkStealingBalancer` migrates the burst
  hosts off the hot shard at window-aligned safe points.

Alert-set equivalence with the oracle is asserted on every arm.  The
headline metric is *shard load balance*: the hottest shard's share of the
sharded lane's events, and the modeled makespan speedup
(``static max-shard load / stealing max-shard load``) — the factor by
which rebalancing shortens the critical path once each shard owns a core.
Balance is measured on the serial backend (deterministic migrations) and
parity additionally on the thread backend (asynchronous drain-and-handoff).
Wall-clock rates are recorded for the trajectory but, as with E8/E9, this
container has one CPU — and the thread backend shares the GIL — so the
balance win only converts into wall-clock on a multi-core process-backend
deployment; see benchmarks/README.md.

Rates land in ``benchmarks/BENCH_e10.json`` via the shared conftest hook.
"""

import os
import time

import pytest

from benchmarks.conftest import (bench_scale, fresh_stream, print_table,
                                 record_rate)
from repro.core import ConcurrentQueryScheduler
from repro.core.parallel import ShardedScheduler
from repro.events.entities import NetworkEntity, ProcessEntity
from repro.events.event import Event, Operation

#: Steal-safe workload: both queries register on every shard unpinned.
QUERIES = [
    ("per-host-volume", '''
proc p send ip i as evt #time(10)
state ss { total := sum(evt.amount) } group by evt.agentid
alert ss.total > 200000
return ss.total
'''),
    ("send-watch", '''
proc p["%x.exe"] send ip i as evt
alert evt.amount > 990
return p, i.dstip
'''),
]

HOSTS = [f"host-{n:02d}" for n in range(8)]
SHARDS = 2
#: Events between load-report epochs (scaled down with the stream).
REBALANCE_INTERVAL = 2000
REBALANCE_RATIO = 1.2
#: Events per feed batch: batches bound how often shard control channels
#: are polled, so smoke-scale streams still complete their migrations.
SHARD_BATCH = 64


def _event(host, position):
    return Event(
        subject=ProcessEntity.make("x.exe", pid=1, host=host),
        operation=Operation.SEND,
        obj=NetworkEntity.make("10.0.1.2", "10.0.0.9", srcport=5,
                               dstport=443),
        timestamp=position * 0.01,
        agentid=host,
        amount=float(500 + (position * 37) % 500),
    )


def _burst_group():
    """Return the hosts the auto map will co-locate on one shard.

    The prefix is uniform, so the LPT plan over equal counts is
    deterministic; asking :meth:`plan_shard_map` directly (rather than
    hard-coding host names) keeps the workload honest if the packing
    heuristic ever changes.
    """
    probe = ShardedScheduler(shards=SHARDS)
    for name, text in QUERIES:
        probe.add_query(text, name=name)
    plan = probe.plan_shard_map({host: 1000 for host in HOSTS})
    group = sorted(host for host in HOSTS if plan[host.casefold()] == 0)
    assert len(group) == len(HOSTS) // SHARDS
    return group


def mid_stream_skew_events(count, prefix):
    """Uniform for ``prefix`` events, then ~86% on one shard's hosts."""
    burst_hosts = _burst_group()
    events = []
    for position in range(count):
        if position < prefix:
            host = HOSTS[position % len(HOSTS)]
        elif position % 7 == 0:
            host = HOSTS[position % len(HOSTS)]       # residual background
        else:
            host = burst_hosts[position % len(burst_hosts)]
        events.append(_event(host, position))
    return events


def _fingerprints(alerts):
    return sorted(repr((a.query_name, a.timestamp, a.data,
                        repr(a.group_key), a.window_start, a.window_end,
                        a.agentid, a.model_kind)) for a in alerts)


def _best_rate(run, events, repeats=3):
    """Best-of-N events/second (reduces scheduler-noise on small machines)."""
    best, result = 0.0, None
    for _ in range(repeats):
        started = time.perf_counter()
        outcome = run()
        elapsed = time.perf_counter() - started
        rate = len(events) / elapsed if elapsed > 0 else float("inf")
        if rate > best:
            best, result = rate, outcome
    return best, result


def _run_oracle(events):
    def run():
        scheduler = ConcurrentQueryScheduler()
        for name, text in QUERIES:
            scheduler.add_query(text, name=name)
        alerts = scheduler.execute(fresh_stream(events))
        return scheduler, alerts
    return _best_rate(run, events)


def _run_sharded(events, prefix, backend, interval=None, repeats=3):
    def run():
        scheduler = ShardedScheduler(
            shards=SHARDS, backend=backend, shard_map="auto",
            auto_prefix=prefix, batch_size=SHARD_BATCH,
            rebalance_interval=interval,
            rebalance_ratio=REBALANCE_RATIO)
        for name, text in QUERIES:
            scheduler.add_query(text, name=name)
        alerts = scheduler.execute(fresh_stream(events))
        return scheduler, alerts
    return _best_rate(run, events, repeats=repeats)


def _max_share(scheduler):
    """The hottest shard's fraction of the sharded lane's ingested events."""
    loads = [stats.events_ingested for stats in scheduler.per_shard_stats]
    return max(loads) / sum(loads), loads


def test_e10_work_stealing_beats_static_auto_map(benchmark):
    """Balance and parity under a mid-stream skew the auto map cannot see."""
    scale = bench_scale()
    count = max(4000, int(48000 * scale))
    prefix = count // 6
    interval = max(400, int(REBALANCE_INTERVAL * scale))
    events = mid_stream_skew_events(count, prefix)

    oracle_rate, (oracle, oracle_alerts) = _run_oracle(events)
    reference = _fingerprints(oracle_alerts)
    record_rate("e10", "single-process-oracle", oracle_rate)

    static_rate, (static, static_alerts) = _run_sharded(
        events, prefix, backend="serial")
    assert _fingerprints(static_alerts) == reference
    assert static.migrations == []
    static_share, static_loads = _max_share(static)
    record_rate("e10", "static-auto-serial-2w", static_rate)
    record_rate("e10", "static-auto-max-shard-share", static_share)

    stealing_rate, (stealing, stealing_alerts) = _run_sharded(
        events, prefix, backend="serial", interval=interval)
    assert _fingerprints(stealing_alerts) == reference
    assert stealing.migrations, "skew workload produced no steals"
    assert stealing.last_steal_eligibility.eligible
    stealing_share, stealing_loads = _max_share(stealing)
    record_rate("e10", "stealing-serial-2w", stealing_rate)
    record_rate("e10", "stealing-max-shard-share", stealing_share)

    # The headline: rebalancing shortens the critical path.  The modeled
    # makespan speedup is what a multi-core process-backend deployment
    # gains once each shard owns a core.
    modeled = max(static_loads) / max(stealing_loads)
    record_rate("e10", "stealing-modeled-makespan-speedup", modeled)
    assert stealing_share < static_share
    assert modeled >= 1.15

    # Thread backend: drain-and-handoff completes asynchronously; parity
    # must hold on every attempt, migrations on at least one.
    thread_rate, threaded = 0.0, None
    for _ in range(6):
        rate, (candidate, thread_alerts) = _run_sharded(
            events, prefix, backend="thread", interval=interval, repeats=1)
        assert _fingerprints(thread_alerts) == reference
        thread_rate = max(thread_rate, rate)
        if candidate.migrations:
            threaded = candidate
            break
    assert threaded is not None, "thread backend never completed a migration"
    record_rate("e10", "stealing-thread-2w", thread_rate)
    static_thread_rate, (_, static_thread_alerts) = _run_sharded(
        events, prefix, backend="thread")
    assert _fingerprints(static_thread_alerts) == reference
    record_rate("e10", "static-auto-thread-2w", static_thread_rate)

    print_table(
        "E10: mid-stream work stealing vs static auto map "
        f"({count} events, {len(HOSTS)} hosts, {SHARDS} shards, "
        f"{os.cpu_count()} cpus)",
        ("configuration", "events/second", "max shard share",
         "migrations"),
        [
            ("single process (oracle)", f"{oracle_rate:,.0f}", "-", "-"),
            ("static auto, serial", f"{static_rate:,.0f}",
             f"{static_share:.2f}", 0),
            ("stealing, serial", f"{stealing_rate:,.0f}",
             f"{stealing_share:.2f}", len(stealing.migrations)),
            ("static auto, thread", f"{static_thread_rate:,.0f}", "-", 0),
            ("stealing, thread", f"{thread_rate:,.0f}", "-",
             len(threaded.migrations)),
            ("modeled makespan speedup", f"{modeled:.2f}x", "", ""),
        ])

    benchmark.pedantic(
        lambda: _run_sharded(events, prefix, backend="serial",
                             interval=interval),
        rounds=1, iterations=1)


def test_e10_migrations_are_window_aligned():
    """Every recorded cut sits on the tumbling hop, per the eligibility."""
    count = max(4000, int(12000 * bench_scale()))
    events = mid_stream_skew_events(count, count // 6)
    _, (stealing, _) = _run_sharded(events, count // 6, backend="serial",
                                    interval=400)
    assert stealing.migrations
    assert stealing.last_steal_eligibility.alignment == 10
    for record in stealing.migrations:
        assert record.cut % 10 == 0
        assert record.source != record.target
