"""E8 — sharded multi-core execution and batch ingestion.

PR 1 made the single-core path 2-4x faster; this experiment opens the
multi-core axis.  A multi-host enterprise stream is executed under (a) the
single-process scheduler fed per event, (b) the same scheduler through the
batch ingestion path at several batch sizes, and (c) the
:class:`~repro.core.parallel.ShardedScheduler` with 1/2/4 worker processes,
for 12- and 24-query workloads whose queries are pinned round-robin across
the hosts.  Alert equivalence with the single-process run is asserted on
every sharded configuration; the speedup assertions only fire when the
machine actually has the cores (``os.cpu_count() >= 4``) and the stream is
full-sized (``SAQL_BENCH_SCALE >= 1``), so smoke runs on small containers
still validate dispatch and equivalence without asserting hardware scaling.

Rates land in ``benchmarks/BENCH_e8.json`` via the shared conftest hook.
"""

import os
import time

import pytest

from benchmarks.conftest import (bench_scale, fresh_stream, print_table,
                                 record_rate)
from repro.collection import Enterprise, EnterpriseConfig
from repro.core import ConcurrentQueryScheduler
from repro.core.parallel import ShardedScheduler
from repro.queries.demo_queries import (
    outlier_exfiltration,
    rule_c5_data_exfiltration,
    timeseries_network_spike,
)

#: Worker counts for the sharded runs.
WORKER_COUNTS = (1, 2, 4)
#: Batch sizes for the single-process batch ingestion runs.
BATCH_SIZES = (1, 64, 512)
#: Events per feed batch for the sharded runs.
SHARD_BATCH = 512


@pytest.fixture(scope="module")
def multi_host_enterprise():
    return Enterprise(EnterpriseConfig(seed=7, extra_desktops=4,
                                       extra_web_servers=2))


@pytest.fixture(scope="module")
def multi_host_events(multi_host_enterprise):
    """Thirty minutes of background events across all (10) hosts."""
    return multi_host_enterprise.background_events(
        0.0, 1800.0 * bench_scale())


def _workload(hosts, queries):
    """Pin E4's query triple round-robin across ``hosts``.

    Every host gets the same detection logic (the paper's scenario of one
    query set deployed enterprise-wide), so the stream partitions into
    per-host slices of roughly equal query load.
    """
    workload = []
    index = 0
    while len(workload) < queries:
        host = hosts[index % len(hosts)]
        kind = (index // len(hosts)) % 3
        if kind == 0:
            text = rule_c5_data_exfiltration(agent=host)
        elif kind == 1:
            text = timeseries_network_spike(floor_bytes=500000 + index,
                                            agent=host)
        else:
            text = outlier_exfiltration(floor_bytes=5000000 + index,
                                        agent=host)
        workload.append((f"q{index:02d}-{host}", text))
        index += 1
    return workload


def _fingerprints(alerts):
    return sorted(repr((a.query_name, a.timestamp, a.data,
                        repr(a.group_key), a.window_start, a.window_end,
                        a.agentid, a.model_kind)) for a in alerts)


def _distinct_predicates(queries):
    """Distinct predicate atoms the workload compiles to (shared index)."""
    scheduler = ConcurrentQueryScheduler()
    for name, text in queries:
        scheduler.add_query(text, name=name)
    return scheduler.distinct_predicate_count()


def _best_rate(run, events, repeats=3):
    """Best-of-N events/second (reduces scheduler-noise on small machines)."""
    best, result = 0.0, None
    for _ in range(repeats):
        started = time.perf_counter()
        outcome = run()
        elapsed = time.perf_counter() - started
        rate = len(events) / elapsed if elapsed > 0 else float("inf")
        if rate > best:
            best, result = rate, outcome
    return best, result


def _run_single(queries, events, batch_size):
    def run():
        scheduler = ConcurrentQueryScheduler()
        for name, text in queries:
            scheduler.add_query(text, name=name)
        return scheduler.execute(fresh_stream(events), batch_size=batch_size)
    return _best_rate(run, events)


def _run_sharded(queries, events, workers):
    def run():
        scheduler = ShardedScheduler(shards=workers, backend="process",
                                     batch_size=SHARD_BATCH)
        for name, text in queries:
            scheduler.add_query(text, name=name)
        return scheduler.execute(fresh_stream(events))
    return _best_rate(run, events)


def test_e8_batch_ingestion_and_sharded_scaling(benchmark, multi_host_events,
                                                multi_host_enterprise):
    """Events/second across batch sizes and worker counts, both workloads."""
    hosts = multi_host_enterprise.hosts
    full_scale = bench_scale() >= 1.0
    rows = []
    for query_count in (12, 24):
        queries = _workload(hosts[:max(4, query_count // 3)], query_count)
        arm = {"queries": query_count,
               "distinct_predicates": _distinct_predicates(queries)}

        perevent_rate, perevent_alerts = _run_single(
            queries, multi_host_events, batch_size=None)
        record_rate("e8", f"single-perevent-{query_count}-queries",
                    perevent_rate, **arm)
        reference = _fingerprints(perevent_alerts)
        rows.append((query_count, "single, per-event", 1,
                     f"{perevent_rate:,.0f}", "1.00x"))

        batch_rates = {}
        for batch_size in BATCH_SIZES:
            rate, alerts = _run_single(queries, multi_host_events,
                                       batch_size=batch_size)
            batch_rates[batch_size] = rate
            record_rate("e8", f"single-batch-{batch_size}-{query_count}"
                              "-queries", rate, **arm)
            rows.append((query_count, f"single, batch={batch_size}", 1,
                         f"{rate:,.0f}", f"{rate / perevent_rate:.2f}x"))
            assert _fingerprints(alerts) == reference

        sharded_rates = {}
        for workers in WORKER_COUNTS:
            rate, alerts = _run_sharded(queries, multi_host_events, workers)
            sharded_rates[workers] = rate
            record_rate("e8", f"sharded-process-{workers}w-{query_count}"
                              "-queries", rate, **arm)
            rows.append((query_count, "sharded, batch="
                         f"{SHARD_BATCH}", workers,
                         f"{rate:,.0f}", f"{rate / perevent_rate:.2f}x"))
            # Byte-identical sorted alert sets, no matter the worker count.
            assert _fingerprints(alerts) == reference

        if full_scale:
            # Batch ingestion alone must buy >= 1.2x at batch >= 64.
            assert batch_rates[64] >= 1.2 * perevent_rate
            if (os.cpu_count() or 1) >= 4:
                # Four workers must buy >= 2x once the cores exist.
                assert sharded_rates[4] >= 2.0 * perevent_rate

    print_table(
        "E8: sharded multi-core execution and batch ingestion "
        f"({len(multi_host_events)} events, {len(hosts)} hosts, "
        f"{os.cpu_count()} cpus)",
        ("queries", "configuration", "workers", "events/second", "speedup"),
        rows)

    queries = _workload(hosts[:4], 12)
    benchmark.pedantic(
        lambda: _run_single(queries, multi_host_events, batch_size=64),
        rounds=1, iterations=1)


def test_e8_shardability_routing(multi_host_enterprise):
    """The E8 workloads run fully sharded — no single-shard fallback."""
    queries = _workload(multi_host_enterprise.hosts[:8], 24)
    scheduler = ShardedScheduler(shards=4)
    for name, text in queries:
        scheduler.add_query(text, name=name)
    assert not scheduler.single_lane_query_names
    assert len(scheduler.sharded_query_names) == 24
    assert all(report.pinned_agentid is not None
               for report in scheduler.reports.values())
