"""E6 — the stream replayer (Fig. 4).

The paper stores the collected monitoring data in databases and replays
host/time slices of it as a live stream.  This benchmark stores one hour of
enterprise data in the event database, replays it with different host and
time filters, and measures replay fidelity (selected events match the
filter exactly) and replay throughput.
"""

import time

from benchmarks.conftest import print_table
from repro.storage import EventDatabase, ReplaySpec, StreamReplayer


def _database(demo_stream):
    return EventDatabase(demo_stream)


def test_e6_replay_filters_and_throughput(benchmark, demo_stream):
    """Replay selected host/time slices of the stored attack data."""
    database = _database(demo_stream)
    stats = database.stats()

    specs = [
        ("all hosts, full hour", ReplaySpec()),
        ("db-server only", ReplaySpec(hosts=["db-server"])),
        ("client-01 only", ReplaySpec(hosts=["client-01"])),
        ("attack window (t=1800..3600)", ReplaySpec(start_time=1800.0,
                                                    end_time=3600.0)),
        ("db-server attack window", ReplaySpec(hosts=["db-server"],
                                               start_time=1800.0,
                                               end_time=3600.0)),
    ]
    rows = []
    for label, spec in specs:
        replayer = StreamReplayer(database, spec)
        started = time.perf_counter()
        events = list(replayer)
        elapsed = time.perf_counter() - started
        assert all(spec.hosts is None or event.agentid in spec.hosts
                   for event in events)
        assert all(spec.start_time is None
                   or event.timestamp >= spec.start_time for event in events)
        assert all(spec.end_time is None
                   or event.timestamp < spec.end_time for event in events)
        rate = len(events) / elapsed if elapsed > 0 else float("inf")
        rows.append((label, len(events), f"{rate:,.0f}"))

    # Batch replay (the path the batch ingestion API and the sharded
    # runtime consume): same slice, chunked.
    replayer = StreamReplayer(database, ReplaySpec())
    started = time.perf_counter()
    batched = [event for batch in replayer.iter_batches(512)
               for event in batch]
    elapsed = time.perf_counter() - started
    assert batched == list(StreamReplayer(database, ReplaySpec()))
    rate = len(batched) / elapsed if elapsed > 0 else float("inf")
    rows.append(("all hosts, batched x512", len(batched), f"{rate:,.0f}"))
    print_table("E6: stream replayer (stored events: "
                f"{stats.total_events}, hosts: {len(stats.hosts)})",
                ("replay selection", "events", "events/second replayed"),
                rows)

    # Full replay covers everything (batched or not); filtered replays are
    # strict subsets.
    assert rows[0][1] == rows[-1][1] == stats.total_events
    assert all(row[1] < rows[0][1] for row in rows[1:-1])

    benchmark.pedantic(
        lambda: list(StreamReplayer(database,
                                    ReplaySpec(hosts=["db-server"]))),
        rounds=3, iterations=1)


def test_e6_persistence_round_trip(tmp_path, demo_stream):
    """Stored data survives a save/load cycle byte-for-byte (count-wise)."""
    database = _database(demo_stream)
    path = tmp_path / "capture.jsonl"
    written = database.save(path)
    reloaded = EventDatabase.load(path)
    assert written == len(database) == len(reloaded)
    assert reloaded.hosts == database.hosts
