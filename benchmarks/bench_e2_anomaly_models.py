"""E2 — the four anomaly-model classes (Queries 1-4 of the paper).

Each query class runs on a focused synthetic workload containing exactly
one planted anomaly; the benchmark times query execution and checks that
the planted anomaly (and nothing else) is reported.  A DBSCAN parameter
sweep reproduces the outlier model's sensitivity ablation.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core import QueryEngine
from repro.events.entities import NetworkEntity, ProcessEntity
from repro.events.event import Event, Operation
from repro.events.stream import ListStream
from repro.queries.demo_queries import (
    outlier_exfiltration,
    rule_c5_data_exfiltration,
    timeseries_network_spike,
    invariant_excel_children,
)
from repro.attack import APTScenario


def _attack_stream():
    return ListStream(APTScenario(start_time=0.0).events())


def _sma_stream():
    proc = ProcessEntity.make("svc.exe", 10, host="db-server")
    conn = NetworkEntity.make("10.0.1.30", "10.0.2.11")
    events = []
    for window in range(6):
        amount = 20000 if window < 5 else 2_000_000
        for k in range(20):
            events.append(Event(subject=proc, operation=Operation.WRITE,
                                obj=conn, timestamp=window * 600 + k * 20,
                                agentid="db-server", amount=amount))
    return ListStream(events)


def _outlier_stream(peers=16, anomaly_amount=6e7):
    sql = ProcessEntity.make("sqlservr.exe", 20, host="db-server")
    events = []
    for index in range(peers):
        conn = NetworkEntity.make("10.0.1.30", f"10.0.2.{10 + index}")
        for k in range(10):
            events.append(Event(subject=sql, operation=Operation.WRITE,
                                obj=conn, timestamp=10 * k + index,
                                agentid="db-server", amount=60_000))
    attacker = NetworkEntity.make("10.0.1.30", "203.0.113.129")
    events.append(Event(subject=sql, operation=Operation.WRITE, obj=attacker,
                        timestamp=500, agentid="db-server",
                        amount=anomaly_amount))
    return ListStream(events)


def _invariant_stream():
    excel = ProcessEntity.make("excel.exe", 30, host="client-01")
    events = []
    for window in range(5):
        child_name = "splwow64.exe" if window < 4 else "cmd.exe"
        child = ProcessEntity.make(child_name, 100 + window, host="client-01")
        events.append(Event(subject=excel, operation=Operation.START,
                            obj=child, timestamp=window * 300 + 5,
                            agentid="client-01"))
    return ListStream(events)


def test_e2_rule_based_model(benchmark):
    """Query 1: multi-event rule detection on the raw attack trace."""
    stream = _attack_stream()
    alerts = benchmark.pedantic(
        lambda: QueryEngine(rule_c5_data_exfiltration()).execute(stream),
        rounds=3, iterations=1)
    assert len(alerts) == 1
    print_table("E2a: rule-based model (Query 1)",
                ("detected process", "destination"),
                [(alerts[0].record["p4"], alerts[0].record["i1"])])


def test_e2_time_series_model(benchmark):
    """Query 2: SMA spike detection."""
    stream = _sma_stream()
    alerts = benchmark.pedantic(
        lambda: QueryEngine(timeseries_network_spike()).execute(stream),
        rounds=3, iterations=1)
    assert len(alerts) == 1
    record = alerts[0].record
    print_table("E2b: time-series SMA model (Query 2)",
                ("process", "current avg", "previous avg"),
                [(record["p"], record["ss[0].avg_amount"],
                  record["ss[1].avg_amount"])])
    assert record["ss[0].avg_amount"] > 10 * record["ss[1].avg_amount"]


def test_e2_invariant_model(benchmark):
    """Query 3: invariant violation after training."""
    stream = _invariant_stream()
    alerts = benchmark.pedantic(
        lambda: QueryEngine(
            invariant_excel_children(training_windows=3,
                                     window_minutes=5)).execute(stream),
        rounds=3, iterations=1)
    assert len(alerts) == 1
    print_table("E2c: invariant model (Query 3)",
                ("parent", "unseen children"),
                [(alerts[0].record["p1"], alerts[0].record["ss.set_proc"])])
    assert "cmd.exe" in alerts[0].record["ss.set_proc"]


def test_e2_outlier_model(benchmark):
    """Query 4: DBSCAN peer comparison."""
    stream = _outlier_stream()
    alerts = benchmark.pedantic(
        lambda: QueryEngine(outlier_exfiltration()).execute(stream),
        rounds=3, iterations=1)
    outliers = {alert.record["i.dstip"] for alert in alerts}
    print_table("E2d: outlier DBSCAN model (Query 4)",
                ("outlier destination", "bytes"),
                [(alert.record["i.dstip"], alert.record["ss.amt"])
                 for alert in alerts])
    assert outliers == {"203.0.113.129"}


def test_e2_dbscan_parameter_ablation():
    """Ablation: DBSCAN eps / min_pts sweep on the outlier workload."""
    rows = []
    for eps in (100_000, 500_000, 5_000_000, 100_000_000):
        for min_pts in (3, 5):
            query = outlier_exfiltration(eps=eps, min_pts=min_pts,
                                         floor_bytes=1_000_000)
            alerts = QueryEngine(query).execute(_outlier_stream())
            detected = any(alert.record["i.dstip"] == "203.0.113.129"
                           for alert in alerts)
            rows.append((eps, min_pts, len(alerts),
                         "yes" if detected else "no"))
    print_table("E2e: DBSCAN parameter ablation",
                ("eps", "min_pts", "alerts", "attacker detected"), rows)
    # The attack volume dwarfs normal traffic: every eps below the anomaly
    # magnitude must isolate it; an absurdly large eps must not.
    assert rows[0][3] == "yes"
    assert rows[-1][3] == "no"
