"""E11 — durable checkpointing overhead and recovery replay time.

PR 5's snapshot subsystem gives the scheduler crash durability: every
``checkpoint_interval`` events the full engine state (window accumulators,
panes, histories, partial sequences, distinct seen-sets, alert ledgers)
is serialized through the versioned JSON codecs and fsynced by the
:class:`~repro.storage.CheckpointStore`.  Durability is only affordable
if the steady-state cost is small, so this experiment measures three
arms over the same multi-query, multi-host workload:

* **baseline** — the scheduler with checkpointing disabled;
* **checkpointed** — the same run writing checkpoints at the default CLI
  interval (10k events); the headline assertion is **< 10% throughput
  overhead** (at full scale — smoke runs are timing noise);
* **recovery** — the run is killed at ~60% of the stream, a fresh
  scheduler restores the latest checkpoint and replays the journal tail;
  recorded as the rate of the *replay* phase, with alert-for-alert
  equality against the uninterrupted run asserted.

Rates land in ``benchmarks/BENCH_e11.json`` via the shared conftest hook
(annotated with ``cpu_count``, as all trajectory files now are).
"""

import random
import tempfile
import time

from benchmarks.conftest import (bench_scale, fresh_stream, print_table,
                                 record_rate)
from repro.core import ConcurrentQueryScheduler
from repro.core.snapshot import resume_events
from repro.events.entities import NetworkEntity, ProcessEntity
from repro.events.event import Event, Operation
from repro.storage import CheckpointStore

#: The default CLI checkpoint interval (events).
CHECKPOINT_INTERVAL = 10000
BATCH = 256
HOSTS = [f"host-{n:02d}" for n in range(12)]

#: A stateful mix: tumbling + sliding aggregation, a sequence and a
#: distinct query, so the snapshot covers every engine component.
QUERIES = [
    ("volume-tumbling", '''
proc p send ip i as evt #time(10)
state ss { t := sum(evt.amount), n := count(evt.amount) } group by evt.agentid
alert ss.t > 200000
return ss.t, ss.n'''),
    ("volume-sliding", '''
proc p send ip i as evt #time(40, 10)
state ss { t := sum(evt.amount), a := avg(evt.amount) } group by evt.agentid
alert ss.t > 800000
return ss.t, ss.a'''),
    ("start-then-send", '''
proc p1["%x.exe"] start proc p2 as evt1
proc p2 send ip i as evt2 #time(30)
with evt1 -> evt2
return p1, p2'''),
    ("distinct-peaks", '''
proc p send ip i as evt #time(10)
state ss { m := max(evt.amount) } group by evt.agentid
alert ss.m > 990
return distinct ss.m'''),
]


def checkpoint_events(count):
    rng = random.Random(23)
    events = []
    for position in range(count):
        host = HOSTS[rng.randrange(len(HOSTS))]
        timestamp = position * 0.01
        if position % 40 == 0:
            events.append(Event(
                subject=ProcessEntity.make("x.exe", pid=1, host=host),
                operation=Operation.START,
                obj=ProcessEntity.make("y.exe", pid=2, host=host),
                timestamp=timestamp, agentid=host))
        else:
            events.append(Event(
                subject=ProcessEntity.make("x.exe", pid=2, host=host),
                operation=Operation.SEND,
                obj=NetworkEntity.make("10.0.1.2", "10.0.0.9", dstport=443),
                timestamp=timestamp, agentid=host,
                amount=float(rng.randrange(100, 1000))))
    return events


def _build(**kwargs):
    scheduler = ConcurrentQueryScheduler(**kwargs)
    for name, text in QUERIES:
        scheduler.add_query(text, name=name)
    return scheduler


def _fingerprints(alerts):
    return sorted((a.query_name, a.timestamp, a.data, repr(a.group_key),
                   a.window_start, a.window_end, a.agentid) for a in alerts)


def _timed_run(scheduler, events):
    start = time.perf_counter()
    scheduler.execute(fresh_stream(events), batch_size=BATCH)
    return time.perf_counter() - start


def test_e11_checkpoint_overhead_and_recovery():
    count = int(80000 * bench_scale())
    # Smoke runs shrink the stream; the interval shrinks with it so the
    # checkpoint and recovery paths still execute.
    interval = max(500, int(CHECKPOINT_INTERVAL * bench_scale()))
    events = checkpoint_events(count)

    baseline = _build()
    baseline_seconds = _timed_run(baseline, events)
    baseline_rate = count / baseline_seconds
    oracle = _fingerprints(baseline.emitted_alerts())

    with tempfile.TemporaryDirectory() as tmp:
        store = CheckpointStore(tmp)
        checkpointed = _build(checkpoint_store=store,
                              checkpoint_interval=interval)
        checkpointed_seconds = _timed_run(checkpointed, events)
        checkpointed_rate = count / checkpointed_seconds
        checkpoints = len(store)
        assert _fingerprints(checkpointed.emitted_alerts()) == oracle

    # Recovery: crash at ~60%, restore the latest checkpoint, replay.
    with tempfile.TemporaryDirectory() as tmp:
        store = CheckpointStore(tmp)
        crashed = _build(checkpoint_store=store,
                         checkpoint_interval=interval)
        crash_at = max(BATCH, int(count * 0.6))
        position = 0
        while position < crash_at:
            crashed.process_events(
                events[position:min(position + BATCH, crash_at)])
            position = min(position + BATCH, crash_at)
        recovered = _build()
        start = time.perf_counter()
        snapshot = store.latest()
        assert snapshot is not None, "no checkpoint before the crash point"
        recovered.restore_state(snapshot)
        cursor = recovered.restored_cursor
        replayed = count - cursor.events_ingested
        recovered.execute(
            fresh_stream([event for event in
                          resume_events(events, cursor)]),
            batch_size=BATCH)
        recovery_seconds = time.perf_counter() - start
        assert _fingerprints(recovered.emitted_alerts()) == oracle

    overhead = (baseline_rate - checkpointed_rate) / baseline_rate
    replay_rate = replayed / recovery_seconds if recovery_seconds else 0.0

    print_table(
        "E11: durable checkpointing (interval "
        f"{interval} events, {count} events, "
        f"{len(QUERIES)} queries)",
        ["arm", "events/s", "notes"],
        [
            ["baseline", f"{baseline_rate:,.0f}", "checkpointing off"],
            ["checkpointed", f"{checkpointed_rate:,.0f}",
             f"{checkpoints} checkpoints kept, "
             f"{overhead * 100:.1f}% overhead"],
            ["recovery replay", f"{replay_rate:,.0f}",
             f"restored + replayed {replayed} events in "
             f"{recovery_seconds:.2f}s"],
        ])

    record_rate("e11", "baseline", baseline_rate)
    record_rate("e11", "checkpointed", checkpointed_rate)
    record_rate("e11", "recovery_replay", replay_rate)

    if bench_scale() >= 1.0:
        assert overhead < 0.10, (
            f"checkpointing cost {overhead * 100:.1f}% throughput at the "
            f"default interval (limit 10%)")
