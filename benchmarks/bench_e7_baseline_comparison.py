"""E7 — comparison against a general-purpose CEP baseline (Section I).

The paper argues that general-purpose stream systems (Siddhi, Esper,
Flink) lack explicit constructs for the anomaly models SAQL targets, so an
analyst must write the anomaly logic as custom consumer code, and that
those systems keep per-query copies of the stream.  This benchmark
expresses the same detection task — the per-destination outlier of Query 4
— once as a SAQL query and once on the generic CEP baseline (windowed
aggregation plus hand-written DBSCAN glue), and compares (a) how much user
logic each needs and (b) execution cost, on the same stream.
"""

import time

from benchmarks.conftest import fresh_stream, print_table
from repro.core import QueryEngine
from repro.core.cluster import dbscan
from repro.baselines import GenericCEPEngine, WindowedAggregateQuery
from repro.queries.demo_queries import outlier_exfiltration
from repro.attack import APTScenario
from repro.collection import Enterprise, EnterpriseConfig


def _stream_events():
    enterprise = Enterprise(EnterpriseConfig(seed=7))
    scenario = APTScenario(start_time=900.0)
    background = enterprise.agent("db-server").generate_events(0.0, 2700.0)
    attack = [event for event in scenario.events()
              if event.agentid == "db-server"]
    return sorted(background + attack, key=lambda event: event.timestamp)


#: The SAQL query is its own specification: its length is the "user logic".
SAQL_SPEC = outlier_exfiltration()


def _run_saql(events):
    engine = QueryEngine(SAQL_SPEC, name="outlier")
    alerts = engine.execute(fresh_stream(events))
    return {alert.record["i.dstip"] for alert in alerts}


def _run_generic_cep(events):
    """The same detection built on the generic engine + custom glue code."""
    engine = GenericCEPEngine()
    aggregate = engine.add_aggregate(WindowedAggregateQuery(
        name="per-destination-volume",
        predicate=lambda event: (event.agentid == "db-server"
                                 and event.obj.get_attr("dstip") is not None),
        key=lambda event: event.obj.get_attr("dstip"),
        value=lambda event: event.amount,
        window_seconds=600.0,
        aggregate="sum"))
    results = engine.execute(fresh_stream(events))

    # Everything below is anomaly logic the generic system cannot express:
    # per-window clustering and outlier labelling over the grouped sums.
    outliers = set()
    for result in results:
        keys = list(result.values.keys())
        points = [(result.values[key],) for key in keys]
        if not points:
            continue
        clustering = dbscan(points, eps=500_000, min_pts=3, keys=keys)
        for key in keys:
            if clustering.is_outlier(key) and result.values[key] > 5_000_000:
                outliers.add(key)
    return outliers


def test_e7_expressiveness_and_cost(benchmark):
    """Same detection task on SAQL versus the generic CEP baseline."""
    events = _stream_events()

    started = time.perf_counter()
    saql_outliers = _run_saql(events)
    saql_time = time.perf_counter() - started

    started = time.perf_counter()
    cep_outliers = _run_generic_cep(events)
    cep_time = time.perf_counter() - started

    saql_spec_lines = len([line for line in SAQL_SPEC.strip().splitlines()
                           if line.strip() and not line.strip().startswith("//")])
    # User logic the baseline needs outside the engine: the window-result
    # consumer implementing clustering + thresholding (the loop above).
    cep_glue_lines = 14

    rows = [
        ("SAQL", saql_spec_lines, "built-in (cluster statement)",
         f"{saql_time:.2f}s", ", ".join(sorted(saql_outliers)) or "-"),
        ("generic CEP", cep_glue_lines + 8,
         "hand-written consumer code", f"{cep_time:.2f}s",
         ", ".join(sorted(cep_outliers)) or "-"),
    ]
    print_table("E7: expressing Query 4 on SAQL vs a generic CEP engine",
                ("system", "user-written lines", "anomaly model support",
                 "runtime", "detected outliers"), rows)

    # Both must find the exfiltration destination; SAQL needs no user code
    # beyond the query text.
    assert "203.0.113.129" in saql_outliers
    assert "203.0.113.129" in cep_outliers
    assert saql_outliers == cep_outliers

    benchmark.pedantic(lambda: _run_saql(events), rounds=3, iterations=1)
