"""E1 — the demonstration scenario (Section III, Fig. 2).

Reproduces the paper's demo result: the 8 SAQL queries deployed over the
enterprise stream detect all five steps of the APT attack (each rule query
fires on its step) and the three advanced anomaly queries flag the attack
behaviour without attack knowledge.  The benchmark times the complete
8-query run over one hour of monitoring data.
"""

from collections import Counter

from benchmarks.conftest import fresh_stream, print_table
from repro.core import ConcurrentQueryScheduler
from repro.queries import DEMO_QUERIES, RULE_QUERY_NAMES, demo_query_names


def _run_all_queries(events):
    scheduler = ConcurrentQueryScheduler()
    for name in demo_query_names():
        scheduler.add_query(DEMO_QUERIES[name], name=name)
    alerts = scheduler.execute(fresh_stream(events))
    return scheduler, alerts


def test_e1_apt_detection_coverage(benchmark, demo_stream):
    """All 8 queries over the attack stream; verifies detection coverage."""
    events = list(demo_stream)

    scheduler, alerts = benchmark.pedantic(
        lambda: _run_all_queries(events), rounds=3, iterations=1)

    counts = Counter(alert.query_name for alert in alerts)
    step_labels = {
        "rule-c1-initial-compromise": "c1 initial compromise",
        "rule-c2-malware-infection": "c2 malware infection",
        "rule-c3-privilege-escalation": "c3 privilege escalation",
        "rule-c4-penetration": "c4 penetration into DB server",
        "rule-c5-data-exfiltration": "c5 data exfiltration",
        "invariant-excel-children": "advanced: invariant (Excel children)",
        "timeseries-network-spike": "advanced: time-series SMA",
        "outlier-exfiltration": "advanced: outlier DBSCAN",
    }
    rows = [(step_labels[name], name,
             "DETECTED" if counts.get(name) else "missed",
             counts.get(name, 0))
            for name in demo_query_names()]
    print_table("E1: APT attack detection coverage (paper: all detected)",
                ("attack behaviour", "query", "result", "alerts"), rows)
    print(f"stream: {len(events)} events; "
          f"{scheduler.stats.queries} queries in "
          f"{scheduler.stats.groups} groups; {len(alerts)} alerts total")

    # The paper's demo detects every step; the reproduction must as well.
    for name in RULE_QUERY_NAMES:
        assert counts.get(name), f"{name} failed to detect its attack step"
    for name in demo_query_names():
        assert counts.get(name, 0) >= 1
