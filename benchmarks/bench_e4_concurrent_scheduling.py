"""E4 — the master-dependent-query scheme (Section II-C).

The paper's efficiency argument: grouping semantically compatible queries
under a master query lets a group share a single copy of the stream data,
so memory (and matching work) does not grow linearly with the number of
concurrent queries.  This benchmark deploys 1-24 compatible database-server
queries with (a) the sharing scheduler and (b) the copy-per-query baseline
and reports stream copies, peak buffered events and pattern evaluations.
"""

import time

import pytest

from benchmarks.conftest import fresh_stream, print_table, record_rate
from repro.baselines import CopyPerQueryExecutor
from repro.core import ConcurrentQueryScheduler
from repro.queries.demo_queries import (
    outlier_exfiltration,
    rule_c5_data_exfiltration,
    timeseries_network_spike,
)


def _query_set(copies):
    queries = []
    for index in range(copies):
        queries.append((f"exfil-{index}", rule_c5_data_exfiltration()))
        queries.append((f"sma-{index}",
                        timeseries_network_spike(floor_bytes=500000 + index)))
        queries.append((f"outlier-{index}",
                        outlier_exfiltration(floor_bytes=5000000 + index)))
    return queries


def _run(runner_factory, queries, events):
    runner = runner_factory()
    for name, text in queries:
        runner.add_query(text, name=name)
    runner.execute(fresh_stream(events))
    return runner


def _run_timed(runner_factory, queries, events):
    """Like :func:`_run`, also returning the execution rate (events/sec)."""
    runner = runner_factory()
    for name, text in queries:
        runner.add_query(text, name=name)
    started = time.perf_counter()
    runner.execute(fresh_stream(events))
    elapsed = time.perf_counter() - started
    rate = len(events) / elapsed if elapsed > 0 else float("inf")
    return runner, rate


def test_e4_data_copy_reduction(benchmark, db_server_events):
    """Stream copies and memory vs number of concurrent queries."""
    rows = []
    for copies in (1, 2, 4, 8):
        queries = _query_set(copies)
        shared, shared_rate = _run_timed(ConcurrentQueryScheduler, queries,
                                         db_server_events)
        baseline, baseline_rate = _run_timed(CopyPerQueryExecutor, queries,
                                             db_server_events)
        record_rate("e4", f"shared-{len(queries)}-queries", shared_rate)
        record_rate("e4", f"copy-per-query-{len(queries)}-queries",
                    baseline_rate)
        rows.append((len(queries),
                     shared.stats.data_copies,
                     baseline.stats.data_copies,
                     shared.stats.peak_buffered_events,
                     baseline.stats.peak_buffered_events,
                     shared.stats.pattern_evaluations,
                     baseline.stats.pattern_evaluations))
    print_table(
        "E4: master-dependent-query scheme vs copy-per-query baseline",
        ("queries", "copies (SAQL)", "copies (base)",
         "peak buffer (SAQL)", "peak buffer (base)",
         "pattern evals (SAQL)", "pattern evals (base)"), rows)

    # Shape check: under sharing the copies and buffered events stay flat
    # while the baseline grows linearly with the number of queries.
    first, last = rows[0], rows[-1]
    assert last[1] == first[1]                      # copies flat
    assert last[2] == last[0]                       # baseline copies = #queries
    assert last[3] == first[3]                      # shared buffer flat
    assert last[4] >= 6 * first[4]                  # baseline buffer grows
    assert last[5] < last[6]                        # fewer evaluations shared

    queries = _query_set(4)
    benchmark.pedantic(
        lambda: _run(ConcurrentQueryScheduler, queries, db_server_events),
        rounds=3, iterations=1)


def test_e4_sharing_does_not_change_results(db_server_events):
    """Ablation: identical alerts with and without the sharing scheme."""
    queries = _query_set(2)
    shared = _run(ConcurrentQueryScheduler, queries, db_server_events)
    isolated = _run(lambda: ConcurrentQueryScheduler(enable_sharing=False),
                    queries, db_server_events)
    shared_alerts = sorted((engine.name, alert.data)
                           for engine in shared.engines
                           for alert in engine.alerts)
    isolated_alerts = sorted((engine.name, alert.data)
                             for engine in isolated.engines
                             for alert in engine.alerts)
    assert shared_alerts == isolated_alerts
