"""E14 — always-on service: ingest throughput, alert latency, drain/restart.

PR 8 wraps the scheduler in a long-running service: a bounded ingestion
queue feeds a background pump, alerts leave through a retrying dispatcher
with a durable delivery ledger, and SIGTERM drains to a checkpoint that a
restarted service resumes from without duplicating or losing alerts.
The service is only worth running always-on if the front door is cheap,
so this experiment measures four arms over the same multi-host workload:

* **direct batch** — ``ConcurrentQueryScheduler.process_events`` over the
  whole stream (the PR-6 baseline the service wraps);
* **service fault-free** — the same stream pushed through
  :class:`~repro.service.SAQLService` (bounded queue, background pump,
  dispatcher delivery).  The headline assertion is **<= 10% throughput
  overhead** vs direct batch (at full scale — smoke runs are noise).
  End-to-end alert latency (event submission -> sink delivery) is
  recorded as p50/p99;
* **drain** — mid-stream SIGTERM-style drain: stop admissions, drain the
  queue, checkpoint, flush the dispatcher.  Recorded as wall seconds;
* **restart** — a fresh service resuming that state dir (manifest ->
  queries, checkpoint -> window state, ledger -> delivery dedupe), then
  finishing the stream with alert parity asserted against the oracle.

Rates land in ``benchmarks/BENCH_e14.json`` via the shared conftest hook
(annotated with latency percentiles and drain/restart seconds, so the
trajectory keeps the service tax visible alongside raw throughput).
"""

import json
import math
import random
import tempfile
import time
from pathlib import Path

from benchmarks.conftest import bench_scale, print_table, record_rate
from repro.core.engine.alerts import CollectingSink
from repro.core.scheduler.concurrent import ConcurrentQueryScheduler
from repro.core.snapshot.codecs import encode_alert
from repro.events.entities import NetworkEntity, ProcessEntity
from repro.events.event import Event, Operation
from repro.service import CallbackDeliverySink, SAQLService, ServiceConfig

HOSTS = [f"host-{n:02d}" for n in range(12)]
DT = 0.01  # stream seconds per event

QUERIES = {
    "ops/volume-tumbling": '''
proc p send ip i as evt #time(10)
state ss { t := sum(evt.amount), n := count(evt.amount) } group by evt.agentid
alert ss.t > 30000
return ss.t, ss.n''',
    "ops/volume-sliding": '''
proc p send ip i as evt #time(40, 10)
state ss { t := sum(evt.amount), a := avg(evt.amount) } group by evt.agentid
alert ss.t > 150000
return ss.t, ss.a''',
}

SERVICE_CONFIG = dict(queue_capacity=8192, queue_policy="block",
                      batch_size=512, max_batch_delay=0.005,
                      checkpoint_interval=100000)


def service_events(count):
    rng = random.Random(47)
    events = []
    for position in range(count):
        host = HOSTS[rng.randrange(len(HOSTS))]
        events.append(Event(
            subject=ProcessEntity.make("x.exe", pid=2, host=host),
            operation=Operation.SEND,
            obj=NetworkEntity.make("10.0.1.2", "10.0.0.9", dstport=443),
            timestamp=position * DT, agentid=host,
            amount=float(rng.randrange(100, 1000)),
            event_id=position + 1))
    return events


def batch_oracle(events):
    sink = CollectingSink()
    scheduler = ConcurrentQueryScheduler(sink=sink)
    for name, text in QUERIES.items():
        scheduler.add_query(text, name=name)
    started = time.perf_counter()
    scheduler.process_events(events)
    scheduler.finish()
    elapsed = time.perf_counter() - started
    return elapsed, sorted(json.dumps(encode_alert(a), sort_keys=True)
                           for a in sink)


def build_service(state_dir=None, sinks=None):
    tenant_names = {}
    service = SAQLService(state_dir=state_dir, sinks=sinks or [],
                          config=ServiceConfig(**SERVICE_CONFIG))
    service.start(resume=False)
    for scoped, text in QUERIES.items():
        tenant, name = scoped.split("/", 1)
        service.register_query(tenant, name, text)
        tenant_names[scoped] = (tenant, name)
    return service


def settle(service, ingested, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        stats = service.stats()
        if (stats["scheduler"]["events_ingested"] >= ingested
                and stats["queue"]["depth"] == 0
                and stats["sinks"]["lag"] == 0):
            return
        time.sleep(0.005)
    raise AssertionError("service did not settle in time")


def percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, math.ceil(q * len(sorted_values)) - 1))
    return sorted_values[index]


def test_e14_service_overhead_latency_and_restart():
    count = int(60000 * bench_scale())
    events = service_events(count)

    batch_seconds, oracle = batch_oracle(events)
    batch_rate = count / batch_seconds
    assert oracle, "workload must actually alert"

    # --- Arm 2: fault-free service run, end-to-end alert latency. ----
    # An alert's window can close only once the first event at or past
    # its window_end has been submitted; latency is delivery wall time
    # minus that submission's wall time.
    submit_walls = [0.0] * count
    deliveries = []  # (wall_time, window_end)
    fault_free_alerts = []

    def on_delivery(alert):
        deliveries.append((time.perf_counter(), alert.window_end))
        fault_free_alerts.append(alert)

    service = build_service(sinks=[CallbackDeliverySink(on_delivery)])
    started = time.perf_counter()
    for position, event in enumerate(events):
        submit_walls[position] = time.perf_counter()
        service.submit_event(event)
    settle(service, count)
    service_seconds = time.perf_counter() - started
    service_rate = count / service_seconds
    service.drain(finish_stream=True, reason="eof")
    assert sorted(json.dumps(encode_alert(a), sort_keys=True)
                  for a in fault_free_alerts) == oracle

    latencies = sorted(
        wall - submit_walls[trigger]
        for wall, window_end in deliveries
        for trigger in (int(math.ceil(window_end / DT)),)
        if trigger < count)  # drain-flushed alerts have no trigger event
    p50 = percentile(latencies, 0.50)
    p99 = percentile(latencies, 0.99)
    overhead = (batch_rate - service_rate) / batch_rate

    # --- Arms 3+4: mid-stream drain, then resume and finish. ---------
    cutover = count // 2
    with tempfile.TemporaryDirectory() as tmp:
        state_dir = Path(tmp) / "state"
        delivered = []
        first = build_service(state_dir=state_dir,
                              sinks=[CallbackDeliverySink(
                                  lambda a: delivered.append(a))])
        first.submit_events(events[:cutover])
        settle(first, cutover)
        drain_started = time.perf_counter()
        first.drain(reason="sigterm")
        drain_seconds = time.perf_counter() - drain_started

        restart_started = time.perf_counter()
        second = SAQLService(state_dir=state_dir,
                             sinks=[CallbackDeliverySink(
                                 lambda a: delivered.append(a))],
                             config=ServiceConfig(**SERVICE_CONFIG))
        second.start(resume=True)
        restart_seconds = time.perf_counter() - restart_started
        second.submit_events(events)  # full re-send: cursor drops dupes
        settle(second, count)
        second.drain(finish_stream=True, reason="eof")

        fingerprints = sorted(json.dumps(encode_alert(a), sort_keys=True)
                              for a in delivered)
        assert fingerprints == oracle, (
            "drain/restart lost or duplicated alerts")

    print_table(
        f"E14: always-on service ({len(QUERIES)} queries, {count} events, "
        f"{len(HOSTS)} hosts)",
        ["arm", "events/s", "notes"],
        [
            ["direct batch", f"{batch_rate:,.0f}", "the PR-6 baseline"],
            ["service fault-free", f"{service_rate:,.0f}",
             f"{overhead * 100:.1f}% overhead, alert latency "
             f"p50 {p50 * 1000:.1f}ms / p99 {p99 * 1000:.1f}ms"],
            ["drain", "-", f"{drain_seconds:.3f}s to checkpoint + flush"],
            ["restart", "-",
             f"{restart_seconds:.3f}s to resume {cutover} events of "
             f"state; alert parity held"],
        ])

    record_rate("e14", "direct_batch", batch_rate)
    record_rate("e14", "service_fault_free", service_rate,
                overhead_percent=round(overhead * 100, 2),
                alert_latency_p50_ms=round(p50 * 1000, 3),
                alert_latency_p99_ms=round(p99 * 1000, 3))
    record_rate("e14", "drain", count / max(drain_seconds, 1e-9),
                drain_seconds=round(drain_seconds, 4))
    record_rate("e14", "restart", count / max(restart_seconds, 1e-9),
                restart_seconds=round(restart_seconds, 4),
                resumed_events=cutover)

    if bench_scale() >= 1.0:
        assert overhead <= 0.10, (
            f"service front door cost {overhead * 100:.1f}% throughput "
            f"on a fault-free run (limit 10%)")
