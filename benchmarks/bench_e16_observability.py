"""E16 — observability overhead: the metrics layer must be (nearly) free.

PR 10 threads one :class:`repro.obs.MetricRegistry` through the whole
pipeline — batch timers, per-stage histograms, per-query alert counters,
watermark-lag gauges — and the design bet is that a handful of
``perf_counter`` reads per *batch* (never per event) keeps the cost in
the noise.  This experiment prices that bet on the E12 workload (the E4
query triple deployed host-by-host, 24 queries over a 16-host enterprise
stream, batch 512): the same stream is executed with metrics enabled
(the default) and with a disabled registry (every hook a no-op, clock
reads skipped), interleaved best-of-N per arm so machine drift hits both
arms equally.

Acceptance: the enabled arm keeps >= 95% of the disabled arm's
events/second (<= 5% overhead).  The ratio assertion only fires on
full-sized streams (``SAQL_BENCH_SCALE >= 1``) — CI's smoke run still
validates dispatch, alert parity between the arms, and that the enabled
run actually populated the key metric families.

Rates land in ``benchmarks/BENCH_e16.json`` via the shared conftest
hook, with the overhead percentage under ``"arms"`` so the trajectory
file answers "what does observability cost" by itself.
"""

import time

import pytest

from benchmarks.bench_e8_sharded_scaling import _fingerprints
from benchmarks.bench_e12_columnar_scaling import (BATCH_SIZE,
                                                   WATCHED_HOSTS,
                                                   _workload_arm)
from benchmarks.conftest import (bench_scale, fresh_stream, print_table,
                                 record_rate)
from repro.collection import Enterprise, EnterpriseConfig
from repro.core import ConcurrentQueryScheduler
from repro.obs import MetricRegistry

#: Query count for both arms (the e12 mid-point, past the sharing knee).
QUERY_COUNT = 24
#: Timed repeats per arm; arms are interleaved and the best rate kept.
REPEATS = 3
#: Full-scale acceptance bar: metrics-on keeps >= 95% of metrics-off.
MAX_OVERHEAD_PCT = 5.0

#: Histogram families the enabled arm must populate on this workload.
EXPECTED_FAMILIES = ("saql_events_total", "saql_batches_total",
                     "saql_batch_seconds", "saql_stage_seconds",
                     "saql_query_batch_seconds")


@pytest.fixture(scope="module")
def wide_enterprise():
    """Sixteen hosts; the arm watches 8 (the E12 topology, verbatim)."""
    return Enterprise(EnterpriseConfig(seed=7, extra_desktops=9,
                                       extra_web_servers=3))


@pytest.fixture(scope="module")
def wide_events(wide_enterprise):
    """Thirty minutes of background events across all 16 hosts."""
    return wide_enterprise.background_events(0.0, 1800.0 * bench_scale())


def _timed_run(queries, events, enabled):
    """One execution; returns (rate, alerts, snapshot-or-None)."""
    scheduler = ConcurrentQueryScheduler(
        metrics=MetricRegistry(enabled=enabled))
    for name, text in queries:
        scheduler.add_query(text, name=name)
    stream = fresh_stream(events)
    started = time.perf_counter()
    alerts = scheduler.execute(stream, batch_size=BATCH_SIZE)
    elapsed = time.perf_counter() - started
    rate = len(events) / elapsed if elapsed > 0 else float("inf")
    return rate, alerts, scheduler.metrics_snapshot()


def test_e16_observability_overhead(benchmark, wide_events,
                                    wide_enterprise):
    """Events/second with the registry enabled vs disabled."""
    queries = _workload_arm(wide_enterprise.hosts[:WATCHED_HOSTS],
                            QUERY_COUNT)
    full_scale = bench_scale() >= 1.0

    best = {True: 0.0, False: 0.0}
    alerts = {}
    snapshot = None
    # Interleave the arms (off, on, off, on, ...) so clock drift and
    # cache warming hit both arms symmetrically.
    for _ in range(REPEATS):
        for enabled in (False, True):
            rate, run_alerts, run_snapshot = _timed_run(
                queries, wide_events, enabled)
            alerts[enabled] = run_alerts
            if rate > best[enabled]:
                best[enabled] = rate
            if enabled:
                snapshot = run_snapshot

    # Observation must not change behavior: alert-for-alert parity.
    assert _fingerprints(alerts[True]) == _fingerprints(alerts[False])

    # The enabled run really observed the pipeline.
    families = snapshot["families"]
    for name in EXPECTED_FAMILIES:
        assert name in families, name
    assert (families["saql_events_total"]["series"][0]["value"]
            == len(wide_events))
    stages = {entry["labels"]["stage"]
              for entry in families["saql_stage_seconds"]["series"]}
    assert {"columnar_pivot", "predicate_eval", "pattern_match"} <= stages

    overhead_pct = (1.0 - best[True] / best[False]) * 100.0
    record_rate("e16", "metrics-off", best[False],
                queries=QUERY_COUNT, metrics="disabled")
    record_rate("e16", "metrics-on", best[True],
                queries=QUERY_COUNT, metrics="enabled",
                overhead_pct=round(overhead_pct, 2),
                max_overhead_pct=MAX_OVERHEAD_PCT)

    print_table(
        "E16: observability overhead "
        f"({len(wide_events)} events, {QUERY_COUNT} queries, "
        f"batch={BATCH_SIZE})",
        ("arm", "events/s", "overhead"),
        [("metrics off", f"{best[False]:,.0f}", "--"),
         ("metrics on", f"{best[True]:,.0f}", f"{overhead_pct:.1f}%")])

    if full_scale:
        assert overhead_pct <= MAX_OVERHEAD_PCT, (
            f"metrics overhead {overhead_pct:.1f}% exceeds "
            f"{MAX_OVERHEAD_PCT}%")

    benchmark.pedantic(
        lambda: _timed_run(queries, wide_events, True),
        rounds=1, iterations=1)
