"""Authoring the four anomaly-model classes with the programmatic builders.

The paper's SAQL language covers four classes of anomaly models.  Besides
writing SAQL text directly, the library provides builder classes
(:mod:`repro.core.models`) that assemble each class programmatically — the
route a dashboard or a policy compiler would take.  This example builds one
query of each class, prints the generated SAQL, and runs them over a
simulated database-server workload with an injected anomaly.

Run with::

    python examples/custom_anomaly_models.py
"""

from repro.collection import Enterprise, EnterpriseConfig
from repro.core import QueryEngine
from repro.core.models import (
    InvariantQueryBuilder,
    OutlierQueryBuilder,
    RuleQueryBuilder,
    TimeSeriesQueryBuilder,
)
from repro.events import Event, ListStream, NetworkEntity, Operation, ProcessEntity


def build_queries():
    """One query per anomaly-model class, via the builders."""
    rule = (RuleQueryBuilder("rule-dump-and-send")
            .on_agent("db-server")
            .pattern("p1", ["start"], "proc", "p2",
                     subject_pattern="%cmd.exe", object_pattern="%osql.exe",
                     alias="evt1")
            .pattern("p3", ["read", "write"], "ip", "i1",
                     subject_pattern="%sbblv.exe", alias="evt2")
            .in_order("evt1", "evt2")
            .returning("p1", "p2", "p3", "i1"))

    sma = (TimeSeriesQueryBuilder("sma-network-volume")
           .on_agent("db-server")
           .operations("write")
           .window_minutes(10)
           .history(3)
           .metric("avg", "amount")
           .minimum(500_000))

    invariant = (InvariantQueryBuilder("invariant-sql-children")
                 .on_agent("db-server")
                 .parent("%services.exe")
                 .window_seconds(300)
                 .training(3))

    outlier = (OutlierQueryBuilder("outlier-per-destination")
               .on_agent("db-server")
               .operations("read", "write")
               .window_minutes(10)
               .metric("sum", "amount")
               .group_by("i.dstip")
               .clustering("DBSCAN", 500_000, 3, distance="ed")
               .minimum(5_000_000))

    return [rule, sma, invariant, outlier]


def build_stream():
    """Thirty minutes of database-server background plus a volume anomaly."""
    enterprise = Enterprise(EnterpriseConfig(seed=23))
    background = enterprise.agent("db-server").generate_events(0.0, 1800.0)

    # Inject an abnormal transfer: an unknown process ships 80 MB out.
    malware = ProcessEntity.make("exfil.exe", 6000, host="db-server")
    attacker = NetworkEntity.make("10.0.1.30", "198.51.100.77", dstport=443)
    injected = [
        Event(subject=malware, operation=Operation.WRITE, obj=attacker,
              timestamp=1500.0 + 20 * index, agentid="db-server",
              amount=8_000_000)
        for index in range(10)
    ]
    return ListStream(background + injected)


def main() -> None:
    stream = build_stream()
    for builder in build_queries():
        saql_text = builder.to_saql()
        print(f"=== {builder.name} ===")
        print(saql_text)
        engine = QueryEngine(builder.build(), name=builder.name)
        alerts = engine.execute(stream)
        print(f"-> {len(alerts)} alert(s)")
        for alert in alerts[:3]:
            print("  ", alert.describe())
        print()


if __name__ == "__main__":
    main()
