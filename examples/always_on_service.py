"""The always-on SAQL service: ingest, faults, drain, resume — exactly once.

This example runs the full PR-8 service lifecycle in one process:

1. start a :class:`~repro.service.SAQLService` with a durable state dir,
   a file sink and a *flaky* webhook sink (every delivery fails twice
   before succeeding, exercising the retry/backoff path);
2. serve it over the JSON-lines TCP transport and drive it with
   :class:`~repro.service.ServiceClient` — register per-tenant queries,
   ingest events, read live stats;
3. drain mid-stream (what the ``saql serve`` SIGTERM handler does):
   admissions stop, the queue drains, window state is checkpointed,
   in-flight alerts flush;
4. restart with ``resume=True`` and re-send the *entire* stream — the
   resume cursor drops the already-processed half, the delivery ledger
   suppresses re-delivery, and the drained file ends up identical to a
   fault-free batch run;
5. on the final drain, print the per-stage latency summary from the
   service's shared metrics registry (PR 10's ``repro.obs``) — the
   same series the ``metrics`` transport op exposes to scrapers.

Run with::

    python examples/always_on_service.py
"""

import json
import tempfile
from pathlib import Path

from repro.core import ConcurrentQueryScheduler
from repro.core.engine.alerts import CollectingSink
from repro.core.snapshot.codecs import encode_alert
from repro.events.entities import NetworkEntity, ProcessEntity
from repro.events.event import Event, Operation
from repro.events.serialization import event_to_dict
from repro.service import (FileSink, SAQLService, ServiceClient,
                           ServiceConfig, ServiceTransport, WebhookSink,
                           read_alert_file)
from repro.testing import FlakySinkTransport

EXFIL_QUERY = """
proc p send ip i as evt #time(10)
state ss { sent := sum(evt.amount) } group by evt.agentid
alert ss.sent > 100
return ss.sent"""


def make_stream(count):
    """A deterministic two-host stream of network sends."""
    return [Event(subject=ProcessEntity.make("x.exe", pid=2,
                                             host=("web", "db")[i % 2]),
                  operation=Operation.SEND,
                  obj=NetworkEntity.make("10.0.0.1", "10.0.0.2",
                                         dstport=443),
                  timestamp=float(i), agentid=("web", "db")[i % 2],
                  amount=50.0, event_id=i + 1)
            for i in range(count)]


def batch_oracle(events):
    """What a fault-free batch run of the same query produces."""
    sink = CollectingSink()
    scheduler = ConcurrentQueryScheduler(sink=sink)
    scheduler.add_query(EXFIL_QUERY, name="secops/exfil")
    scheduler.process_events(events)
    scheduler.finish()
    return [encode_alert(alert) for alert in sink]


def build(state_dir, alert_file, flaky):
    service = SAQLService(
        state_dir=state_dir,
        sinks=[FileSink(alert_file),
               WebhookSink("http://alerts.example/hook", transport=flaky)],
        config=ServiceConfig(batch_size=32, max_batch_delay=0.01,
                             checkpoint_interval=50))
    return service


def _percentile(bounds, series, quantile):
    """Upper-bound percentile from snapshot bucket counts (Prometheus
    style: the answer is the bucket bound the quantile falls under)."""
    target = quantile * series["count"]
    cumulative = 0
    for bound, bucket in zip(bounds, series["buckets"]):
        cumulative += bucket
        if cumulative >= target:
            return bound
    return series["max"]  # overflow bucket: report the observed max


def print_stage_summary(snapshot) -> None:
    """Per-stage latency table from a metrics snapshot."""
    family = snapshot["families"].get("saql_stage_seconds")
    if not family:
        return
    print("per-stage latency (seconds):")
    print(f"  {'stage':<20}{'count':>7}{'p50':>12}{'p99':>12}{'max':>12}")
    for series in sorted(family["series"],
                         key=lambda entry: entry["labels"]["stage"]):
        p50 = _percentile(family["bounds"], series, 0.50)
        p99 = _percentile(family["bounds"], series, 0.99)
        print(f"  {series['labels']['stage']:<20}"
              f"{series['count']:>7}{p50:>12.6f}{p99:>12.6f}"
              f"{series['max']:>12.6f}")


def main() -> None:
    events = make_stream(120)
    oracle = batch_oracle(events)
    print(f"stream: {len(events)} events; fault-free batch oracle: "
          f"{len(oracle)} alerts\n")

    with tempfile.TemporaryDirectory() as tmp:
        state_dir = Path(tmp) / "state"
        alert_file = Path(tmp) / "alerts.jsonl"
        flaky = FlakySinkTransport(fail_first=2)  # every alert retries twice

        # ---- Run 1: serve, ingest 70 of 120 events, drain. ----------
        service = build(state_dir, alert_file, flaky).start()
        transport = ServiceTransport(service).start()
        host, port = transport.address
        print(f"run 1: serving on {host}:{port}")

        with ServiceClient(host, port) as client:
            scoped = client.check("register", tenant="secops",
                                  name="exfil", query=EXFIL_QUERY)["scoped"]
            print(f"run 1: registered {scoped!r}")
            counts = client.ingest_many(
                [event_to_dict(e) for e in events[:70]])
            print(f"run 1: ingested {counts}")
            stats = client.check("stats")["stats"]
            print(f"run 1: sink metrics {json.dumps(stats['sinks'])}")

        transport.shutdown()
        report = service.drain(reason="sigterm")  # mid-stream: no finish
        print(f"run 1: drained in {report.duration_seconds:.2f}s, "
              f"{report.delivered} deliveries, checkpoint written\n")

        # ---- Run 2: resume, re-send EVERYTHING, finish the stream. --
        service = build(state_dir, alert_file, flaky)
        service.start(resume=True)  # manifest + checkpoint + ledger
        counts = service.submit_events([event_to_dict(e) for e in events])
        print(f"run 2: full re-send -> {counts} "
              "(the resume cursor dropped run 1's events)")
        report = service.drain(finish_stream=True, reason="eof")
        print(f"run 2: drained in {report.duration_seconds:.2f}s, "
              f"{report.delivered} deliveries\n")
        print_stage_summary(service.metrics_snapshot())
        print()

        # ---- Exactly-once parity. -----------------------------------
        delivered = read_alert_file(alert_file)
        assert delivered == oracle, "alert parity broken!"
        webhook = sorted(json.dumps(e, sort_keys=True)
                         for e in flaky.delivered)
        assert webhook == sorted(json.dumps(e, sort_keys=True)
                                 for e in oracle)
        print(f"parity: {len(delivered)} alerts in the file sink — "
              "identical to the fault-free batch run, duplicate-free,")
        print(f"parity: the flaky webhook ({flaky.attempts} attempts) "
              "converged to the same alert set.")


if __name__ == "__main__":
    main()
