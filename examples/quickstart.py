"""Quickstart: write a SAQL query and run it over a stream of events.

This example builds a tiny stream of system monitoring events by hand (no
enterprise simulation), expresses the paper's Query 1 (database dump +
exfiltration) in SAQL, and runs it with a single :class:`QueryEngine`.

Run with::

    python examples/quickstart.py
"""

from repro import QueryEngine, parse_query
from repro.events import (
    Event,
    FileEntity,
    ListStream,
    NetworkEntity,
    Operation,
    ProcessEntity,
)

#: The paper's Query 1: data exfiltration from the database server.
EXFILTRATION_QUERY = '''
agentid = "db-server"
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
proc p4["%sbblv.exe"] read file f1 as evt3
proc p4 read || write ip i1[dstip="203.0.113.129"] as evt4
with evt1 -> evt2 -> evt3 -> evt4
return distinct p1, p2, p3, f1, p4, i1
'''


def build_events():
    """Hand-craft the four events of the exfiltration, plus benign noise."""
    host = "db-server"
    cmd = ProcessEntity.make("cmd.exe", 4100, host=host)
    osql = ProcessEntity.make("osql.exe", 4101, host=host)
    sqlservr = ProcessEntity.make("sqlservr.exe", 4102, host=host)
    malware = ProcessEntity.make("sbblv.exe", 4103, host=host)
    dump = FileEntity.make(r"D:\backup\backup1.dmp", host=host)
    attacker = NetworkEntity.make("10.0.1.30", "203.0.113.129", dstport=443)
    log_file = FileEntity.make(r"D:\data\enterprise.ldf", host=host)

    events = [
        # Benign background: the database appending to its log.
        Event(subject=sqlservr, operation=Operation.WRITE, obj=log_file,
              timestamp=5.0, agentid=host, amount=64_000),
        # The attack: dump the database and ship it out.
        Event(subject=cmd, operation=Operation.START, obj=osql,
              timestamp=10.0, agentid=host),
        Event(subject=sqlservr, operation=Operation.WRITE, obj=dump,
              timestamp=20.0, agentid=host, amount=50_000_000),
        Event(subject=malware, operation=Operation.READ, obj=dump,
              timestamp=30.0, agentid=host, amount=50_000_000),
        Event(subject=malware, operation=Operation.WRITE, obj=attacker,
              timestamp=40.0, agentid=host, amount=50_000_000),
    ]
    return ListStream(events)


def main() -> None:
    query = parse_query(EXFILTRATION_QUERY)
    print(f"query class: {query.model_kind}; "
          f"{len(query.patterns)} event patterns")

    engine = QueryEngine(query, name="data-exfiltration")
    alerts = engine.execute(build_events())

    print(f"processed {engine.events_processed} events, "
          f"{len(alerts)} alert(s)")
    for alert in alerts:
        print(" ", alert.describe())


if __name__ == "__main__":
    main()
