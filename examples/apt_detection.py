"""The full demonstration scenario: detect a 5-step APT attack in real time.

Reproduces Section III of the paper end to end:

1. simulate the enterprise of Fig. 2 (client, mail server, database server,
   domain controller) producing benign background monitoring events;
2. inject the 5-step APT attack (initial compromise -> malware infection ->
   privilege escalation -> penetration -> data exfiltration);
3. deploy the 8 demo SAQL queries (5 rule-based + 3 advanced anomaly
   queries) over the aggregated stream with the concurrent scheduler;
4. print the alerts in detection order and the detection coverage per
   attack step.

Run with::

    python examples/apt_detection.py
"""

from collections import Counter

from repro.attack import APTScenario
from repro.collection import Enterprise, EnterpriseConfig
from repro.core import ConcurrentQueryScheduler
from repro.queries import DEMO_QUERIES, RULE_QUERY_NAMES, demo_query_names

BACKGROUND_SECONDS = 3600.0
ATTACK_START = 1800.0


def main() -> None:
    enterprise = Enterprise(EnterpriseConfig(seed=7))
    scenario = APTScenario(start_time=ATTACK_START)
    stream = enterprise.event_feed(0.0, BACKGROUND_SECONDS,
                                   injected=scenario.events())
    print(f"simulated {len(stream.events)} events from "
          f"{len(enterprise.hosts)} hosts; "
          f"attack injected at t={ATTACK_START:.0f}s")

    scheduler = ConcurrentQueryScheduler()
    for name in demo_query_names():
        scheduler.add_query(DEMO_QUERIES[name], name=name)
    print(f"deployed {scheduler.stats.queries} queries in "
          f"{scheduler.stats.groups} compatibility groups\n")

    alerts = scheduler.execute(stream)

    print("alerts (detection order):")
    for alert in sorted(alerts, key=lambda a: a.timestamp):
        print(" ", alert.describe())

    print("\ndetection coverage per attack step:")
    counts = Counter(alert.query_name for alert in alerts)
    step_for_query = {
        "rule-c1-initial-compromise": "c1 initial compromise",
        "rule-c2-malware-infection": "c2 malware infection",
        "rule-c3-privilege-escalation": "c3 privilege escalation",
        "rule-c4-penetration": "c4 penetration into DB server",
        "rule-c5-data-exfiltration": "c5 data exfiltration",
    }
    for name in RULE_QUERY_NAMES:
        status = "DETECTED" if counts.get(name) else "missed"
        print(f"  {step_for_query[name]:34s} {status}")
    advanced = [name for name in demo_query_names()
                if name not in RULE_QUERY_NAMES]
    print("\nadvanced anomaly queries (no attack knowledge):")
    for name in advanced:
        status = "DETECTED" if counts.get(name) else "no alert"
        print(f"  {name:34s} {status}")

    if scheduler.error_reporter.has_errors():
        print("\nerrors during execution:")
        for record in scheduler.error_reporter.records:
            print(" ", record.describe())


if __name__ == "__main__":
    main()
