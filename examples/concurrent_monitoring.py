"""Concurrent query execution and the master-dependent-query scheme.

The paper's engine groups semantically compatible queries so they share a
single copy of the stream data (Section II-C).  This example registers a
growing number of database-server queries, runs them over the same stream
with (a) the sharing scheduler and (b) the copy-per-query baseline, and
prints the stream copies, buffered events and pattern evaluations of each —
the efficiency argument of the paper in miniature (see also benchmark E4).

Run with::

    python examples/concurrent_monitoring.py
"""

import time

from repro.baselines import CopyPerQueryExecutor
from repro.collection import Enterprise, EnterpriseConfig
from repro.core import ConcurrentQueryScheduler
from repro.queries.demo_queries import (
    outlier_exfiltration,
    rule_c5_data_exfiltration,
    timeseries_network_spike,
)


def query_set(copies: int):
    """Build ``3 * copies`` database-server queries (all compatible)."""
    queries = []
    for index in range(copies):
        queries.append((f"exfil-{index}", rule_c5_data_exfiltration()))
        queries.append((f"sma-{index}",
                        timeseries_network_spike(floor_bytes=500000 + index)))
        queries.append((f"outlier-{index}",
                        outlier_exfiltration(floor_bytes=5000000 + index)))
    return queries


def run(runner, queries, events):
    """Register the queries, run them over the events, return the elapsed time."""
    from repro.events import ListStream

    for name, text in queries:
        runner.add_query(text, name=name)
    started = time.perf_counter()
    runner.execute(ListStream(events, presorted=True))
    return time.perf_counter() - started


def main() -> None:
    enterprise = Enterprise(EnterpriseConfig(seed=7))
    events = enterprise.agent("db-server").generate_events(0.0, 1800.0)
    print(f"stream: {len(events)} db-server events over 30 minutes\n")

    header = (f"{'queries':>8} | {'mode':<14} | {'stream copies':>13} | "
              f"{'peak buffered':>13} | {'pattern evals':>13} | "
              f"{'seconds':>8}")
    print(header)
    print("-" * len(header))
    for copies in (1, 2, 4, 8):
        queries = query_set(copies)
        shared = ConcurrentQueryScheduler()
        baseline = CopyPerQueryExecutor()
        shared_time = run(shared, queries, events)
        baseline_time = run(baseline, queries, events)

        print(f"{len(queries):>8} | {'SAQL sharing':<14} | "
              f"{shared.stats.data_copies:>13} | "
              f"{shared.stats.peak_buffered_events:>13} | "
              f"{shared.stats.pattern_evaluations:>13} | "
              f"{shared_time:>8.2f}")
        print(f"{len(queries):>8} | {'copy-per-query':<14} | "
              f"{baseline.stats.data_copies:>13} | "
              f"{baseline.stats.peak_buffered_events:>13} | "
              f"{baseline.stats.pattern_evaluations:>13} | "
              f"{baseline_time:>8.2f}")


if __name__ == "__main__":
    main()
