"""Alert delivery: retrying sinks, the delivery ledger, dead letters.

The engine's :class:`~repro.core.engine.alerts.AlertSink` contract is
synchronous and best-effort; a live service needs more: delivery to
flaky external systems (files on full disks, webhooks behind load
balancers) with **retry + timeout + jittered exponential backoff**, a
**dead-letter ledger** for alerts that exhaust their retry budget, and
**exactly-once delivery across restarts**.

Exactly-once is the composition of two ledgers:

* the engines' *alert ledgers* (PR 5) travel inside every checkpoint, so
  a restarted service knows every alert the pre-restart run emitted;
* the service's :class:`DeliveryLedger` durably records every
  ``(sink, alert)`` pair actually delivered.

On resume the service replays the checkpointed alert ledgers through the
dispatcher; the delivery ledger filters out what already reached each
sink, leaving exactly the undelivered remainder — no duplicates, no
losses, per-query order preserved (the dispatcher delivers serially in
emission order).

Alerts are identified by :func:`alert_key`, the sha256 of their
canonical snapshot encoding, so identity survives the
checkpoint/restore round-trip byte-for-byte.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import urllib.error
import urllib.request
from collections import deque
from pathlib import Path
from time import perf_counter
from typing import (Any, Callable, Deque, Dict, Iterable, List, Optional,
                    Sequence, Set, Tuple, Union)

from repro.core.engine.alerts import Alert, AlertSink
from repro.core.retry import RetryPolicy
from repro.core.snapshot.codecs import encode_alert
from repro.obs import MetricRegistry


def alert_key(alert: Alert) -> str:
    """A stable content identity for one alert (sha256 over canonical JSON).

    Built on the snapshot codec, so the key of a live alert equals the
    key of the same alert restored from a checkpoint ledger.
    """
    canonical = json.dumps(encode_alert(alert), sort_keys=True,
                           separators=(",", ":"), allow_nan=False)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class SinkDeliveryError(RuntimeError):
    """A (possibly transient) delivery failure the dispatcher may retry."""


class DeliveryLedger:
    """Durable record of every ``(sink, alert)`` pair delivered so far.

    Backed by an append-only JSON-lines file (one ``{"sink": ..., "key":
    ...}`` object per delivery, flushed per record); without a path the
    ledger is in-memory only — delivery is still deduplicated within the
    process, but a restart cannot tell what the previous run delivered.
    Unparseable tail lines (a torn write from a hard kill) are skipped
    on load: the worst case is re-delivering the torn record's alert,
    i.e. graceful drains are exactly-once and hard kills degrade to
    at-least-once, never to loss.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None):
        self._path = Path(path) if path is not None else None
        self._seen: Set[Tuple[str, str]] = set()
        self._handle = None
        if self._path is not None:
            if self._path.exists():
                with open(self._path, "r", encoding="utf-8") as handle:
                    for line in handle:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            entry = json.loads(line)
                            self._seen.add((entry["sink"], entry["key"]))
                        except (json.JSONDecodeError, KeyError, TypeError):
                            continue
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self._path, "a", encoding="utf-8")
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._seen)

    def delivered(self, sink_name: str, key: str) -> bool:
        """True when this sink already received this alert."""
        with self._lock:
            return (sink_name, key) in self._seen

    def record(self, sink_name: str, key: str) -> None:
        """Durably mark one delivery (flushed before returning)."""
        with self._lock:
            if (sink_name, key) in self._seen:
                return
            self._seen.add((sink_name, key))
            if self._handle is not None:
                self._handle.write(json.dumps(
                    {"sink": sink_name, "key": key}) + "\n")
                self._handle.flush()

    def sync(self) -> None:
        """fsync the ledger file (drain-time durability barrier)."""
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                os.fsync(self._handle.fileno())

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                os.fsync(self._handle.fileno())
                self._handle.close()
                self._handle = None


# -- concrete delivery sinks --------------------------------------------------

class FileSink(AlertSink):
    """Appends one JSON line per alert (the snapshot encoding)."""

    def __init__(self, path: Union[str, Path]):
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = None
        self._lock = threading.Lock()

    @property
    def name(self) -> str:
        return f"file:{self._path}"

    def emit(self, alert: Alert) -> None:
        with self._lock:
            try:
                if self._handle is None:
                    self._handle = open(self._path, "a", encoding="utf-8")
                self._handle.write(json.dumps(encode_alert(alert),
                                              allow_nan=False) + "\n")
                self._handle.flush()
            except OSError as error:
                raise SinkDeliveryError(
                    f"file sink {self._path} failed: {error}") from error

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


def read_alert_file(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read a :class:`FileSink` output file back (for tests/operators)."""
    alerts = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                alerts.append(json.loads(line))
    return alerts


#: A webhook transport: (url, payload_bytes, timeout) -> None, raising on
#: failure.  Injectable so tests (and the fault harness) can simulate
#: timeouts and 5xx responses without a live HTTP server.
WebhookTransport = Callable[[str, bytes, Optional[float]], None]


def _urllib_transport(url: str, payload: bytes,
                      timeout: Optional[float]) -> None:
    request = urllib.request.Request(
        url, data=payload, headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            status = getattr(response, "status", 200)
            if status >= 300:
                raise SinkDeliveryError(f"webhook returned {status}")
    except (urllib.error.URLError, OSError, TimeoutError) as error:
        raise SinkDeliveryError(f"webhook {url} failed: {error}") from error


class WebhookSink(AlertSink):
    """POSTs each alert as JSON to an HTTP endpoint.

    ``transport`` defaults to a stdlib urllib POST; tests inject a
    callable (see ``repro.testing.FlakySinkTransport``) to exercise the
    retry path deterministically.
    """

    def __init__(self, url: str, timeout: Optional[float] = 5.0,
                 transport: Optional[WebhookTransport] = None):
        self._url = url
        self._timeout = timeout
        self._transport = transport or _urllib_transport

    @property
    def name(self) -> str:
        return f"webhook:{self._url}"

    def emit(self, alert: Alert) -> None:
        payload = json.dumps(encode_alert(alert),
                             allow_nan=False).encode("utf-8")
        self._transport(self._url, payload, self._timeout)


class CallbackDeliverySink(AlertSink):
    """Adapts a plain callable into a named delivery sink."""

    def __init__(self, callback: Callable[[Alert], None],
                 name: str = "callback"):
        self._callback = callback
        self._name = name

    @property
    def name(self) -> str:
        return f"callback:{self._name}"

    def emit(self, alert: Alert) -> None:
        self._callback(alert)


# -- the dispatcher -----------------------------------------------------------

class SinkDispatcher:
    """Serial, retrying, exactly-once delivery of alerts to every sink.

    One daemon thread drains a FIFO of emitted alerts; each alert is
    offered to each sink in turn under the :class:`RetryPolicy` (jittered
    exponential backoff between attempts, deterministic per alert key),
    skipping sinks the :class:`DeliveryLedger` shows already have it.
    Exhausted retries dead-letter the alert for that sink — recorded to
    the dead-letter file *without* marking the ledger, so the next
    resume pass retries it — and delivery moves on; one dead sink never
    blocks the others or the scheduler.

    Serial delivery is deliberate: it preserves per-query emission order
    per sink, which the exactly-once contract promises.
    """

    def __init__(self, sinks: Sequence[AlertSink],
                 ledger: Optional[DeliveryLedger] = None,
                 retry: Optional[RetryPolicy] = None,
                 dead_letter_path: Optional[Union[str, Path]] = None,
                 metrics: Optional[MetricRegistry] = None):
        self._sinks = list(sinks)
        self._ledger = ledger if ledger is not None else DeliveryLedger()
        self._retry = retry or RetryPolicy()
        self._dead_letter_path = (Path(dead_letter_path)
                                  if dead_letter_path is not None else None)
        self._metrics = (metrics if metrics is not None
                         else MetricRegistry(enabled=False))
        # End-to-end alert latency terminating at the sink acknowledgement
        # (the scheduler records the companion ``point="emit"`` series).
        self._metric_e2e_ack = self._metrics.histogram(
            "saql_alert_e2e_seconds",
            "End-to-end alert latency from event time to the named point.",
            point="sink_ack")
        self._sink_metric_cache: Dict[str, Tuple[Any, Any, Any]] = {}
        # Dead-letter ledger depth survives restarts: the file persists,
        # so seed the count from what previous runs left behind.
        self._dead_letter_depth = 0
        if (self._dead_letter_path is not None
                and self._dead_letter_path.exists()):
            with open(self._dead_letter_path, "r",
                      encoding="utf-8") as handle:
                self._dead_letter_depth = sum(
                    1 for line in handle if line.strip())
        self._queue: Deque[Tuple[Alert, str, float]] = deque()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._stopping = False
        self._in_flight = False
        self._thread: Optional[threading.Thread] = None
        # Delivery accounting (lock-protected).
        self._submitted = 0
        self._delivered = 0
        self._duplicates_skipped = 0
        self._retries = 0
        self._dead_lettered = 0
        self._last_delivery_wall: Optional[float] = None

    @property
    def ledger(self) -> DeliveryLedger:
        return self._ledger

    @property
    def sinks(self) -> List[AlertSink]:
        return list(self._sinks)

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(target=self._run,
                                        name="saql-sink-dispatcher",
                                        daemon=True)
        self._thread.start()

    def submit(self, alert: Alert) -> None:
        """Enqueue one alert for delivery (non-blocking; emission order)."""
        entry = (alert, alert_key(alert), time.monotonic())
        with self._lock:
            self._submitted += 1
            self._queue.append(entry)
            self._wake.notify()

    def resubmit(self, alerts: Iterable[Alert]) -> int:
        """Replay a checkpoint's alert ledger through delivery (resume).

        Already-delivered alerts are skipped per sink via the delivery
        ledger; returns how many alerts were enqueued.
        """
        count = 0
        for alert in alerts:
            self.submit(alert)
            count += 1
        return count

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Block until every queued alert has been attempted (or timeout)."""
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        with self._lock:
            while self._queue or self._in_flight:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(timeout=remaining)
            return True

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        """Stop the dispatcher thread (pending alerts stay queued)."""
        with self._lock:
            self._stopping = True
            self._wake.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def _run(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._stopping:
                    self._wake.wait(timeout=0.25)
                if self._stopping and not self._queue:
                    self._idle.notify_all()
                    return
                alert, key, enqueued = self._queue.popleft()
                self._in_flight = True
            try:
                self._deliver(alert, key)
            finally:
                with self._lock:
                    self._in_flight = False
                    if not self._queue:
                        self._idle.notify_all()

    def _sink_metrics(self, sink_name: str) -> Tuple[Any, Any, Any]:
        cached = self._sink_metric_cache.get(sink_name)
        if cached is None:
            cached = (
                self._metrics.histogram(
                    "saql_sink_delivery_seconds",
                    "Per-attempt sink delivery latency (failures included).",
                    sink=sink_name),
                self._metrics.counter(
                    "saql_sink_retries_total",
                    "Delivery attempts retried after a sink failure.",
                    sink=sink_name),
                self._metrics.counter(
                    "saql_sink_dead_letters_total",
                    "Alerts dead-lettered after exhausting the retry budget.",
                    sink=sink_name),
            )
            self._sink_metric_cache[sink_name] = cached
        return cached

    def _deliver(self, alert: Alert, key: str) -> None:
        metrics_on = self._metrics.enabled
        for sink in self._sinks:
            if self._ledger.delivered(sink.name, key):
                with self._lock:
                    self._duplicates_skipped += 1
                continue
            delivery_seconds, retry_counter, _ = self._sink_metrics(
                sink.name)
            # Deterministic per-alert jitter stream: the retry cadence of
            # a given alert reproduces across runs and restarts.
            delays = self._retry.delays(seed=int(key[:8], 16))
            last_error: Optional[Exception] = None
            for attempt in range(self._retry.max_attempts):
                attempt_started = perf_counter() if metrics_on else 0.0
                try:
                    sink.emit(alert)
                    delivery_seconds.observe(
                        perf_counter() - attempt_started)
                    self._ledger.record(sink.name, key)
                    with self._lock:
                        self._delivered += 1
                        self._last_delivery_wall = time.monotonic()
                    if metrics_on:
                        self._metric_e2e_ack.observe(
                            max(0.0, time.time() - alert.timestamp))
                    last_error = None
                    break
                except Exception as error:
                    delivery_seconds.observe(
                        perf_counter() - attempt_started)
                    last_error = error
                    delay = next(delays, None)
                    if delay is None:
                        break
                    retry_counter.inc()
                    with self._lock:
                        self._retries += 1
                    time.sleep(delay)
            if last_error is not None:
                self._dead_letter(alert, key, sink, last_error)

    def _dead_letter(self, alert: Alert, key: str, sink: AlertSink,
                     error: Exception) -> None:
        with self._lock:
            self._dead_lettered += 1
            self._dead_letter_depth += 1
        self._sink_metrics(sink.name)[2].inc()
        if self._dead_letter_path is None:
            return
        entry = {
            "sink": sink.name,
            "key": key,
            "error": str(error),
            "alert": encode_alert(alert),
        }
        self._dead_letter_path.parent.mkdir(parents=True, exist_ok=True)
        with open(self._dead_letter_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, allow_nan=False) + "\n")
            handle.flush()

    def dead_letter_depth(self) -> int:
        """Entries in the dead-letter ledger, prior runs included."""
        with self._lock:
            return self._dead_letter_depth

    def metrics(self) -> Dict[str, Any]:
        """Snapshot the delivery counters (JSON-safe).

        ``lag`` is the number of alerts accepted but not yet attempted —
        the health endpoint's "sink lag"; ``oldest_pending_seconds`` ages
        the head of that backlog.  ``dead_lettered`` counts this run;
        ``dead_letter_depth`` is the persistent ledger's total.
        """
        with self._lock:
            now = time.monotonic()
            oldest = (now - self._queue[0][2]) if self._queue else 0.0
            return {
                "sinks": [sink.name for sink in self._sinks],
                "submitted": self._submitted,
                "delivered": self._delivered,
                "duplicates_skipped": self._duplicates_skipped,
                "retries": self._retries,
                "dead_lettered": self._dead_lettered,
                "dead_letter_depth": self._dead_letter_depth,
                "lag": len(self._queue) + (1 if self._in_flight else 0),
                "oldest_pending_seconds": oldest,
                "ledger_entries": len(self._ledger),
            }
