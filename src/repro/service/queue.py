"""The bounded ingestion queue: the service's backpressure front door.

A live SAQL service sits between network producers (many, bursty) and
one scheduler pump (steady).  Without an explicit bound the gap between
the two turns into unbounded memory; with a naive bound it turns into
silent drops.  :class:`IngestionQueue` makes the gap a first-class,
observable object:

* **bounded** — at most ``capacity`` events are ever held;
* **explicit policy** — a full queue either *blocks* the producer
  (``policy="block"``, optionally bounded by ``block_timeout`` so a dead
  pump cannot wedge producers forever) or *sheds* the newest event
  (``policy="shed"``), and every admission outcome is counted;
* **observable** — depth, high-water mark, accepted/shed/offered
  counts, total producer blocked time and slow-consumer detection
  (the pump letting the queue sit full for longer than
  ``slow_consumer_after`` seconds) surface through :meth:`metrics` into
  the service's health endpoint.

The consumer side (:meth:`get_batch`) collects up to a batch worth of
events, waiting briefly for the first one, which gives the scheduler
pump its batch-ingestion amortization without adding latency when the
stream idles.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.obs import MetricRegistry

#: Admission policies a queue can be built with.
QUEUE_POLICIES = ("block", "shed")


class QueueClosed(RuntimeError):
    """Raised by :meth:`IngestionQueue.put` after :meth:`close`."""


class IngestionQueue:
    """A bounded MPSC event queue with explicit backpressure accounting."""

    def __init__(self, capacity: int = 4096, policy: str = "block",
                 block_timeout: Optional[float] = None,
                 slow_consumer_after: float = 1.0,
                 metrics: Optional[MetricRegistry] = None):
        if capacity < 1:
            raise ValueError("queue capacity must be at least 1")
        if policy not in QUEUE_POLICIES:
            raise ValueError(f"unknown queue policy {policy!r}; expected "
                             f"one of {QUEUE_POLICIES}")
        if block_timeout is not None and block_timeout <= 0:
            raise ValueError("block timeout must be positive")
        if slow_consumer_after <= 0:
            raise ValueError("slow-consumer threshold must be positive")
        self.capacity = capacity
        self.policy = policy
        self._block_timeout = block_timeout
        self._slow_after = slow_consumer_after
        self._items: Deque[Any] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        # Admission accounting (all under the lock).
        self._offered = 0
        self._accepted = 0
        self._shed = 0
        self._high_water = 0
        self._blocked_waits = 0
        self._blocked_seconds = 0.0
        # Slow-consumer detection: how long the queue has been sitting at
        # capacity.  ``_full_since`` is the monotonic time the queue
        # *became* full (None while it has room); a full spell longer
        # than the threshold counts one stall when it ends — and
        # :meth:`metrics` reports an ongoing overlong spell live.
        self._full_since: Optional[float] = None
        self._stalls = 0
        self._longest_stall = 0.0
        # Only blocked admissions are observed, so the histogram reads as
        # "when backpressure bites, how long do producers wait".
        self._wait_histogram = (metrics.histogram(
            "saql_queue_admission_wait_seconds",
            "Seconds producers spent blocked on a full ingestion queue.")
            if metrics is not None and metrics.enabled else None)

    # -- producer side -------------------------------------------------------

    def put(self, item: Any) -> bool:
        """Offer one event; True when admitted, False when shed.

        Under ``policy="block"`` a full queue blocks until the pump makes
        room (or ``block_timeout`` elapses, after which the event is shed
        so a dead consumer degrades to counted shedding instead of a
        producer deadlock).  Under ``policy="shed"`` a full queue sheds
        immediately.  Raises :class:`QueueClosed` once the service is
        draining.
        """
        with self._lock:
            if self._closed:
                raise QueueClosed("ingestion queue is closed (draining)")
            self._offered += 1
            if len(self._items) >= self.capacity:
                self._note_full_locked()
                if self.policy == "shed":
                    self._shed += 1
                    return False
                if not self._wait_for_room_locked():
                    self._shed += 1
                    return False
            self._items.append(item)
            depth = len(self._items)
            if depth > self._high_water:
                self._high_water = depth
            if depth >= self.capacity:
                self._note_full_locked()
            self._accepted += 1
            self._not_empty.notify()
            return True

    def _wait_for_room_locked(self) -> bool:
        """Block until the queue has room; False on timeout/close."""
        self._blocked_waits += 1
        started = time.monotonic()
        deadline = (started + self._block_timeout
                    if self._block_timeout is not None else None)
        try:
            while len(self._items) >= self.capacity and not self._closed:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._not_full.wait(timeout=remaining)
            if self._closed:
                raise QueueClosed("ingestion queue closed while blocked")
            return True
        finally:
            waited = time.monotonic() - started
            self._blocked_seconds += waited
            if self._wait_histogram is not None:
                self._wait_histogram.observe(waited)

    # -- consumer side -------------------------------------------------------

    def get_batch(self, max_events: int,
                  timeout: Optional[float] = 0.05) -> List[Any]:
        """Collect up to ``max_events`` queued events.

        Waits up to ``timeout`` seconds for the first event (so an idle
        stream costs one short wait per loop, not a spin), then drains
        whatever is immediately available up to the cap.  Returns an
        empty list on timeout — callers distinguish idle from done via
        :attr:`closed` and :meth:`__len__`.
        """
        if max_events < 1:
            raise ValueError("batch size must be at least 1")
        with self._lock:
            if not self._items and not self._closed:
                self._not_empty.wait(timeout=timeout)
            batch: List[Any] = []
            while self._items and len(batch) < max_events:
                batch.append(self._items.popleft())
            if batch:
                self._note_room_locked()
                self._not_full.notify_all()
            return batch

    # -- lifecycle / introspection -------------------------------------------

    def close(self) -> None:
        """Stop admissions; blocked producers wake with :class:`QueueClosed`.

        Already-queued events stay for the pump to drain.
        """
        with self._lock:
            self._closed = True
            self._note_room_locked()
            self._not_full.notify_all()
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def _note_full_locked(self) -> None:
        if self._full_since is None:
            self._full_since = time.monotonic()

    def _note_room_locked(self) -> None:
        if self._full_since is not None:
            spell = time.monotonic() - self._full_since
            if spell >= self._slow_after:
                self._stalls += 1
            if spell > self._longest_stall:
                self._longest_stall = spell
            self._full_since = None

    def metrics(self) -> Dict[str, Any]:
        """Snapshot the admission/backpressure counters (JSON-safe)."""
        with self._lock:
            full_for = (time.monotonic() - self._full_since
                        if self._full_since is not None else 0.0)
            return {
                "capacity": self.capacity,
                "policy": self.policy,
                "depth": len(self._items),
                "high_water": self._high_water,
                "offered": self._offered,
                "accepted": self._accepted,
                "shed": self._shed,
                "blocked_waits": self._blocked_waits,
                "blocked_seconds": self._blocked_seconds,
                "consumer_stalls": self._stalls,
                "longest_stall_seconds": max(self._longest_stall, full_for),
                "slow_consumer": (full_for >= self._slow_after),
                "closed": self._closed,
            }
