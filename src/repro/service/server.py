"""The always-on SAQL service core: ingestion, control plane, drain/resume.

:class:`SAQLService` turns the batch scheduler into a long-running
process.  It owns:

* a bounded :class:`~repro.service.queue.IngestionQueue` (the
  backpressure front door) drained by one *pump* thread that feeds the
  scheduler in batches;
* a :class:`~repro.core.scheduler.concurrent.ConcurrentQueryScheduler`
  with runtime query registration/removal, per-query quarantine and
  periodic checkpointing;
* a :class:`~repro.service.tenants.TenantRegistry` scoping queries per
  tenant with quotas, persisted as a restart manifest;
* a :class:`~repro.service.sinks.SinkDispatcher` delivering alerts to
  the configured sinks with retry/backoff, a dead-letter ledger and the
  delivery ledger that makes delivery exactly-once across restarts.

**Graceful drain** (SIGTERM/SIGINT, or the ``drain`` control op) runs
checkpoint-then-drain: admissions stop, the pump finishes the queued
backlog, the scheduler state is checkpointed (open windows intact —
a restarted service resumes them), pending alerts are flushed to the
sinks and the delivery ledger is synced.  **Resume** inverts it: the
manifest re-registers every tenant query in order, the latest checkpoint
restores the engines, the checkpointed alert ledgers replay through the
delivery ledger (delivering exactly the undelivered remainder), and the
resume cursor drops re-sent events the pre-restart run already
processed.

The transport layer (:mod:`repro.service.transport`) and the CLI
(``saql serve``) are thin shells over this class, so tests can drive the
whole lifecycle in-process.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core import SAQLError
from repro.core.engine.alerts import Alert, AlertSink, CallbackSink
from repro.core.retry import RetryPolicy
from repro.core.scheduler.concurrent import ConcurrentQueryScheduler
from repro.events.event import Event
from repro.events.serialization import event_from_dict
from repro.obs import MetricRegistry, StageTimers
from repro.service.queue import IngestionQueue, QueueClosed
from repro.service.sinks import DeliveryLedger, SinkDispatcher
from repro.service.tenants import (TenantQuota, TenantRegistry, scoped_name,
                                   split_scoped)
from repro.storage.checkpoints import CheckpointStore
from repro.storage.segments import SegmentStore

#: Service lifecycle states (monotonic).
SERVICE_STATES = ("created", "serving", "draining", "stopped")


class ServiceError(RuntimeError):
    """A control-plane operation failed."""


class ServiceClosed(ServiceError):
    """The service is draining or stopped; no new work is accepted."""


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one :class:`SAQLService` instance."""

    #: Bounded ingestion queue capacity (events).
    queue_capacity: int = 4096
    #: Admission policy on a full queue: "block" or "shed".
    queue_policy: str = "block"
    #: Cap on how long a blocked producer waits before the event sheds
    #: (None = wait indefinitely; a dead pump then relies on drain).
    block_timeout: Optional[float] = None
    #: Seconds the queue may sit full before the pump counts as slow.
    slow_consumer_after: float = 1.0
    #: Events per scheduler batch (the pump's amortization unit).
    batch_size: int = 256
    #: Seconds the pump waits for the first event of a batch.
    max_batch_delay: float = 0.05
    #: Columnar batch execution (PR 6) on the service scheduler.
    columnar: bool = True
    #: Per-query fatal-error budget before quarantine (None = fail fast).
    quarantine_errors: Optional[int] = 3
    #: Events between checkpoints (with a state directory).
    checkpoint_interval: int = 10000
    #: Checkpoint record format: "full" dumps every time, "diff" writes
    #: deltas against a periodic full base (cost tracks state churn).
    checkpoint_mode: str = "full"
    #: Deltas between full-base rebases in diff mode.
    checkpoint_rebase: int = 8
    #: Sink delivery retry policy (attempts, timeout, backoff).
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Default per-tenant quota.
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    #: Seconds drain waits for the pump and then the sink flush.
    drain_timeout: float = 30.0
    #: Metrics collection (PR 10): one shared registry spans scheduler,
    #: queue, sinks and the pump; off hands out no-op metrics.
    metrics: bool = True
    #: Journal ingested events into a :class:`SegmentStore` (under
    #: ``state_dir/events``, or in memory without a state directory),
    #: surfacing the store's :class:`StoreStats` in ``stats()``.
    journal_events: bool = False

    def __post_init__(self):
        if self.batch_size < 1:
            raise ValueError("batch size must be at least 1")
        if self.max_batch_delay <= 0:
            raise ValueError("max batch delay must be positive")
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint interval must be at least 1")
        if self.checkpoint_mode not in ("full", "diff"):
            raise ValueError("checkpoint mode must be 'full' or 'diff'")
        if self.checkpoint_rebase < 1:
            raise ValueError("checkpoint rebase interval must be at least 1")
        if self.drain_timeout <= 0:
            raise ValueError("drain timeout must be positive")


@dataclass(frozen=True)
class DrainReport:
    """What one graceful drain did (also the CLI's exit summary)."""

    reason: str
    finished_stream: bool
    duration_seconds: float
    events_drained: int
    checkpointed: bool
    delivered: int
    dead_lettered: int
    undelivered: int


class SAQLService:
    """A long-running, drainable SAQL query service over one scheduler."""

    def __init__(self, state_dir: Optional[Union[str, Path]] = None,
                 sinks: Sequence[AlertSink] = (),
                 config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self._store: Optional[CheckpointStore] = None
        ledger_path = dead_letter_path = None
        if self.state_dir is not None:
            self.state_dir.mkdir(parents=True, exist_ok=True)
            self._store = CheckpointStore(
                self.state_dir / "checkpoints",
                mode=self.config.checkpoint_mode,
                rebase_interval=self.config.checkpoint_rebase)
            ledger_path = self.state_dir / "delivery-ledger.jsonl"
            dead_letter_path = self.state_dir / "dead-letters.jsonl"
        self._registry = TenantRegistry(
            default_quota=self.config.default_quota)
        # One registry spans every service component, so the `metrics`
        # transport op exposes scheduler stages, queue waits, sink
        # delivery and pump batches as one coherent snapshot.
        self.metrics = MetricRegistry(enabled=self.config.metrics)
        self._stage_timers = StageTimers(self.metrics)
        self._event_store: Optional[SegmentStore] = None
        if self.config.journal_events:
            store_dir = (self.state_dir / "events"
                         if self.state_dir is not None else None)
            self._event_store = SegmentStore(store_dir,
                                             metrics=self.metrics)
        self._dispatcher = SinkDispatcher(
            sinks, ledger=DeliveryLedger(ledger_path),
            retry=self.config.retry, dead_letter_path=dead_letter_path,
            metrics=self.metrics)
        self._queue = IngestionQueue(
            capacity=self.config.queue_capacity,
            policy=self.config.queue_policy,
            block_timeout=self.config.block_timeout,
            slow_consumer_after=self.config.slow_consumer_after,
            metrics=self.metrics)
        self._scheduler = ConcurrentQueryScheduler(
            sink=CallbackSink(self._dispatcher.submit),
            checkpoint_store=self._store,
            checkpoint_interval=(self.config.checkpoint_interval
                                 if self._store is not None else None),
            columnar=self.config.columnar,
            quarantine_errors=self.config.quarantine_errors,
            metrics=self.metrics)
        #: Guards every scheduler access (the pump holds it per batch, so
        #: control-plane changes land exactly at batch boundaries).
        self._scheduler_lock = threading.RLock()
        self._state = "created"
        self._state_lock = threading.Lock()
        self._pump_thread: Optional[threading.Thread] = None
        self._drain_requested = threading.Event()
        self._drain_finish_stream = False
        self._started_at: Optional[float] = None
        self._resume_cursor = None
        self._resumed_alerts = 0
        # Service-level ingestion accounting (pre-queue).
        self._submitted = 0
        self._duplicates_dropped = 0
        self._rejected_closed = 0
        self._count_lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------------

    @property
    def state(self) -> str:
        return self._state

    @property
    def scheduler(self) -> ConcurrentQueryScheduler:
        return self._scheduler

    @property
    def registry(self) -> TenantRegistry:
        return self._registry

    @property
    def dispatcher(self) -> SinkDispatcher:
        return self._dispatcher

    def _manifest_path(self) -> Optional[Path]:
        if self.state_dir is None:
            return None
        return self.state_dir / "manifest.json"

    def start(self, resume: bool = False) -> "SAQLService":
        """Start serving; with ``resume`` restore the previous run first.

        Resume order matters: manifest registrations (same queries, same
        order) → checkpoint restore → alert-ledger replay through the
        delivery ledger → pump start.  Without a state directory
        ``resume`` is an error; without a checkpoint it degrades to a
        fresh start (manifest queries still register).
        """
        if self._state != "created":
            raise ServiceError(f"service already {self._state}")
        if resume:
            self._resume_previous_run()
        self._dispatcher.start()
        self._pump_thread = threading.Thread(target=self._pump,
                                             name="saql-service-pump",
                                             daemon=True)
        self._state = "serving"
        self._started_at = time.monotonic()
        self._pump_thread.start()
        return self

    def _resume_previous_run(self) -> None:
        if self.state_dir is None:
            raise ServiceError("resume requires a state directory")
        manifest = self._manifest_path()
        if manifest is not None and manifest.exists():
            restored = TenantRegistry.load_manifest(
                manifest, default_quota=self.config.default_quota)
            for entry in restored.entries():
                self._registry.register(entry.tenant, entry.name,
                                        entry.query)
                self._scheduler.add_query(entry.query, name=entry.scoped)
        snapshot = self._store.latest() if self._store is not None else None
        if snapshot is None:
            return
        try:
            self._scheduler.restore_state(snapshot)
        except ValueError as error:
            raise ServiceError(f"cannot resume: {error}") from error
        self._resume_cursor = self._scheduler.restored_cursor
        # Exactly-once delivery: replay the checkpointed alert ledgers;
        # the delivery ledger filters what the previous run delivered.
        self._resumed_alerts = self._dispatcher.resubmit(
            self._scheduler.emitted_alerts())

    # -- control plane --------------------------------------------------------

    def register_query(self, tenant: str, name: str, query: str) -> str:
        """Register one tenant query at runtime; returns its scoped name."""
        if self._state in ("draining", "stopped"):
            raise ServiceClosed("service is draining; no new queries")
        with self._scheduler_lock:
            entry = self._registry.register(tenant, name, query)
            try:
                self._scheduler.add_query(query, name=entry.scoped)
            except SAQLError:
                self._registry.remove(tenant, name)
                raise
            self._persist_manifest()
        return entry.scoped

    def remove_query(self, tenant: str, name: str,
                     flush: bool = True) -> List[Alert]:
        """Remove one tenant query at runtime.

        With ``flush`` the removed engine's open windows close now and
        their alerts deliver (through the normal sink path); without it
        they are abandoned.  Returns the flush alerts.
        """
        with self._scheduler_lock:
            self._registry.remove(tenant, name)
            engine = self._scheduler.remove_query(scoped_name(tenant, name))
            alerts = engine.finish() if flush else []
            self._persist_manifest()
        return alerts

    def _persist_manifest(self) -> None:
        path = self._manifest_path()
        if path is not None:
            self._registry.save_manifest(path)

    # -- ingestion ------------------------------------------------------------

    def submit_event(self, event: Union[Event, Dict[str, Any]]) -> str:
        """Offer one event; returns the admission outcome.

        ``"accepted"`` — queued; ``"shed"`` — rejected by the
        backpressure policy (counted); ``"duplicate"`` — dropped because
        the resume cursor shows the pre-restart run already processed it.
        Raises :class:`ServiceClosed` while draining/stopped.
        """
        if isinstance(event, dict):
            try:
                event = event_from_dict(event)
            except (KeyError, ValueError, TypeError) as error:
                raise ServiceError(f"malformed event: {error}") from error
        with self._count_lock:
            self._submitted += 1
        cursor = self._resume_cursor
        if cursor is not None and cursor.covers(event):
            with self._count_lock:
                self._duplicates_dropped += 1
            return "duplicate"
        try:
            accepted = self._queue.put(event)
        except QueueClosed:
            with self._count_lock:
                self._rejected_closed += 1
            raise ServiceClosed("service is draining; ingestion closed")
        return "accepted" if accepted else "shed"

    def submit_events(self, events) -> Dict[str, int]:
        """Offer many events; returns admission counts per outcome."""
        counts = {"accepted": 0, "shed": 0, "duplicate": 0}
        for event in events:
            counts[self.submit_event(event)] += 1
        return counts

    # -- the pump -------------------------------------------------------------

    def _pump(self) -> None:
        batch_size = self.config.batch_size
        delay = self.config.max_batch_delay
        metrics_on = self.metrics.enabled
        while True:
            batch = self._queue.get_batch(batch_size, timeout=delay)
            if batch:
                pump_started = perf_counter() if metrics_on else 0.0
                # The engines expect timestamp order within a batch;
                # network arrival is only roughly ordered.  Cross-batch
                # disorder remains and takes the late-event path.
                batch.sort(key=lambda event: (event.timestamp,
                                              event.event_id))
                if self._event_store is not None:
                    self._event_store.append_many(batch)
                with self._scheduler_lock:
                    self._scheduler.process_events(batch)
                if metrics_on:
                    self._stage_timers.observe(
                        "pump_batch", perf_counter() - pump_started)
            elif self._queue.closed and not len(self._queue):
                return

    # -- drain / shutdown -----------------------------------------------------

    def request_drain(self, finish_stream: bool = False) -> None:
        """Ask for a graceful drain (signal-handler safe, idempotent)."""
        self._drain_finish_stream = (self._drain_finish_stream
                                     or finish_stream)
        self._drain_requested.set()

    @property
    def drain_requested(self) -> bool:
        return self._drain_requested.is_set()

    def wait_for_drain_request(self, timeout: Optional[float]
                               = None) -> bool:
        """Block until someone asks for a drain (the serve loop's wait)."""
        return self._drain_requested.wait(timeout=timeout)

    def drain(self, finish_stream: Optional[bool] = None,
              reason: str = "drain") -> DrainReport:
        """Gracefully stop: drain the queue, checkpoint, flush delivery.

        With ``finish_stream`` the scheduler also flushes still-open
        windows (end-of-stream semantics: their close alerts deliver
        now); without it open windows are checkpointed as-is so a
        restarted service resumes them — the restart-safe default.
        """
        with self._state_lock:
            if self._state == "stopped":
                return self._last_drain  # type: ignore[attr-defined]
            if self._state not in ("serving",):
                raise ServiceError(f"cannot drain a {self._state} service")
            self._state = "draining"
        if finish_stream is None:
            finish_stream = self._drain_finish_stream
        self._drain_requested.set()
        started = time.monotonic()
        backlog = len(self._queue)
        self._queue.close()
        if self._pump_thread is not None:
            self._pump_thread.join(timeout=self.config.drain_timeout)
        checkpointed = False
        with self._scheduler_lock:
            if finish_stream:
                self._scheduler.finish()
            if self._store is not None:
                self._scheduler.checkpoint_now()
                checkpointed = True
            self._persist_manifest()
        if self._event_store is not None:
            # Seal so a restart replays segments, not a long journal.
            self._event_store.seal_tail()
            self._event_store.close()
        self._dispatcher.flush(timeout=self.config.drain_timeout)
        self._dispatcher.stop()
        self._dispatcher.ledger.sync()
        metrics = self._dispatcher.metrics()
        self._state = "stopped"
        report = DrainReport(
            reason=reason,
            finished_stream=finish_stream,
            duration_seconds=time.monotonic() - started,
            events_drained=backlog,
            checkpointed=checkpointed,
            delivered=metrics["delivered"],
            dead_lettered=metrics["dead_lettered"],
            undelivered=metrics["lag"],
        )
        self._last_drain = report
        return report

    # -- observability --------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """The cheap liveness answer."""
        payload = {
            "ok": self._state in ("serving", "draining"),
            "state": self._state,
            "uptime_seconds": (time.monotonic() - self._started_at
                               if self._started_at is not None else 0.0),
            "dead_letter_depth": self._dispatcher.dead_letter_depth(),
        }
        if self._event_store is not None:
            store = self._event_store.stats()
            payload["event_store"] = {
                "total_events": store.total_events,
                "sealed_segments": store.sealed_segments,
            }
        return payload

    def metrics_snapshot(self) -> Optional[Dict[str, Any]]:
        """The shared registry's snapshot, or None when metrics are off."""
        if not self.metrics.enabled:
            return None
        return self.metrics.snapshot()

    def stats(self) -> Dict[str, Any]:
        """The full health/stats payload (JSON-safe).

        Exposes the scheduler's :class:`SchedulerStats`, queue depth and
        backpressure counters, sink lag and delivery counters, and the
        recovery/quarantine state — everything the ISSUE's health
        endpoint names — plus per-tenant rollups.
        """
        with self._scheduler_lock:
            scheduler_stats = asdict(self._scheduler.stats)
            # Metric snapshots have their own exposition op; keep the
            # stats payload lean.
            scheduler_stats.pop("metrics_snapshot", None)
            quarantined = dict(self._scheduler.quarantined)
            error_rows = self._scheduler.error_reporter.per_query()
            slow_queries = self._scheduler.slow_queries()
        tenants: Dict[str, Dict[str, Any]] = {}
        for entry in self._registry.entries():
            info = tenants.setdefault(entry.tenant,
                                      {"queries": 0, "quarantined": []})
            info["queries"] += 1
        for scoped in quarantined:
            tenant, name = split_scoped(scoped)
            info = tenants.setdefault(tenant,
                                      {"queries": 0, "quarantined": []})
            info["quarantined"].append(name)
        with self._count_lock:
            ingestion = {
                "submitted": self._submitted,
                "duplicates_dropped": self._duplicates_dropped,
                "rejected_while_draining": self._rejected_closed,
            }
        return {
            "health": self.health(),
            "ingestion": ingestion,
            "queue": self._queue.metrics(),
            "sinks": self._dispatcher.metrics(),
            "scheduler": scheduler_stats,
            "slow_queries": slow_queries,
            "event_store": (asdict(self._event_store.stats())
                            if self._event_store is not None else None),
            "quarantined": {name: detail.get("errors", 0)
                            for name, detail in quarantined.items()},
            "query_errors": error_rows,
            "tenants": tenants,
            "resumed": {
                "from_checkpoint": self._resume_cursor is not None,
                "replayed_ledger_alerts": self._resumed_alerts,
            },
        }
