"""The always-on SAQL service (PR 8).

Turns the batch scheduler into a long-running server: a backpressured
ingestion front door (:mod:`repro.service.queue`), runtime multi-tenant
query management (:mod:`repro.service.tenants`), retrying exactly-once
alert delivery (:mod:`repro.service.sinks`), the drain/resume service
core (:mod:`repro.service.server`) and a JSON-lines TCP transport
(:mod:`repro.service.transport`).  The CLI front end is ``saql serve``.
"""

from repro.service.queue import QUEUE_POLICIES, IngestionQueue, QueueClosed
from repro.service.server import (SERVICE_STATES, DrainReport, SAQLService,
                                  ServiceClosed, ServiceConfig, ServiceError)
from repro.service.sinks import (CallbackDeliverySink, DeliveryLedger,
                                 FileSink, SinkDeliveryError, SinkDispatcher,
                                 WebhookSink, alert_key, read_alert_file)
from repro.service.tenants import (QuotaExceeded, TenantQuery, TenantQuota,
                                   TenantRegistry, UnknownQuery)
from repro.service.transport import (ServiceClient, ServiceTransport)

__all__ = [
    "QUEUE_POLICIES",
    "IngestionQueue",
    "QueueClosed",
    "SERVICE_STATES",
    "DrainReport",
    "SAQLService",
    "ServiceClosed",
    "ServiceConfig",
    "ServiceError",
    "CallbackDeliverySink",
    "DeliveryLedger",
    "FileSink",
    "SinkDeliveryError",
    "SinkDispatcher",
    "WebhookSink",
    "alert_key",
    "read_alert_file",
    "QuotaExceeded",
    "TenantQuery",
    "TenantQuota",
    "TenantRegistry",
    "UnknownQuery",
    "ServiceClient",
    "ServiceTransport",
]
