"""Multi-tenant query registry: scoped names, quotas, manifest persistence.

A tenant is a client of the always-on service: it owns a set of
registered queries, bounded by a :class:`TenantQuota`, and is isolated
from other tenants' failures — each query registers under the scoped
name ``"tenant/name"``, so the scheduler's per-query quarantine
circuit-breaker (PR 7) trips per tenant query and the service can
report quarantine state grouped by tenant.

The registry also remembers *registration order*, which matters twice:
checkpoint restore requires re-registering the same queries in the same
order, and the manifest file (persisted next to the checkpoints) is how
a restarted server knows what to re-register before it resumes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

#: The scoped-name separator (tenant names may not contain it).
SCOPE_SEPARATOR = "/"

#: Manifest file format version.
MANIFEST_VERSION = 1


class QuotaExceeded(RuntimeError):
    """A tenant tried to register more queries than its quota allows."""


class UnknownQuery(KeyError):
    """A control-plane operation named a query the tenant never registered."""


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant resource bounds enforced at the control plane."""

    #: Maximum concurrently registered queries for the tenant.
    max_queries: int = 16

    def __post_init__(self):
        if self.max_queries < 1:
            raise ValueError("tenant quota must allow at least one query")


def scoped_name(tenant: str, name: str) -> str:
    """The scheduler-facing name of one tenant's query."""
    return f"{tenant}{SCOPE_SEPARATOR}{name}"


def split_scoped(scoped: str) -> Tuple[str, str]:
    """Invert :func:`scoped_name` (first separator wins)."""
    tenant, _, name = scoped.partition(SCOPE_SEPARATOR)
    return tenant, name


@dataclass(frozen=True)
class TenantQuery:
    """One registered query: who owns it, what it is called, its text."""

    tenant: str
    name: str
    query: str

    @property
    def scoped(self) -> str:
        return scoped_name(self.tenant, self.name)


class TenantRegistry:
    """Tracks tenants, their queries, and enforces quotas.

    The registry is pure bookkeeping — the service wires registrations
    into the scheduler; this class answers "may this tenant register
    another query?" and "what must a restarted server re-register, in
    what order?".
    """

    def __init__(self, default_quota: Optional[TenantQuota] = None):
        self._default_quota = default_quota or TenantQuota()
        self._quotas: Dict[str, TenantQuota] = {}
        #: Registration order over all tenants (restore order).
        self._ordered: List[TenantQuery] = []

    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        """Override one tenant's quota (before or after registrations)."""
        self._quotas[tenant] = quota

    def quota(self, tenant: str) -> TenantQuota:
        return self._quotas.get(tenant, self._default_quota)

    def _validate_names(self, tenant: str, name: str) -> None:
        if not tenant or SCOPE_SEPARATOR in tenant:
            raise ValueError(
                f"invalid tenant name {tenant!r} (non-empty, no "
                f"{SCOPE_SEPARATOR!r})")
        if not name:
            raise ValueError("query name must be non-empty")

    def register(self, tenant: str, name: str, query: str) -> TenantQuery:
        """Record one registration (quota- and collision-checked)."""
        self._validate_names(tenant, name)
        mine = self.queries(tenant)
        if any(entry.name == name for entry in mine):
            raise ValueError(f"tenant {tenant!r} already registered a "
                             f"query named {name!r}")
        limit = self.quota(tenant).max_queries
        if len(mine) >= limit:
            raise QuotaExceeded(
                f"tenant {tenant!r} is at its quota of {limit} queries")
        entry = TenantQuery(tenant=tenant, name=name, query=query)
        self._ordered.append(entry)
        return entry

    def remove(self, tenant: str, name: str) -> TenantQuery:
        """Forget one registration; returns the removed entry."""
        for index, entry in enumerate(self._ordered):
            if entry.tenant == tenant and entry.name == name:
                del self._ordered[index]
                return entry
        raise UnknownQuery(f"tenant {tenant!r} has no query named {name!r}")

    def queries(self, tenant: str) -> List[TenantQuery]:
        """One tenant's registrations, oldest first."""
        return [entry for entry in self._ordered if entry.tenant == tenant]

    def tenants(self) -> List[str]:
        """Every tenant with at least one registration (first-seen order)."""
        seen: List[str] = []
        for entry in self._ordered:
            if entry.tenant not in seen:
                seen.append(entry.tenant)
        return seen

    def entries(self) -> List[TenantQuery]:
        """Every registration, in registration (= restore) order."""
        return list(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)

    # -- manifest persistence -------------------------------------------------

    def manifest(self) -> Dict[str, Any]:
        """The JSON-safe restart manifest (registration order preserved)."""
        return {
            "version": MANIFEST_VERSION,
            "queries": [{"tenant": entry.tenant, "name": entry.name,
                         "query": entry.query}
                        for entry in self._ordered],
        }

    def save_manifest(self, path: Union[str, Path]) -> None:
        """Atomically persist the manifest (tmp + rename, like checkpoints)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        temporary = path.with_suffix(path.suffix + ".tmp")
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(self.manifest(), handle, allow_nan=False)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, path)

    @classmethod
    def load_manifest(cls, path: Union[str, Path],
                      default_quota: Optional[TenantQuota] = None
                      ) -> "TenantRegistry":
        """Rebuild a registry from :meth:`save_manifest` output.

        Quota checks are *not* re-applied to manifest entries: they were
        enforced at original registration time, and a shrunk quota must
        not make a restart drop live queries.
        """
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("version") != MANIFEST_VERSION:
            raise ValueError(
                f"unsupported manifest version {payload.get('version')!r} "
                f"(expected {MANIFEST_VERSION})")
        registry = cls(default_quota=default_quota)
        for item in payload["queries"]:
            entry = TenantQuery(tenant=item["tenant"], name=item["name"],
                                query=item["query"])
            registry._ordered.append(entry)
        return registry
