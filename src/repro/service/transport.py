"""The service's socket front door: a JSON-lines TCP control/data plane.

One protocol carries both planes: each request is a single JSON object
on its own line (``{"op": ..., ...}``), each response a single JSON line
(``{"ok": true, ...}`` or ``{"ok": false, "error": ...}``).  Line
framing keeps the protocol scriptable (``nc``/telnet work) and makes the
failure modes legible: a torn line is one lost request, never a wedged
parser.

Ops::

    ingest        {"event": {...}}            -> {"result": "accepted"|"shed"|"duplicate"}
    ingest_batch  {"events": [{...}, ...]}    -> {"counts": {...}}
    register      {"tenant","name","query"}   -> {"scoped": "tenant/name"}
    remove        {"tenant","name"}           -> {"flushed_alerts": n}
    queries       {"tenant"?}                 -> {"queries": [...]}
    stats         {}                          -> {"stats": {...}}
    health        {}                          -> {"health": {...}}
    metrics       {"format"?: "prometheus"|"json"}
                                              -> {"body": text, "content_type": ...}
                                                 | {"metrics": snapshot}
    drain         {"finish_stream"?}          -> {"draining": true}
    ping          {}                          -> {"pong": true}

Robustness posture: every client runs in its own daemon thread with an
idle poll (a hung client holds one thread, never the service), a
mid-batch disconnect loses only the unacknowledged tail of that client's
requests (ingestion is idempotent across reconnects thanks to the
service's resume-cursor duplicate filter), and a malformed line gets an
error response instead of a dropped connection.  The ``drain`` op only
*requests* the drain — the serve loop owns the actual shutdown, exactly
as it does for SIGTERM — so a network client and a signal race cleanly.
"""

from __future__ import annotations

import json
import select
import socket
import socketserver
import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.errors import SAQLError
from repro.obs import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.service.server import SAQLService, ServiceClosed, ServiceError
from repro.service.tenants import QuotaExceeded, UnknownQuery

#: Longest accepted request line (a malformed producer cannot balloon
#: one handler's memory; normal events are a few hundred bytes).
MAX_LINE_BYTES = 1 << 20

#: Seconds a handler waits for the next request line before checking
#: whether the service is draining (and bailing out if so).
CLIENT_RECV_TIMEOUT = 1.0


def _error(message: str) -> Dict[str, Any]:
    return {"ok": False, "error": message}


class _Handler(socketserver.StreamRequestHandler):
    """One connected client; requests handled strictly in order."""

    def handle(self) -> None:
        service: SAQLService = self.server.service  # type: ignore[attr-defined]
        while True:
            # Idleness is detected with select, not a recv timeout: a
            # timeout mid-read leaves the buffered reader unusable (the
            # next readline raises), which silently dropped any client
            # idle for longer than the timeout.  select keeps the
            # connection intact until data actually arrives, while the
            # drain check below still lets a shutting-down service shed
            # idle clients.
            try:
                ready, _, _ = select.select([self.connection], [], [],
                                            CLIENT_RECV_TIMEOUT)
            except (OSError, ValueError):
                return  # socket already closed under us
            if not ready:
                if service.state in ("draining", "stopped"):
                    return
                continue
            try:
                line = self.rfile.readline(MAX_LINE_BYTES + 1)
            except (ConnectionError, OSError):
                return  # client went away mid-request; nothing to unwind
            if not line:
                return  # orderly EOF
            if len(line) > MAX_LINE_BYTES:
                self._respond(_error("request line too long"))
                return
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
            except json.JSONDecodeError as error:
                if not self._respond(_error(f"malformed JSON: {error}")):
                    return
                continue
            if not self._respond(self._dispatch(service, request)):
                return

    def _respond(self, payload: Dict[str, Any]) -> bool:
        """Write one response line; False when the client disconnected."""
        try:
            self.wfile.write(json.dumps(payload, allow_nan=False)
                             .encode("utf-8") + b"\n")
            self.wfile.flush()
            return True
        except (ConnectionError, OSError):
            return False

    def _dispatch(self, service: SAQLService,
                  request: Any) -> Dict[str, Any]:
        if not isinstance(request, dict) or "op" not in request:
            return _error('requests are objects with an "op" field')
        op = request["op"]
        try:
            if op == "ingest":
                return {"ok": True,
                        "result": service.submit_event(request["event"])}
            if op == "ingest_batch":
                events = request.get("events", [])
                if not isinstance(events, list):
                    return _error('"events" must be a list')
                return {"ok": True,
                        "counts": service.submit_events(events)}
            if op == "register":
                scoped = service.register_query(
                    request["tenant"], request["name"], request["query"])
                return {"ok": True, "scoped": scoped}
            if op == "remove":
                alerts = service.remove_query(request["tenant"],
                                              request["name"])
                return {"ok": True, "flushed_alerts": len(alerts)}
            if op == "queries":
                tenant = request.get("tenant")
                entries = (service.registry.queries(tenant)
                           if tenant is not None
                           else service.registry.entries())
                return {"ok": True,
                        "queries": [{"tenant": entry.tenant,
                                     "name": entry.name,
                                     "query": entry.query}
                                    for entry in entries]}
            if op == "stats":
                return {"ok": True, "stats": service.stats()}
            if op == "health":
                return {"ok": True, "health": service.health()}
            if op == "metrics":
                fmt = request.get("format", "prometheus")
                snapshot = service.metrics_snapshot()
                if snapshot is None:
                    return _error("metrics are disabled on this service")
                if fmt == "prometheus":
                    return {"ok": True,
                            "content_type": PROMETHEUS_CONTENT_TYPE,
                            "body": render_prometheus(snapshot)}
                if fmt == "json":
                    return {"ok": True, "metrics": snapshot}
                return _error(f"unknown metrics format {fmt!r}")
            if op == "drain":
                service.request_drain(
                    finish_stream=bool(request.get("finish_stream", False)))
                return {"ok": True, "draining": True}
            if op == "ping":
                return {"ok": True, "pong": True}
            return _error(f"unknown op {op!r}")
        except ServiceClosed as error:
            return {"ok": False, "error": str(error), "draining": True}
        except (KeyError, ValueError, TypeError, QuotaExceeded,
                UnknownQuery, ServiceError, SAQLError) as error:
            return _error(f"{type(error).__name__}: {error}")


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: SAQLService):
        super().__init__(address, _Handler)
        self.service = service


class ServiceTransport:
    """Binds a :class:`SAQLService` to a TCP endpoint.

    ``port=0`` binds an ephemeral port (tests); :attr:`address` reports
    the bound endpoint either way.  The transport only moves requests —
    lifecycle stays with the caller: run :meth:`serve_forever` (or
    :meth:`start` for a background thread), watch
    ``service.wait_for_drain_request()``, then :meth:`shutdown` and
    ``service.drain()``.
    """

    def __init__(self, service: SAQLService, host: str = "127.0.0.1",
                 port: int = 0):
        self.service = service
        self._server = _Server((host, port), service)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> "ServiceTransport":
        """Serve in a background thread (in-process tests, the CLI)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                kwargs={"poll_interval": 0.1},
                name="saql-service-transport", daemon=True)
            self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop accepting connections (open handlers drain via timeout)."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


class ServiceClient:
    """A minimal blocking client for the JSON-lines protocol.

    Used by the CLI, the benchmarks and the tests; external producers
    can speak the protocol with any line-oriented socket tool.
    """

    def __init__(self, host: str, port: int, timeout: float = 10.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("r", encoding="utf-8")
        self._writer = self._sock.makefile("w", encoding="utf-8")

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request; returns the decoded response object."""
        payload = {"op": op}
        payload.update(fields)
        self._writer.write(json.dumps(payload, allow_nan=False) + "\n")
        self._writer.flush()
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def check(self, op: str, **fields: Any) -> Dict[str, Any]:
        """:meth:`request`, raising :class:`RuntimeError` on ``ok=False``."""
        response = self.request(op, **fields)
        if not response.get("ok"):
            raise RuntimeError(response.get("error", "request failed"))
        return response

    def ingest_many(self, events: Iterable[Dict[str, Any]],
                    batch_size: int = 256) -> Dict[str, int]:
        """Stream events via ``ingest_batch`` requests; summed counts."""
        totals = {"accepted": 0, "shed": 0, "duplicate": 0}
        batch: List[Dict[str, Any]] = []
        for event in events:
            batch.append(event)
            if len(batch) >= batch_size:
                for key, value in self.check(
                        "ingest_batch", events=batch)["counts"].items():
                    totals[key] += value
                batch = []
        if batch:
            for key, value in self.check(
                    "ingest_batch", events=batch)["counts"].items():
                totals[key] += value
        return totals

    def close(self) -> None:
        try:
            self._reader.close()
            self._writer.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
