"""The ``saql`` command-line UI.

Sub-commands:

* ``saql parse QUERY_FILE`` — parse a SAQL query and echo its normalized
  form (useful while authoring queries);
* ``saql demo`` — run the full demonstration: simulate the enterprise,
  inject the 5-step APT attack, deploy the 8 demo queries over the stream
  and print the alerts in detection order;
* ``saql run --database EVENTS.jsonl QUERY_FILE...`` — run one or more
  query files against a stored event database (written by
  ``EventDatabase.save`` or the quickstart example);
* ``saql serve --state-dir DIR`` — run the always-on service: a
  JSON-lines TCP endpoint accepting event ingestion and runtime query
  registration, with backpressure, retrying exactly-once alert sinks
  and graceful SIGTERM drain/``--resume`` restart.
"""

from __future__ import annotations

import argparse
import signal
import sys
from pathlib import Path
from typing import List, Optional

from repro.attack import APTScenario
from repro.collection import Enterprise, EnterpriseConfig
from repro.core import ConcurrentQueryScheduler, SAQLError, parse_query
from repro.core.engine.alerts import Alert, CallbackSink
from repro.core.language import format_query
from repro.core.parallel import (DEFAULT_REBALANCE_RATIO,
                                 ShardedScheduler, SupervisionPolicy)
from repro.core.snapshot import resume_events
from repro.events.stream import iter_batches
from repro.core.retry import BackoffPolicy, RetryPolicy
from repro.obs import MetricRegistry, render_json
from repro.queries import DEMO_QUERIES, demo_query_names
from repro.service import (FileSink, SAQLService, ServiceConfig,
                           ServiceTransport, TenantQuota, WebhookSink)
from repro.storage import (CheckpointStore, EventDatabase, ReplaySpec,
                           StreamReplayer)
from repro.testing import FaultPlan, parse_fault_spec

#: Default events per ingestion batch for the demo/run commands.
DEFAULT_CLI_BATCH = 256


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``saql`` CLI."""
    parser = argparse.ArgumentParser(
        prog="saql",
        description="SAQL: query streaming system monitoring data for "
                    "abnormal behavior.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    parse_cmd = subparsers.add_parser(
        "parse", help="parse a SAQL query file and echo its normalized form")
    parse_cmd.add_argument("query_file", help="path to a .saql query file")

    demo_cmd = subparsers.add_parser(
        "demo", help="run the APT-attack demonstration end to end")
    demo_cmd.add_argument("--background-minutes", type=float, default=60.0,
                          help="minutes of benign background to simulate")
    demo_cmd.add_argument("--attack-start", type=float, default=1800.0,
                          help="attack start time (seconds into the stream)")
    demo_cmd.add_argument("--seed", type=int, default=7,
                          help="enterprise simulation seed")
    demo_cmd.add_argument("--queries", nargs="*", default=None,
                          help="subset of demo query names to deploy")
    demo_cmd.add_argument("--save-events", default=None,
                          help="also save the generated stream: a .jsonl "
                               "path writes the plain JSON-lines file, a "
                               "suffix-less path writes an indexed segment "
                               "store directory")
    _add_execution_options(demo_cmd)

    run_cmd = subparsers.add_parser(
        "run", help="run query files against a stored event database")
    run_cmd.add_argument("query_files", nargs="+",
                         help="paths to .saql query files")
    run_cmd.add_argument("--database", required=True,
                         help="stored events to query: a JSON-lines file "
                              "or a segment-store directory (written by "
                              "demo --save-events)")
    run_cmd.add_argument("--hosts", nargs="*", default=None,
                         help="restrict the replay to these hosts")
    run_cmd.add_argument("--start", type=float, default=None,
                         help="replay start timestamp")
    run_cmd.add_argument("--end", type=float, default=None,
                         help="replay end timestamp")
    run_cmd.add_argument("--resume", action="store_true",
                         help="restore from the latest checkpoint in "
                              "--checkpoint-dir and replay the journal "
                              "from the checkpoint cursor (exactly-once: "
                              "already-emitted alerts are not re-derived)")
    _add_execution_options(run_cmd)

    list_cmd = subparsers.add_parser(
        "queries", help="list the built-in demo queries")
    list_cmd.add_argument("--show", default=None,
                          help="print the SAQL text of one demo query")

    serve_cmd = subparsers.add_parser(
        "serve", help="run the always-on SAQL service (JSON-lines TCP "
                      "ingestion + runtime query control plane)")
    serve_cmd.add_argument("--state-dir", default=None,
                           help="directory for checkpoints, the delivery "
                                "ledger, dead letters and the query "
                                "manifest; required for --resume")
    serve_cmd.add_argument("--host", default="127.0.0.1",
                           help="bind address")
    serve_cmd.add_argument("--port", type=int, default=7699,
                           help="bind port (0 = ephemeral; the bound "
                                "port is printed on startup)")
    serve_cmd.add_argument("--resume", action="store_true",
                           help="restore the previous run from --state-dir "
                                "(manifest + latest checkpoint + delivery "
                                "ledger) before serving")
    serve_cmd.add_argument("--query", action="append", default=None,
                           metavar="TENANT/NAME=FILE", dest="queries",
                           help="register a query at startup (repeatable): "
                                "tenant/name=path/to/query.saql")
    serve_cmd.add_argument("--sink-file", action="append", default=None,
                           metavar="PATH",
                           help="deliver alerts to this JSON-lines file "
                                "(repeatable)")
    serve_cmd.add_argument("--sink-webhook", action="append", default=None,
                           metavar="URL",
                           help="POST alerts to this HTTP endpoint "
                                "(repeatable)")
    serve_cmd.add_argument("--queue-capacity", type=int, default=4096,
                           help="bounded ingestion queue capacity")
    serve_cmd.add_argument("--queue-policy", default="block",
                           choices=["block", "shed"],
                           help="admission policy when the queue is full: "
                                "block the producer or shed the event")
    serve_cmd.add_argument("--block-timeout", type=float, default=None,
                           help="cap on producer blocking (seconds) under "
                                "--queue-policy block; past it the event "
                                "sheds (counted)")
    serve_cmd.add_argument("--batch-size", type=int, default=DEFAULT_CLI_BATCH,
                           help="events per scheduler batch")
    serve_cmd.add_argument("--checkpoint-interval", type=int, default=10000,
                           help="events between checkpoints (with "
                                "--state-dir)")
    serve_cmd.add_argument("--checkpoint-mode", default="full",
                           choices=["full", "diff"],
                           help="checkpoint record format: 'full' dumps "
                                "all state every time, 'diff' writes "
                                "deltas against a periodic full base so "
                                "checkpoint bytes track state churn")
    serve_cmd.add_argument("--checkpoint-rebase", type=int, default=8,
                           metavar="N",
                           help="deltas between full-base rebases (with "
                                "--checkpoint-mode diff)")
    serve_cmd.add_argument("--quarantine-errors", type=int, default=3,
                           metavar="N",
                           help="per-query fatal-error budget before "
                                "quarantine (0 disables quarantine: the "
                                "first query error fails the service)")
    serve_cmd.add_argument("--retry-attempts", type=int, default=5,
                           help="delivery attempts per alert per sink "
                                "before dead-lettering")
    serve_cmd.add_argument("--retry-timeout", type=float, default=5.0,
                           help="per-attempt sink timeout (seconds; "
                                "webhook sinks)")
    serve_cmd.add_argument("--max-queries-per-tenant", type=int, default=16,
                           help="default tenant quota")
    serve_cmd.add_argument("--no-metrics", action="store_true",
                           help="disable metrics collection (the "
                                "'metrics' op reports an error)")
    serve_cmd.add_argument("--metrics-json", default=None, metavar="PATH",
                           help="write the final metrics snapshot to "
                                "PATH as JSON after the drain completes")
    serve_cmd.add_argument("--journal-events", action="store_true",
                           help="journal ingested events into a segment "
                                "store under STATE_DIR/events and expose "
                                "its stats in the 'stats' op")
    serve_cmd.add_argument("--finish-on-drain", action="store_true",
                           help="treat a drain as end-of-stream: flush "
                                "open windows before stopping (default "
                                "keeps them checkpointed for --resume)")
    return parser


def _add_execution_options(command: argparse.ArgumentParser) -> None:
    """Add the batch-ingestion / sharded-execution options shared by
    ``demo`` and ``run``."""
    command.add_argument("--batch-size", type=int, default=DEFAULT_CLI_BATCH,
                         help="events per ingestion batch (amortizes "
                              "dispatch overhead)")
    command.add_argument("--shards", type=int, default=1,
                         help="partition the stream by agentid across this "
                              "many workers (1 = single-process)")
    command.add_argument("--shard-backend", default="process",
                         choices=["serial", "thread", "process"],
                         help="execution backend when --shards > 1")
    command.add_argument("--shard-map", default="hash",
                         choices=["hash", "auto"],
                         help="agentid -> shard assignment: 'hash' spreads "
                              "hosts by stable crc32, 'auto' observes a "
                              "stream prefix and bin-packs hosts onto "
                              "shards by event count")
    command.add_argument("--rebalance-interval", type=int, default=0,
                         help="events between work-stealing load-report "
                              "epochs; 0 disables mid-stream rebalancing "
                              "(requires --shards > 1)")
    command.add_argument("--rebalance-ratio", type=float,
                         default=DEFAULT_REBALANCE_RATIO,
                         help="steal once the hottest shard's epoch load "
                              "exceeds this multiple of the mean shard "
                              "load (>= 1.0)")
    command.add_argument("--checkpoint-dir", default=None,
                         help="directory for durable state checkpoints; "
                              "enables periodic snapshots of all engine "
                              "state for crash recovery")
    command.add_argument("--checkpoint-interval", type=int, default=10000,
                         help="events between checkpoints (with "
                              "--checkpoint-dir)")
    command.add_argument("--checkpoint-mode", default="full",
                         choices=["full", "diff"],
                         help="checkpoint record format: 'full' dumps all "
                              "state every time, 'diff' writes deltas "
                              "against a periodic full base so checkpoint "
                              "bytes track state churn")
    command.add_argument("--checkpoint-rebase", type=int, default=8,
                         metavar="N",
                         help="deltas between full-base rebases (with "
                              "--checkpoint-mode diff)")
    command.add_argument("--segment-bytes", type=int, default=None,
                         metavar="BYTES",
                         help="segment-store journal size at which the "
                              "tail seals into an indexed segment "
                              "(directory databases / --save-events "
                              "directories; default 4 MiB)")
    command.add_argument("--no-columnar", action="store_true",
                         help="disable columnar batch execution and the "
                              "shared predicate index; evaluate per-event "
                              "compiled closures instead (the reference "
                              "oracle path)")
    command.add_argument("--supervise", action="store_true",
                         help="supervise shard workers (requires --shards "
                              "> 1): probe liveness, detect dead/hung "
                              "shards and recover in-run by restarting "
                              "from the last checkpoint (with "
                              "--checkpoint-dir) or migrating the dead "
                              "shard's hosts to survivors")
    command.add_argument("--max-recoveries", type=int, default=3,
                         help="per-shard recovery budget before a "
                              "supervised run gives up (with --supervise)")
    command.add_argument("--recovery", default="auto",
                         choices=["auto", "restart", "migrate"],
                         help="supervised recovery mode: 'auto' restarts "
                              "from a checkpoint when one exists and "
                              "migrates otherwise")
    command.add_argument("--quarantine-errors", type=int, default=None,
                         metavar="N",
                         help="quarantine a query after N fatal errors "
                              "instead of failing the run; other queries "
                              "keep alerting")
    command.add_argument("--inject-fault", action="append", default=None,
                         metavar="SPEC", dest="inject_fault",
                         help="inject a fault for testing supervision "
                              "(repeatable). SPEC is KIND[:KEY=VALUE,...] "
                              "with KIND in crash|kill|hang|query-error "
                              "and keys shard=, after=, duration=, "
                              "query= — e.g. 'kill:shard=1,after=5000' "
                              "or 'query-error:query=exfil'")
    command.add_argument("--metrics-json", default=None, metavar="PATH",
                         help="write the run's merged metrics snapshot "
                              "(counters, stage-latency histograms, "
                              "per-query timings) to PATH as JSON when "
                              "the run ends")
    command.add_argument("--no-metrics", action="store_true",
                         help="disable metrics collection (drops the "
                              "per-batch timing instrumentation)")


def _checkpoint_store(args: argparse.Namespace):
    """Build the checkpoint store the flags select (None when disabled)."""
    if not getattr(args, "checkpoint_dir", None):
        return None
    if args.checkpoint_interval < 1:
        raise SystemExit("--checkpoint-interval must be at least 1")
    return CheckpointStore(
        args.checkpoint_dir,
        mode=getattr(args, "checkpoint_mode", "full") or "full",
        rebase_interval=getattr(args, "checkpoint_rebase", None) or 8)


def _fault_plan(args: argparse.Namespace):
    """Parse the repeatable ``--inject-fault`` specs (None when absent)."""
    specs = getattr(args, "inject_fault", None)
    if not specs:
        return None
    try:
        return FaultPlan([parse_fault_spec(spec) for spec in specs])
    except ValueError as error:
        raise SystemExit(f"--inject-fault: {error}")


def _supervision_policy(args: argparse.Namespace):
    """Build the supervision policy ``--supervise`` selects (or None)."""
    if not getattr(args, "supervise", False):
        return None
    if args.shards <= 1:
        raise SystemExit("--supervise requires --shards > 1")
    try:
        return SupervisionPolicy(max_recoveries=args.max_recoveries,
                                 recovery=args.recovery)
    except ValueError as error:
        raise SystemExit(f"--supervise: {error}")


def _make_scheduler(args: argparse.Namespace, sink: CallbackSink):
    """Build the scheduler the execution options select."""
    store = _checkpoint_store(args)
    interval = args.checkpoint_interval if store is not None else None
    columnar = not getattr(args, "no_columnar", False)
    quarantine = getattr(args, "quarantine_errors", None)
    plan = _fault_plan(args)
    supervision = _supervision_policy(args)
    metrics_on = not getattr(args, "no_metrics", False)
    if args.shards > 1:
        rebalance = args.rebalance_interval
        return ShardedScheduler(shards=args.shards,
                                backend=args.shard_backend, sink=sink,
                                batch_size=args.batch_size,
                                shard_map=args.shard_map,
                                rebalance_interval=(rebalance
                                                    if rebalance > 0
                                                    else None),
                                rebalance_ratio=args.rebalance_ratio,
                                checkpoint_store=store,
                                checkpoint_interval=interval,
                                columnar=columnar,
                                supervision=supervision,
                                quarantine_errors=quarantine,
                                fault_plan=plan,
                                metrics=metrics_on)
    return ConcurrentQueryScheduler(sink=sink,
                                    checkpoint_store=store,
                                    checkpoint_interval=interval,
                                    columnar=columnar,
                                    quarantine_errors=quarantine,
                                    metrics=MetricRegistry(
                                        enabled=metrics_on))


def _arm_faults(args: argparse.Namespace, scheduler) -> None:
    """Install ``--inject-fault`` specs into a single-process scheduler.

    Called after queries are registered (query-error faults poison a
    registered engine).  The sharded scheduler instead receives the plan
    at construction and installs it into each lane it builds.
    """
    plan = _fault_plan(args)
    if plan is None or isinstance(scheduler, ShardedScheduler):
        return
    try:
        plan.install(scheduler, position=0)
    except ValueError as error:
        raise SystemExit(f"--inject-fault: {error}")


def _write_metrics_json(args: argparse.Namespace, scheduler) -> None:
    """Dump the run's metrics snapshot to ``--metrics-json`` (if set).

    Works for both scheduler flavors: the single-process scheduler
    snapshots its live registry, the sharded scheduler returns the
    merged cross-shard view collected at finish.
    """
    path = getattr(args, "metrics_json", None)
    if not path:
        return
    snapshot = scheduler.metrics_snapshot()
    if snapshot is None:
        print("warning: metrics are disabled; "
              f"{path} not written", file=sys.stderr)
        return
    Path(path).write_text(render_json(snapshot) + "\n", encoding="utf-8")
    print(f"metrics written to {path}")


def _print_alert(alert: Alert) -> None:
    print(f"ALERT {alert.describe()}")


def _print_rebalance_summary(scheduler) -> None:
    """Report what the work-stealing balancer did (sharded runs only)."""
    migrations = getattr(scheduler, "migrations", None)
    if migrations:
        moves = ", ".join(f"{record.agentid}: {record.source}->"
                          f"{record.target}" for record in migrations)
        print(f"work stealing: {len(migrations)} migration(s) ({moves})")
        return
    eligibility = getattr(scheduler, "last_steal_eligibility", None)
    if eligibility is not None and not eligibility.eligible:
        print(f"work stealing disabled: {eligibility.reason}")


def _print_supervision_summary(scheduler) -> None:
    """Report in-run recoveries and quarantined queries, when any."""
    for record in getattr(scheduler, "recoveries", []) or []:
        print(f"recovered shard {record.position} ({record.reason}) via "
              f"{record.mode} in {record.latency:.2f}s: "
              f"{record.events_replayed} events replayed"
              + (f", hosts migrated: "
                 f"{', '.join(record.migrated_agentids)}"
                 if record.migrated_agentids else ""))
    quarantined = getattr(scheduler, "quarantined", None) or {}
    for name, detail in sorted(quarantined.items()):
        print(f"quarantined query {name!r} after {detail['errors']} "
              f"fatal errors: {detail['last_error']}", file=sys.stderr)
    stats = getattr(scheduler, "stats", None)
    if stats is not None and not quarantined:
        for name, errors in sorted(getattr(stats, "quarantined",
                                           {}).items()):
            print(f"quarantined query {name!r} after {errors} "
                  "fatal errors", file=sys.stderr)


def command_parse(args: argparse.Namespace) -> int:
    """Implement ``saql parse``."""
    text = Path(args.query_file).read_text(encoding="utf-8")
    try:
        query = parse_query(text)
    except SAQLError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(format_query(query))
    return 0


def command_demo(args: argparse.Namespace) -> int:
    """Implement ``saql demo``."""
    duration = args.background_minutes * 60.0
    enterprise = Enterprise(EnterpriseConfig(seed=args.seed))
    scenario = APTScenario(start_time=args.attack_start)
    stream = enterprise.event_feed(0.0, duration,
                                   injected=scenario.events())

    names = args.queries or demo_query_names()
    scheduler = _make_scheduler(args, CallbackSink(_print_alert))
    for name in names:
        if name not in DEMO_QUERIES:
            print(f"error: unknown demo query {name!r}", file=sys.stderr)
            return 1
        scheduler.add_query(DEMO_QUERIES[name], name=name)
    _arm_faults(args, scheduler)

    print(f"deployed {len(names)} queries over "
          f"{len(list(stream.events))} events "
          f"({len(enterprise.hosts)} hosts); attack starts at "
          f"t={args.attack_start:.0f}")
    if args.shards > 1:
        single = getattr(scheduler, "single_lane_query_names", [])
        print(f"sharded execution: {args.shards} {args.shard_backend} "
              f"shards, batch size {args.batch_size}"
              + (f"; full-stream fallback for {len(single)} queries"
                 if single else ""))
    alerts = scheduler.execute(stream, batch_size=args.batch_size)
    print(f"done: {len(alerts)} alerts, "
          f"{scheduler.stats.groups} query groups "
          f"(vs {scheduler.stats.queries} stream copies without sharing)")
    _print_rebalance_summary(scheduler)
    _print_supervision_summary(scheduler)
    _print_error_records(scheduler)
    _write_metrics_json(args, scheduler)

    if args.save_events:
        target = Path(args.save_events)
        if target.is_dir() or not target.suffix:
            database = EventDatabase.open(
                target, segment_bytes=args.segment_bytes)
            database.insert_many(stream)
            database.store.seal_tail()
            database.close()
            layout = "segment store"
        else:
            database = EventDatabase(stream)
            database.save(target)
            layout = "JSON-lines file"
        print(f"saved {len(database)} events to {args.save_events} "
              f"({layout})")
    return 0


def command_run(args: argparse.Namespace) -> int:
    """Implement ``saql run``.

    Single-process runs catch SIGINT/SIGTERM for the whole command (the
    database load included — long loads are exactly when operators hit
    ctrl-C) and stop at the next batch boundary; sharded runs keep the
    default signal disposition, since their workers own checkpointing.
    """
    interrupted = _InterruptFlag()
    if args.shards == 1:
        with interrupted.armed():
            return _run_body(args, interrupted)
    return _run_body(args, interrupted)


def _run_body(args: argparse.Namespace,
              interrupted: "_InterruptFlag") -> int:
    database_path = Path(args.database)
    if database_path.is_dir():
        database = EventDatabase.open(database_path,
                                      segment_bytes=args.segment_bytes)
    else:
        database = EventDatabase.load(database_path)
    spec = ReplaySpec(hosts=args.hosts, start_time=args.start,
                      end_time=args.end)
    replayer = StreamReplayer(database, spec)

    scheduler = _make_scheduler(args, CallbackSink(_print_alert))
    for path in args.query_files:
        text = Path(path).read_text(encoding="utf-8")
        try:
            scheduler.add_query(text, name=Path(path).stem)
        except SAQLError as error:
            print(f"error in {path}: {error}", file=sys.stderr)
            return 1
    _arm_faults(args, scheduler)

    # Crash recovery: restore engine state from the latest checkpoint and
    # replay the journal exactly after the checkpoint cursor.  Restored
    # (already-emitted) alerts are not re-printed — re-emission is
    # exactly-once.
    cursor = None
    if args.resume:
        store = _checkpoint_store(args)
        if store is None:
            print("error: --resume requires --checkpoint-dir",
                  file=sys.stderr)
            return 1
        snapshot = store.latest()
        if snapshot is None:
            print("no checkpoint found; running from the start")
        else:
            try:
                scheduler.restore_state(snapshot)
            except ValueError as error:
                print(f"error: cannot resume: {error}", file=sys.stderr)
                return 1
            cursor = scheduler.restored_cursor
            print(f"restored checkpoint at watermark "
                  f"t={cursor.watermark:.0f} "
                  f"({cursor.events_ingested} events already processed)")

    # Replay in batches so the replayer, the batch ingestion path and the
    # sharded runtime all share one chunked code path.
    source = (iter(replayer) if cursor is None
              else resume_events(replayer, cursor))
    alerts: List[Alert] = []
    if args.shards > 1:
        # The sharded scheduler returns (and emits) the *complete* run:
        # its merged output seeds the restored alert ledgers, so on a
        # resumed run the checkpointed alerts are printed again as part
        # of the deterministic merged stream.
        alerts = scheduler.execute(source, batch_size=args.batch_size)
        summary = (f"{len(alerts)} alerts (complete run, including "
                   "checkpointed alerts)" if cursor is not None
                   else f"{len(alerts)} alerts")
    else:
        # Graceful interrupt: SIGINT/SIGTERM stop the replay at the next
        # batch boundary instead of killing the process mid-state; with
        # a checkpoint store a final checkpoint makes the interruption
        # resumable (never lose a long replay to a ctrl-C).
        for batch in iter_batches(source, args.batch_size):
            alerts.extend(scheduler.process_events(batch))
            if interrupted:
                break
        if not interrupted:
            alerts.extend(scheduler.finish())
        if interrupted:
            if getattr(args, "checkpoint_dir", None):
                scheduler.checkpoint_now()
                print(f"interrupted by {interrupted.name}: wrote final "
                      f"checkpoint after {replayer.events_replayed} events")
                print(f"resume with: saql run --resume --checkpoint-dir "
                      f"{args.checkpoint_dir} --database {args.database} "
                      + " ".join(args.query_files))
            else:
                print(f"interrupted by {interrupted.name} after "
                      f"{replayer.events_replayed} events (no "
                      "--checkpoint-dir: nothing to resume from)")
            _write_metrics_json(args, scheduler)
            return 0
        summary = (f"{len(alerts)} alerts (this run; checkpointed alerts "
                   "were not re-emitted)" if cursor is not None
                   else f"{len(alerts)} alerts")
    print(f"done: {replayer.events_replayed} events replayed, {summary}")
    _print_rebalance_summary(scheduler)
    _print_supervision_summary(scheduler)
    _print_error_records(scheduler)
    _write_metrics_json(args, scheduler)
    return 0


class _InterruptFlag:
    """Arms SIGINT/SIGTERM as a checked flag for batch-boundary stops."""

    SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self):
        self._signum: Optional[int] = None
        self._previous = {}

    def __bool__(self) -> bool:
        return self._signum is not None

    @property
    def name(self) -> str:
        return (signal.Signals(self._signum).name
                if self._signum is not None else "")

    def _handle(self, signum, frame) -> None:
        self._signum = signum

    def armed(self):
        from contextlib import contextmanager

        @contextmanager
        def _armed():
            for signum in self.SIGNALS:
                try:
                    self._previous[signum] = signal.signal(signum,
                                                           self._handle)
                except ValueError:  # non-main thread (tests): stay unarmed
                    pass
            try:
                yield self
            finally:
                for signum, previous in self._previous.items():
                    signal.signal(signum, previous)
                self._previous.clear()
        return _armed()


def _print_error_records(scheduler) -> None:
    """Print per-query execution errors when the scheduler exposes them.

    The sharded scheduler's engines live in its workers, so it has no
    cross-process error reporter; worker failures surface as exceptions.
    """
    reporter = getattr(scheduler, "error_reporter", None)
    if reporter is not None and reporter.has_errors():
        for record in reporter.records:
            print(record.describe(), file=sys.stderr)


def _parse_query_flag(spec: str):
    """Parse one ``--query TENANT/NAME=FILE`` startup registration."""
    scoped, separator, path = spec.partition("=")
    tenant, slash, name = scoped.partition("/")
    if not separator or not slash or not tenant or not name or not path:
        raise SystemExit(f"--query: expected TENANT/NAME=FILE, got {spec!r}")
    return tenant, name, Path(path)


def _build_service(args: argparse.Namespace) -> SAQLService:
    """Construct the :class:`SAQLService` the ``serve`` flags select."""
    sinks = []
    for path in args.sink_file or []:
        sinks.append(FileSink(path))
    for url in args.sink_webhook or []:
        sinks.append(WebhookSink(url, timeout=args.retry_timeout))
    if args.retry_attempts < 1:
        raise SystemExit("--retry-attempts must be at least 1")
    config = ServiceConfig(
        queue_capacity=args.queue_capacity,
        queue_policy=args.queue_policy,
        block_timeout=args.block_timeout,
        batch_size=args.batch_size,
        checkpoint_interval=args.checkpoint_interval,
        checkpoint_mode=args.checkpoint_mode,
        checkpoint_rebase=args.checkpoint_rebase,
        quarantine_errors=(args.quarantine_errors
                           if args.quarantine_errors > 0 else None),
        retry=RetryPolicy(max_attempts=args.retry_attempts,
                          timeout=args.retry_timeout,
                          backoff=BackoffPolicy(initial=0.05, maximum=2.0,
                                                factor=2.0, jitter=0.25)),
        default_quota=TenantQuota(max_queries=args.max_queries_per_tenant),
        metrics=not args.no_metrics,
        journal_events=args.journal_events,
    )
    return SAQLService(state_dir=args.state_dir, sinks=sinks, config=config)


def command_serve(args: argparse.Namespace) -> int:
    """Implement ``saql serve``: run the service until drained.

    The loop is signal-driven: SIGTERM/SIGINT (or a client ``drain`` op)
    request a graceful drain; the service then stops admissions, drains
    the queue, checkpoints, flushes alert delivery and exits 0.  With
    ``--state-dir`` a subsequent ``saql serve --resume`` continues with
    no duplicated and no lost alerts.
    """
    if args.resume and not args.state_dir:
        print("error: --resume requires --state-dir", file=sys.stderr)
        return 1
    try:
        service = _build_service(args)
    except ValueError as error:
        raise SystemExit(f"serve: {error}")
    service.start(resume=args.resume)
    registered = {(entry.tenant, entry.name)
                  for entry in service.registry.entries()}
    for spec in args.queries or []:
        tenant, name, path = _parse_query_flag(spec)
        if (tenant, name) in registered:
            continue  # already in the resumed manifest
        try:
            service.register_query(tenant, name,
                                   path.read_text(encoding="utf-8"))
        except (SAQLError, ValueError) as error:
            print(f"error in --query {spec}: {error}", file=sys.stderr)
            return 1
    transport = ServiceTransport(service, host=args.host,
                                 port=args.port).start()
    host, port = transport.address
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(
            signum,
            lambda *_: service.request_drain(
                finish_stream=args.finish_on_drain))
    print(f"serving on {host}:{port} "
          f"({len(service.registry)} queries"
          + (f", state dir {args.state_dir}" if args.state_dir else "")
          + (", resumed" if args.resume else "") + ")", flush=True)
    try:
        while not service.wait_for_drain_request(timeout=1.0):
            pass
    finally:
        transport.shutdown()
        report = service.drain(reason="signal")
    print(f"drained in {report.duration_seconds:.2f}s: "
          f"{report.delivered} alerts delivered, "
          f"{report.dead_lettered} dead-lettered, "
          f"checkpoint {'written' if report.checkpointed else 'skipped'}")
    if args.metrics_json:
        snapshot = service.metrics_snapshot()
        if snapshot is None:
            print("warning: metrics are disabled; "
                  f"{args.metrics_json} not written", file=sys.stderr)
        else:
            Path(args.metrics_json).write_text(render_json(snapshot) + "\n",
                                               encoding="utf-8")
            print(f"metrics written to {args.metrics_json}")
    if args.state_dir and not report.finished_stream:
        print(f"resume with: saql serve --resume --state-dir "
              f"{args.state_dir}")
    return 0


def command_queries(args: argparse.Namespace) -> int:
    """Implement ``saql queries``."""
    if args.show:
        text = DEMO_QUERIES.get(args.show)
        if text is None:
            print(f"error: unknown demo query {args.show!r}", file=sys.stderr)
            return 1
        print(text.strip())
        return 0
    for name in demo_query_names():
        print(name)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``saql`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "parse": command_parse,
        "demo": command_demo,
        "run": command_run,
        "queries": command_queries,
        "serve": command_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
