"""The ``saql`` command-line UI.

Sub-commands:

* ``saql parse QUERY_FILE`` — parse a SAQL query and echo its normalized
  form (useful while authoring queries);
* ``saql demo`` — run the full demonstration: simulate the enterprise,
  inject the 5-step APT attack, deploy the 8 demo queries over the stream
  and print the alerts in detection order;
* ``saql run --database EVENTS.jsonl QUERY_FILE...`` — run one or more
  query files against a stored event database (written by
  ``EventDatabase.save`` or the quickstart example).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.attack import APTScenario
from repro.collection import Enterprise, EnterpriseConfig
from repro.core import ConcurrentQueryScheduler, SAQLError, parse_query
from repro.core.engine.alerts import Alert, CallbackSink
from repro.core.language import format_query
from repro.queries import DEMO_QUERIES, demo_query_names
from repro.storage import EventDatabase, ReplaySpec, StreamReplayer


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``saql`` CLI."""
    parser = argparse.ArgumentParser(
        prog="saql",
        description="SAQL: query streaming system monitoring data for "
                    "abnormal behavior.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    parse_cmd = subparsers.add_parser(
        "parse", help="parse a SAQL query file and echo its normalized form")
    parse_cmd.add_argument("query_file", help="path to a .saql query file")

    demo_cmd = subparsers.add_parser(
        "demo", help="run the APT-attack demonstration end to end")
    demo_cmd.add_argument("--background-minutes", type=float, default=60.0,
                          help="minutes of benign background to simulate")
    demo_cmd.add_argument("--attack-start", type=float, default=1800.0,
                          help="attack start time (seconds into the stream)")
    demo_cmd.add_argument("--seed", type=int, default=7,
                          help="enterprise simulation seed")
    demo_cmd.add_argument("--queries", nargs="*", default=None,
                          help="subset of demo query names to deploy")
    demo_cmd.add_argument("--save-events", default=None,
                          help="also save the generated stream to this "
                               "JSON-lines file")

    run_cmd = subparsers.add_parser(
        "run", help="run query files against a stored event database")
    run_cmd.add_argument("query_files", nargs="+",
                         help="paths to .saql query files")
    run_cmd.add_argument("--database", required=True,
                         help="JSON-lines event file to query")
    run_cmd.add_argument("--hosts", nargs="*", default=None,
                         help="restrict the replay to these hosts")
    run_cmd.add_argument("--start", type=float, default=None,
                         help="replay start timestamp")
    run_cmd.add_argument("--end", type=float, default=None,
                         help="replay end timestamp")

    list_cmd = subparsers.add_parser(
        "queries", help="list the built-in demo queries")
    list_cmd.add_argument("--show", default=None,
                          help="print the SAQL text of one demo query")
    return parser


def _print_alert(alert: Alert) -> None:
    print(f"ALERT {alert.describe()}")


def command_parse(args: argparse.Namespace) -> int:
    """Implement ``saql parse``."""
    text = Path(args.query_file).read_text(encoding="utf-8")
    try:
        query = parse_query(text)
    except SAQLError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(format_query(query))
    return 0


def command_demo(args: argparse.Namespace) -> int:
    """Implement ``saql demo``."""
    duration = args.background_minutes * 60.0
    enterprise = Enterprise(EnterpriseConfig(seed=args.seed))
    scenario = APTScenario(start_time=args.attack_start)
    stream = enterprise.event_feed(0.0, duration,
                                   injected=scenario.events())

    names = args.queries or demo_query_names()
    scheduler = ConcurrentQueryScheduler(sink=CallbackSink(_print_alert))
    for name in names:
        if name not in DEMO_QUERIES:
            print(f"error: unknown demo query {name!r}", file=sys.stderr)
            return 1
        scheduler.add_query(DEMO_QUERIES[name], name=name)

    print(f"deployed {len(names)} queries over "
          f"{len(list(stream.events))} events "
          f"({len(enterprise.hosts)} hosts); attack starts at "
          f"t={args.attack_start:.0f}")
    alerts = scheduler.execute(stream)
    print(f"done: {len(alerts)} alerts, "
          f"{scheduler.stats.groups} query groups "
          f"(vs {scheduler.stats.queries} stream copies without sharing)")
    if scheduler.error_reporter.has_errors():
        for record in scheduler.error_reporter.records:
            print(record.describe(), file=sys.stderr)

    if args.save_events:
        database = EventDatabase(stream)
        database.save(args.save_events)
        print(f"saved {len(database)} events to {args.save_events}")
    return 0


def command_run(args: argparse.Namespace) -> int:
    """Implement ``saql run``."""
    database = EventDatabase.load(args.database)
    spec = ReplaySpec(hosts=args.hosts, start_time=args.start,
                      end_time=args.end)
    replayer = StreamReplayer(database, spec)

    scheduler = ConcurrentQueryScheduler(sink=CallbackSink(_print_alert))
    for path in args.query_files:
        text = Path(path).read_text(encoding="utf-8")
        try:
            scheduler.add_query(text, name=Path(path).stem)
        except SAQLError as error:
            print(f"error in {path}: {error}", file=sys.stderr)
            return 1

    alerts = scheduler.execute(replayer)
    print(f"done: {replayer.events_replayed} events replayed, "
          f"{len(alerts)} alerts")
    if scheduler.error_reporter.has_errors():
        for record in scheduler.error_reporter.records:
            print(record.describe(), file=sys.stderr)
    return 0


def command_queries(args: argparse.Namespace) -> int:
    """Implement ``saql queries``."""
    if args.show:
        text = DEMO_QUERIES.get(args.show)
        if text is None:
            print(f"error: unknown demo query {args.show!r}", file=sys.stderr)
            return 1
        print(text.strip())
        return 0
    for name in demo_query_names():
        print(name)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``saql`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "parse": command_parse,
        "demo": command_demo,
        "run": command_run,
        "queries": command_queries,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
