"""The command-line UI (Fig. 3 of the paper).

``saql`` lets an analyst parse queries, run the built-in demo scenario, or
execute a set of SAQL queries against a stored event database, printing
alerts as they are detected.
"""

from repro.ui.cli import main

__all__ = ["main"]
