"""The simulated APT attack of the paper's demonstration (Fig. 2).

The paper performs a five-step APT attack in a controlled environment and
detects it with SAQL queries over the live monitoring stream.  This package
reproduces the *traces* of that attack: :class:`APTScenario` emits the
kernel-level events each step would generate on the victim hosts, with
configurable start time and hosts, so the demo queries and the benchmarks
can inject the attack into the simulated enterprise's background stream.
"""

from repro.attack.scenario import (
    ATTACKER_IP,
    APTScenario,
    AttackStep,
    StepTrace,
)

__all__ = [
    "APTScenario",
    "ATTACKER_IP",
    "AttackStep",
    "StepTrace",
]
