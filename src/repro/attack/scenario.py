"""The five-step APT attack scenario (Section III of the paper).

The attack steps, and the monitoring events each one leaves behind:

* **c1 — Initial Compromise**: a crafted email with a malicious Excel
  attachment reaches the victim; Outlook writes the attachment to disk and
  the victim opens it in Excel.
* **c2 — Malware Infection**: the macro (CVE-2008-0081) spawns a shell,
  the shell runs a script host which downloads a backdoor from the
  attacker, drops it to disk and starts it.
* **c3 — Privilege Escalation**: the backdoor scans the internal network
  for the database server, then runs the credential-dumping tool
  ``gsecdump.exe`` to steal database credentials.
* **c4 — Penetration into the Database Server**: using the stolen
  credentials, the attacker reaches the database server and drops a second
  backdoor (``sbblv.exe``) via a VBScript.
* **c5 — Data Exfiltration**: the attacker dumps the database with
  ``osql.exe`` (``sqlservr.exe`` writes ``backup1.dmp``) and the backdoor
  reads the dump and ships it to the attacker's host.

Every event is emitted with the entity identities the rule queries rely on
(the same file entity for the dump written in c5-evt2 and read in c5-evt3,
the same backdoor process across its events, ...), matching how kernel
auditing would attribute the activity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.events.entities import FileEntity, NetworkEntity, ProcessEntity
from repro.events.event import Event, Operation

#: The attacker-controlled external host (the paper obfuscates it as XXX.129).
ATTACKER_IP = "203.0.113.129"

#: Port the database server listens on (discovered by the c3 port scan).
DB_PORT = 1433


class AttackStep(enum.Enum):
    """The five steps of the APT attack."""

    C1_INITIAL_COMPROMISE = "c1"
    C2_MALWARE_INFECTION = "c2"
    C3_PRIVILEGE_ESCALATION = "c3"
    C4_PENETRATION = "c4"
    C5_DATA_EXFILTRATION = "c5"


@dataclass
class StepTrace:
    """The events one attack step produced, for ground-truth evaluation."""

    step: AttackStep
    events: List[Event] = field(default_factory=list)

    @property
    def start_time(self) -> float:
        """Return the timestamp of the step's first event."""
        return min(event.timestamp for event in self.events)

    @property
    def end_time(self) -> float:
        """Return the timestamp of the step's last event."""
        return max(event.timestamp for event in self.events)


class APTScenario:
    """Generates the attack-trace events for the five-step APT attack."""

    def __init__(self, start_time: float = 1800.0,
                 client_host: str = "client-01",
                 client_ip: str = "10.0.2.11",
                 db_host: str = "db-server",
                 db_ip: str = "10.0.1.30",
                 attacker_ip: str = ATTACKER_IP,
                 exfiltration_chunks: int = 12,
                 exfiltration_chunk_bytes: float = 5_000_000.0):
        self.start_time = float(start_time)
        self.client_host = client_host
        self.client_ip = client_ip
        self.db_host = db_host
        self.db_ip = db_ip
        self.attacker_ip = attacker_ip
        self.exfiltration_chunks = int(exfiltration_chunks)
        self.exfiltration_chunk_bytes = float(exfiltration_chunk_bytes)

        # Client-side processes (PIDs chosen outside the agents' ranges).
        self._outlook = ProcessEntity.make("outlook.exe", 4100,
                                           host=client_host, user="employee")
        self._excel = ProcessEntity.make("excel.exe", 4101,
                                         host=client_host, user="employee")
        self._cmd_client = ProcessEntity.make("cmd.exe", 4102,
                                              host=client_host,
                                              user="employee")
        self._wscript = ProcessEntity.make("wscript.exe", 4103,
                                           host=client_host, user="employee")
        self._backdoor_client = ProcessEntity.make("backdoor.exe", 4104,
                                                   host=client_host,
                                                   user="employee")
        self._gsecdump = ProcessEntity.make("gsecdump.exe", 4105,
                                            host=client_host, user="SYSTEM")

        # Database-server-side processes.
        self._cmd_db = ProcessEntity.make("cmd.exe", 5100, host=db_host,
                                          user="dbadmin")
        self._cscript = ProcessEntity.make("cscript.exe", 5101, host=db_host,
                                           user="dbadmin")
        self._sbblv = ProcessEntity.make("sbblv.exe", 5102, host=db_host,
                                         user="dbadmin")
        self._osql = ProcessEntity.make("osql.exe", 5103, host=db_host,
                                        user="dbadmin")
        self._sqlservr = ProcessEntity.make("sqlservr.exe", 5104,
                                            host=db_host, user="mssql")

        # Files shared across steps / events.
        self._attachment = FileEntity.make(
            r"C:\Users\employee\Downloads\invoice_2020.xls",
            host=client_host, owner="employee")
        self._backdoor_file = FileEntity.make(
            r"C:\Users\employee\AppData\Roaming\backdoor.exe",
            host=client_host, owner="employee")
        self._sam_file = FileEntity.make(
            r"C:\Windows\System32\config\SAM", host=client_host,
            owner="SYSTEM")
        self._creds_file = FileEntity.make(
            r"C:\Users\employee\AppData\Roaming\creds.txt",
            host=client_host, owner="SYSTEM")
        self._sbblv_file = FileEntity.make(
            r"C:\Windows\Temp\sbblv.exe", host=db_host, owner="dbadmin")
        self._dump_file = FileEntity.make(
            r"D:\backup\backup1.dmp", host=db_host, owner="mssql")

    # -- helpers -----------------------------------------------------------------

    def _to_attacker(self, srcip: str, dstport: int = 443) -> NetworkEntity:
        return NetworkEntity.make(srcip, self.attacker_ip, srcport=49800,
                                  dstport=dstport)

    def _client_event(self, subject: ProcessEntity, operation: Operation,
                      obj, offset: float, amount: float = 0.0) -> Event:
        return Event(subject=subject, operation=operation, obj=obj,
                     timestamp=self.start_time + offset,
                     agentid=self.client_host, amount=amount)

    def _db_event(self, subject: ProcessEntity, operation: Operation,
                  obj, offset: float, amount: float = 0.0) -> Event:
        return Event(subject=subject, operation=operation, obj=obj,
                     timestamp=self.start_time + offset,
                     agentid=self.db_host, amount=amount)

    # -- the five steps -------------------------------------------------------------

    def step_c1(self) -> StepTrace:
        """c1 — the phishing email's attachment is written and opened."""
        events = [
            self._client_event(self._outlook, Operation.READ,
                               self._to_attacker(self.client_ip, 25),
                               offset=0.0, amount=52_000),
            self._client_event(self._outlook, Operation.WRITE,
                               self._attachment, offset=5.0, amount=52_000),
            self._client_event(self._excel, Operation.READ,
                               self._attachment, offset=25.0, amount=52_000),
        ]
        return StepTrace(step=AttackStep.C1_INITIAL_COMPROMISE, events=events)

    def step_c2(self) -> StepTrace:
        """c2 — the macro spawns a shell that drops and starts a backdoor."""
        events = [
            self._client_event(self._excel, Operation.START,
                               self._cmd_client, offset=60.0),
            self._client_event(self._cmd_client, Operation.START,
                               self._wscript, offset=65.0),
            self._client_event(self._wscript, Operation.WRITE,
                               self._to_attacker(self.client_ip),
                               offset=70.0, amount=900),
            self._client_event(self._wscript, Operation.READ,
                               self._to_attacker(self.client_ip),
                               offset=75.0, amount=350_000),
            self._client_event(self._wscript, Operation.WRITE,
                               self._backdoor_file, offset=80.0,
                               amount=350_000),
            self._client_event(self._wscript, Operation.START,
                               self._backdoor_client, offset=90.0),
            self._client_event(self._backdoor_client, Operation.WRITE,
                               self._to_attacker(self.client_ip),
                               offset=95.0, amount=600),
        ]
        return StepTrace(step=AttackStep.C2_MALWARE_INFECTION, events=events)

    def step_c3(self) -> StepTrace:
        """c3 — network scan for the database, then credential dumping."""
        events: List[Event] = [
            self._client_event(self._backdoor_client, Operation.READ,
                               self._to_attacker(self.client_ip),
                               offset=300.0, amount=2_000),
        ]
        # Port scan of the server subnet; the database host answers on 1433.
        for index in range(20):
            target_ip = f"10.0.1.{20 + index}"
            port = DB_PORT if target_ip == self.db_ip else 445
            scan_target = NetworkEntity.make(self.client_ip, target_ip,
                                             srcport=49900, dstport=port)
            events.append(self._client_event(
                self._backdoor_client, Operation.CONNECT, scan_target,
                offset=310.0 + index, amount=60))
        events.extend([
            self._client_event(self._backdoor_client, Operation.START,
                               self._gsecdump, offset=340.0),
            self._client_event(self._gsecdump, Operation.READ,
                               self._sam_file, offset=345.0, amount=65_000),
            self._client_event(self._gsecdump, Operation.WRITE,
                               self._creds_file, offset=350.0, amount=4_000),
            self._client_event(self._backdoor_client, Operation.READ,
                               self._creds_file, offset=355.0, amount=4_000),
            self._client_event(self._backdoor_client, Operation.WRITE,
                               self._to_attacker(self.client_ip),
                               offset=360.0, amount=4_000),
        ])
        return StepTrace(step=AttackStep.C3_PRIVILEGE_ESCALATION,
                         events=events)

    def step_c4(self) -> StepTrace:
        """c4 — a VBScript drops a second backdoor on the database server."""
        db_from_client = NetworkEntity.make(self.client_ip, self.db_ip,
                                            srcport=50100, dstport=DB_PORT)
        events = [
            self._client_event(self._backdoor_client, Operation.CONNECT,
                               db_from_client, offset=900.0, amount=1_200),
            self._db_event(self._cmd_db, Operation.START, self._cscript,
                           offset=905.0),
            self._db_event(self._cscript, Operation.WRITE, self._sbblv_file,
                           offset=910.0, amount=410_000),
            self._db_event(self._cscript, Operation.START, self._sbblv,
                           offset=920.0),
            self._db_event(self._sbblv, Operation.WRITE,
                           self._to_attacker(self.db_ip), offset=925.0,
                           amount=700),
        ]
        return StepTrace(step=AttackStep.C4_PENETRATION, events=events)

    def step_c5(self) -> StepTrace:
        """c5 — the database is dumped and exfiltrated to the attacker."""
        events = [
            self._db_event(self._cmd_db, Operation.START, self._osql,
                           offset=1500.0),
            self._db_event(self._osql, Operation.WRITE, self._dump_file,
                           offset=1505.0, amount=2_000),
        ]
        chunk_bytes = self.exfiltration_chunk_bytes
        for index in range(self.exfiltration_chunks):
            offset = 1510.0 + index * 20.0
            events.append(self._db_event(
                self._sqlservr, Operation.WRITE, self._dump_file,
                offset=offset, amount=chunk_bytes))
        for index in range(self.exfiltration_chunks):
            offset = 1520.0 + index * 20.0
            events.append(self._db_event(
                self._sbblv, Operation.READ, self._dump_file,
                offset=offset, amount=chunk_bytes))
            events.append(self._db_event(
                self._sbblv, Operation.WRITE,
                self._to_attacker(self.db_ip), offset=offset + 5.0,
                amount=chunk_bytes))
        return StepTrace(step=AttackStep.C5_DATA_EXFILTRATION, events=events)

    # -- whole-scenario API --------------------------------------------------------

    def steps(self) -> List[StepTrace]:
        """Return all five step traces, in attack order."""
        return [self.step_c1(), self.step_c2(), self.step_c3(),
                self.step_c4(), self.step_c5()]

    def events(self) -> List[Event]:
        """Return every attack event, ordered by timestamp."""
        events: List[Event] = []
        for trace in self.steps():
            events.extend(trace.events)
        events.sort(key=lambda event: event.timestamp)
        return events

    def ground_truth(self) -> Dict[str, List[int]]:
        """Return event ids per step, for detection-coverage evaluation."""
        return {trace.step.value: [event.event_id for event in trace.events]
                for trace in self.steps()}

    @property
    def end_time(self) -> float:
        """Return the timestamp of the attack's last event."""
        return max(event.timestamp for event in self.events())
