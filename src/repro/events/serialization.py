"""Serialization of events to and from dictionaries, JSON, and JSON-lines.

The data-collection agents, the event database and the stream replayer all
exchange events in the dictionary form produced here, so that a stored day
of monitoring data round-trips exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Union

from repro.events.entities import Entity, entity_from_dict
from repro.events.event import Event, Operation


def entity_to_dict(entity: Entity) -> Dict[str, Any]:
    """Serialize an entity, including its ``type`` discriminator."""
    return entity.attributes()


def event_to_dict(event: Event) -> Dict[str, Any]:
    """Serialize an event to a JSON-compatible dictionary."""
    return {
        "event_id": event.event_id,
        "timestamp": event.timestamp,
        "agentid": event.agentid,
        "operation": event.operation.value,
        "amount": event.amount,
        "subject": entity_to_dict(event.subject),
        "object": entity_to_dict(event.obj),
        "attrs": dict(event.attrs),
    }


def event_from_dict(data: Dict[str, Any]) -> Event:
    """Reconstruct an event from its dictionary form.

    Raises:
        ValueError: if a required key is missing or malformed.
    """
    try:
        subject = entity_from_dict(data["subject"])
        obj = entity_from_dict(data["object"])
        operation = Operation.from_keyword(data["operation"])
        timestamp = float(data["timestamp"])
    except KeyError as exc:
        raise ValueError(f"event dictionary is missing key {exc}") from exc
    return Event(
        subject=subject,  # type: ignore[arg-type]
        operation=operation,
        obj=obj,
        timestamp=timestamp,
        agentid=str(data.get("agentid", "")),
        amount=float(data.get("amount", 0.0)),
        event_id=int(data.get("event_id", 0)) or Event.__dataclass_fields__["event_id"].default_factory(),  # type: ignore[misc]
        attrs=dict(data.get("attrs", {})),
    )


def event_to_json(event: Event) -> str:
    """Serialize an event to a single JSON string."""
    return json.dumps(event_to_dict(event), sort_keys=True)


def event_from_json(text: str) -> Event:
    """Parse an event from a JSON string."""
    return event_from_dict(json.loads(text))


def write_events_jsonl(events: Iterable[Event],
                       path: Union[str, Path]) -> int:
    """Write events to a JSON-lines file; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(event_to_json(event))
            handle.write("\n")
            count += 1
    return count


def read_events_jsonl(path: Union[str, Path]) -> Iterator[Event]:
    """Lazily read events back from a JSON-lines file."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield event_from_json(line)
