"""Serialization of events to and from dictionaries, JSON, and JSON-lines.

The data-collection agents, the event database, the stream replayer and
the checkpoint/snapshot subsystem all exchange events in the dictionary
form produced here, so that a stored day of monitoring data round-trips
exactly.

Non-finite floats (``nan``/``inf``) are not representable in standard
JSON — Python's ``json`` module emits the non-standard ``NaN`` /
``Infinity`` tokens, which strict parsers (and any non-Python consumer)
reject.  The dictionary form therefore encodes them as tagged markers
(``{"__float__": "nan"}``) via :func:`encode_float` /
:func:`decode_float`, which the snapshot codecs reuse, and
:func:`event_to_json` refuses to fall back to the non-standard tokens.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Union

from repro.events.entities import Entity, entity_from_dict
from repro.events.event import Event, Operation

#: Marker key tagging a non-finite float in the JSON-friendly dict form.
FLOAT_MARKER = "__float__"


def encode_float(value: float) -> Any:
    """Return a strict-JSON-safe form of a float (markers for nan/inf)."""
    if math.isfinite(value):
        return value
    if math.isnan(value):
        return {FLOAT_MARKER: "nan"}
    return {FLOAT_MARKER: "inf" if value > 0 else "-inf"}


def decode_float(value: Any) -> float:
    """Invert :func:`encode_float` (plain numbers pass through)."""
    if isinstance(value, dict) and FLOAT_MARKER in value:
        return float(value[FLOAT_MARKER])
    return float(value)


def _encode_attr(value: Any) -> Any:
    """Encode one free-form attribute value (entity attrs, event attrs)."""
    if isinstance(value, float):
        return encode_float(value)
    return value


def _decode_attr(value: Any) -> Any:
    if isinstance(value, dict) and FLOAT_MARKER in value:
        return decode_float(value)
    return value


def entity_to_dict(entity: Entity) -> Dict[str, Any]:
    """Serialize an entity, including its ``type`` discriminator."""
    return {key: _encode_attr(value)
            for key, value in entity.attributes().items()}


def event_to_dict(event: Event) -> Dict[str, Any]:
    """Serialize an event to a JSON-compatible dictionary."""
    return {
        "event_id": event.event_id,
        "timestamp": encode_float(event.timestamp),
        "agentid": event.agentid,
        "operation": event.operation.value,
        "amount": encode_float(event.amount),
        "subject": entity_to_dict(event.subject),
        "object": entity_to_dict(event.obj),
        "attrs": {key: _encode_attr(value)
                  for key, value in event.attrs.items()},
    }


def decode_entity_dict(data: Dict[str, Any]) -> Entity:
    """Reconstruct an entity from the wire form of :func:`entity_to_dict`.

    Unlike :func:`~repro.events.entities.entity_from_dict` (which consumes
    raw ``attributes()`` dictionaries), this decodes the tagged non-finite
    float markers the wire form uses.
    """
    return entity_from_dict({key: _decode_attr(value)
                             for key, value in data.items()})


def event_from_dict(data: Dict[str, Any]) -> Event:
    """Reconstruct an event from its dictionary form.

    Raises:
        ValueError: if a required key is missing or malformed.
    """
    try:
        subject = decode_entity_dict(data["subject"])
        obj = decode_entity_dict(data["object"])
        operation = Operation.from_keyword(data["operation"])
        timestamp = decode_float(data["timestamp"])
    except KeyError as exc:
        raise ValueError(f"event dictionary is missing key {exc}") from exc
    return Event(
        subject=subject,  # type: ignore[arg-type]
        operation=operation,
        obj=obj,
        timestamp=timestamp,
        agentid=str(data.get("agentid", "")),
        amount=decode_float(data.get("amount", 0.0)),
        event_id=int(data.get("event_id", 0)) or Event.__dataclass_fields__["event_id"].default_factory(),  # type: ignore[misc]
        attrs={key: _decode_attr(value)
               for key, value in data.get("attrs", {}).items()},
    )


def event_to_json(event: Event) -> str:
    """Serialize an event to a single strict-JSON string.

    ``allow_nan=False`` guards the compliance contract: non-finite floats
    must have been marker-encoded by :func:`event_to_dict`, never emitted
    as the non-standard ``NaN``/``Infinity`` tokens.
    """
    return json.dumps(event_to_dict(event), sort_keys=True, allow_nan=False)


def event_from_json(text: str) -> Event:
    """Parse an event from a JSON string."""
    return event_from_dict(json.loads(text))


def write_events_jsonl(events: Iterable[Event],
                       path: Union[str, Path]) -> int:
    """Write events to a JSON-lines file; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(event_to_json(event))
            handle.write("\n")
            count += 1
    return count


def read_events_jsonl(path: Union[str, Path]) -> Iterator[Event]:
    """Lazily read events back from a JSON-lines file."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield event_from_json(line)
