"""System entities: processes, files, and network connections.

Following the paper's data model (Section II-A), system monitoring data
records interactions among three kinds of system entities.  Each entity
carries the security-related attributes that SAQL queries can constrain:

* **process** — executable name, PID, command line, owning user;
* **file** — path/name, owner, permissions;
* **network connection (ip)** — source/destination IP and port, protocol.

Entities are immutable value objects.  Attribute access for the query
engine goes through :meth:`Entity.get_attr`, which also resolves the
*context-aware shortcut* described in the paper (``p1`` stands for
``p1.exe_name``, ``f1`` for ``f1.name``, ``i1`` for ``i1.dstip``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional


class EntityType(enum.Enum):
    """The three system-entity kinds recognised by the SAQL data model."""

    PROCESS = "proc"
    FILE = "file"
    NETWORK = "ip"

    @classmethod
    def from_keyword(cls, keyword: str) -> "EntityType":
        """Map a SAQL entity keyword (``proc``/``file``/``ip``) to a type."""
        normalized = keyword.strip().lower()
        for member in cls:
            if member.value == normalized:
                return member
        raise ValueError(f"unknown entity keyword: {keyword!r}")


@dataclass(frozen=True)
class Entity:
    """Base class for system entities.

    Subclasses add typed attributes; generic attribute access for query
    evaluation is provided by :meth:`get_attr` / :meth:`attributes`.
    """

    entity_id: str

    #: Name of the attribute used when an entity variable is referenced
    #: without an explicit attribute (the paper's context-aware shortcut).
    default_attribute = "entity_id"

    @property
    def entity_type(self) -> EntityType:
        """Return the :class:`EntityType` of this entity."""
        raise NotImplementedError

    def attributes(self) -> Dict[str, Any]:
        """Return all attributes of the entity as a plain dictionary."""
        result = {f.name: getattr(self, f.name) for f in fields(self)}
        result["type"] = self.entity_type.value
        return result

    def get_attr(self, name: str) -> Any:
        """Return attribute ``name``, or ``None`` when it is not defined.

        The engine treats a missing attribute as a non-match rather than an
        error, mirroring how monitoring records may omit optional fields.
        """
        if name in ("type", "entity_type"):
            return self.entity_type.value
        return getattr(self, name, None)

    def default_value(self) -> Any:
        """Return the value used for the context-aware return shortcut."""
        return self.get_attr(self.default_attribute)


@dataclass(frozen=True)
class ProcessEntity(Entity):
    """A running process, identified by executable name and PID."""

    exe_name: str = ""
    pid: int = 0
    user: str = ""
    cmdline: str = ""
    host: str = ""

    default_attribute = "exe_name"

    @property
    def entity_type(self) -> EntityType:
        return EntityType.PROCESS

    @staticmethod
    def make(exe_name: str, pid: int, host: str = "", user: str = "",
             cmdline: str = "") -> "ProcessEntity":
        """Create a process entity with a deterministic identifier."""
        entity_id = f"proc:{host}:{pid}:{exe_name}"
        return ProcessEntity(
            entity_id=entity_id,
            exe_name=exe_name,
            pid=pid,
            user=user,
            cmdline=cmdline or exe_name,
            host=host,
        )


@dataclass(frozen=True)
class FileEntity(Entity):
    """A file, identified by its full path (``name``)."""

    name: str = ""
    owner: str = ""
    permissions: str = ""
    host: str = ""

    default_attribute = "name"

    @property
    def entity_type(self) -> EntityType:
        return EntityType.FILE

    @staticmethod
    def make(name: str, host: str = "", owner: str = "",
             permissions: str = "rw-") -> "FileEntity":
        """Create a file entity with a deterministic identifier."""
        entity_id = f"file:{host}:{name}"
        return FileEntity(
            entity_id=entity_id,
            name=name,
            owner=owner,
            permissions=permissions,
            host=host,
        )


@dataclass(frozen=True)
class NetworkEntity(Entity):
    """A network connection endpoint pair."""

    srcip: str = ""
    srcport: int = 0
    dstip: str = ""
    dstport: int = 0
    protocol: str = "tcp"

    default_attribute = "dstip"

    @property
    def entity_type(self) -> EntityType:
        return EntityType.NETWORK

    @staticmethod
    def make(srcip: str, dstip: str, srcport: int = 0, dstport: int = 0,
             protocol: str = "tcp") -> "NetworkEntity":
        """Create a network-connection entity with a deterministic id."""
        entity_id = f"ip:{srcip}:{srcport}->{dstip}:{dstport}/{protocol}"
        return NetworkEntity(
            entity_id=entity_id,
            srcip=srcip,
            srcport=srcport,
            dstip=dstip,
            dstport=dstport,
            protocol=protocol,
        )


_ENTITY_CLASSES = {
    EntityType.PROCESS: ProcessEntity,
    EntityType.FILE: FileEntity,
    EntityType.NETWORK: NetworkEntity,
}


def entity_class_for(entity_type: EntityType) -> type:
    """Return the dataclass implementing the given entity type."""
    return _ENTITY_CLASSES[entity_type]


def entity_from_dict(data: Dict[str, Any]) -> Entity:
    """Reconstruct an entity from its dictionary form.

    The dictionary must contain a ``type`` key holding one of the SAQL
    entity keywords (``proc``, ``file``, ``ip``); remaining keys are the
    entity's attributes.  Unknown keys are ignored so that richer monitoring
    records can be loaded without schema churn.
    """
    if "type" not in data:
        raise ValueError("entity dictionary is missing the 'type' key")
    entity_type = EntityType.from_keyword(str(data["type"]))
    cls = _ENTITY_CLASSES[entity_type]
    allowed = {f.name for f in fields(cls)}
    kwargs = {key: value for key, value in data.items() if key in allowed}
    if "entity_id" not in kwargs:
        raise ValueError("entity dictionary is missing the 'entity_id' key")
    return cls(**kwargs)
