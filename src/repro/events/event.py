"""System events: SVO interactions between system entities.

A system event records one kernel-level interaction, represented as
⟨subject, operation, object⟩ (Section II-A of the paper).  The subject is
always a process; the object is a file, a process, or a network connection,
which partitions events into *file events*, *process events* and *network
events*.

Every event additionally carries:

* ``agentid`` — the identifier of the host agent that observed it (the
  paper's global ``agentid = xxx`` constraint filters on this);
* ``timestamp`` — seconds since the epoch of the simulated enterprise;
* ``amount`` — number of bytes moved by read/write/send/recv operations;
* ``attrs`` — a free-form dictionary for additional monitoring attributes.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.events.entities import Entity, EntityType, ProcessEntity


class Operation(enum.Enum):
    """Kernel-level operations recorded by the monitoring agents."""

    START = "start"
    END = "end"
    READ = "read"
    WRITE = "write"
    EXECUTE = "execute"
    DELETE = "delete"
    RENAME = "rename"
    CONNECT = "connect"
    ACCEPT = "accept"
    SEND = "send"
    RECV = "recv"

    @classmethod
    def from_keyword(cls, keyword: str) -> "Operation":
        """Map a SAQL operation keyword to an :class:`Operation`."""
        normalized = keyword.strip().lower()
        for member in cls:
            if member.value == normalized:
                return member
        raise ValueError(f"unknown operation keyword: {keyword!r}")


class EventType(enum.Enum):
    """Event categories derived from the object entity type."""

    PROCESS_EVENT = "process"
    FILE_EVENT = "file"
    NETWORK_EVENT = "network"

    @classmethod
    def for_object(cls, obj: Entity) -> "EventType":
        """Return the event category implied by the object entity."""
        mapping = {
            EntityType.PROCESS: cls.PROCESS_EVENT,
            EntityType.FILE: cls.FILE_EVENT,
            EntityType.NETWORK: cls.NETWORK_EVENT,
        }
        return mapping[obj.entity_type]


_EVENT_COUNTER = itertools.count(1)


def _next_event_id() -> int:
    return next(_EVENT_COUNTER)


@dataclass(frozen=True)
class Event:
    """One system monitoring event (an SVO triple plus metadata)."""

    subject: ProcessEntity
    operation: Operation
    obj: Entity
    timestamp: float
    agentid: str = ""
    amount: float = 0.0
    event_id: int = field(default_factory=_next_event_id)
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def event_type(self) -> EventType:
        """Return the event category (process/file/network event)."""
        return EventType.for_object(self.obj)

    def get_attr(self, name: str) -> Any:
        """Return an event-level attribute.

        Event-level attributes are the metadata fields (``agentid``,
        ``amount``, ``timestamp``, ``operation``, ``type``) plus anything in
        the free-form ``attrs`` dictionary.  Missing attributes evaluate to
        ``None`` so that constraint checks fail without raising.
        """
        if name == "agentid":
            return self.agentid
        if name == "amount":
            return self.amount
        if name in ("timestamp", "time", "starttime"):
            return self.timestamp
        if name in ("operation", "op"):
            return self.operation.value
        if name in ("type", "event_type"):
            return self.event_type.value
        if name == "event_id":
            return self.event_id
        return self.attrs.get(name)

    def __post_init__(self) -> None:
        if not isinstance(self.subject, ProcessEntity):
            raise TypeError("event subject must be a ProcessEntity")
        if self.timestamp < 0:
            raise ValueError("event timestamp must be non-negative")
        if self.amount < 0:
            raise ValueError("event amount must be non-negative")
