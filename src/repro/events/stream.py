"""Event stream abstractions.

The SAQL engine consumes a single, time-ordered event feed aggregated from
many hosts.  This module provides:

* :class:`EventStream` — the minimal iterable interface the engine needs;
* :class:`ListStream` — an in-memory stream over a list of events;
* :class:`MergedStream` — a k-way timestamp merge of several per-host
  streams into one enterprise-wide feed (what the central server does with
  agent uploads);
* :class:`StreamStats` — running statistics used by benchmarks and the CLI.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.events.event import Event, EventType


def iter_batches(events: Iterable[Event], size: int) -> Iterator[List[Event]]:
    """Chunk any event iterable into lists of at most ``size`` events.

    The batch ingestion path (``process_events``) amortizes per-event
    dispatch overhead across a chunk; this helper is the single chunking
    implementation shared by :meth:`EventStream.batches`, the stream
    replayer and the sharded runtime.  Event order is preserved and the
    final batch may be shorter than ``size``.
    """
    if size < 1:
        raise ValueError("batch size must be at least 1")
    batch: List[Event] = []
    for event in events:
        batch.append(event)
        if len(batch) >= size:
            yield batch
            batch = []
    if batch:
        yield batch


class EventStream:
    """Base class for event streams.

    A stream is an iterable of :class:`~repro.events.event.Event` objects in
    non-decreasing timestamp order.  Subclasses implement :meth:`__iter__`.
    """

    def __iter__(self) -> Iterator[Event]:
        raise NotImplementedError

    def filter(self, predicate: Callable[[Event], bool]) -> "EventStream":
        """Return a new stream containing only events matching ``predicate``."""
        return _FilteredStream(self, predicate)

    def limit(self, count: int) -> "EventStream":
        """Return a stream truncated to the first ``count`` events."""
        return _LimitedStream(self, count)

    def batches(self, size: int) -> Iterator[List[Event]]:
        """Iterate the stream in timestamp-ordered chunks of ``size`` events."""
        return iter_batches(self, size)


class ListStream(EventStream):
    """An in-memory event stream backed by a list.

    The list is sorted by timestamp on construction so that out-of-order
    synthetic data still forms a valid stream.
    """

    def __init__(self, events: Iterable[Event], presorted: bool = False):
        events = list(events)
        if not presorted:
            events.sort(key=lambda event: (event.timestamp, event.event_id))
        self._events: List[Event] = events

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> Sequence[Event]:
        """Return the underlying (sorted) event list."""
        return self._events


class _FilteredStream(EventStream):
    """Lazy predicate filter over another stream."""

    def __init__(self, source: EventStream,
                 predicate: Callable[[Event], bool]):
        self._source = source
        self._predicate = predicate

    def __iter__(self) -> Iterator[Event]:
        for event in self._source:
            if self._predicate(event):
                yield event


class _LimitedStream(EventStream):
    """Truncates another stream after a fixed number of events."""

    def __init__(self, source: EventStream, count: int):
        if count < 0:
            raise ValueError("limit count must be non-negative")
        self._source = source
        self._count = count

    def __iter__(self) -> Iterator[Event]:
        remaining = self._count
        for event in self._source:
            if remaining <= 0:
                return
            yield event
            remaining -= 1


class MergedStream(EventStream):
    """Timestamp-ordered merge of several source streams.

    This models the central server merging per-host agent feeds into the
    single enterprise-wide event feed that SAQL queries run against.
    """

    def __init__(self, sources: Sequence[EventStream]):
        self._sources = list(sources)

    def __iter__(self) -> Iterator[Event]:
        iterators = [iter(source) for source in self._sources]
        heap: List[tuple] = []
        for index, iterator in enumerate(iterators):
            first = next(iterator, None)
            if first is not None:
                heapq.heappush(
                    heap, (first.timestamp, first.event_id, index, first))
        while heap:
            _, _, index, event = heapq.heappop(heap)
            yield event
            nxt = next(iterators[index], None)
            if nxt is not None:
                heapq.heappush(
                    heap, (nxt.timestamp, nxt.event_id, index, nxt))


@dataclass
class StreamStats:
    """Running statistics over a stream of events."""

    total_events: int = 0
    first_timestamp: Optional[float] = None
    last_timestamp: Optional[float] = None
    by_type: Dict[str, int] = field(default_factory=dict)
    by_agent: Dict[str, int] = field(default_factory=dict)
    total_amount: float = 0.0

    def observe(self, event: Event) -> None:
        """Fold one event into the statistics."""
        self.total_events += 1
        if self.first_timestamp is None:
            self.first_timestamp = event.timestamp
        self.last_timestamp = event.timestamp
        type_key = event.event_type.value
        self.by_type[type_key] = self.by_type.get(type_key, 0) + 1
        if event.agentid:
            self.by_agent[event.agentid] = (
                self.by_agent.get(event.agentid, 0) + 1)
        self.total_amount += event.amount

    @property
    def duration(self) -> float:
        """Return the time span covered by the observed events."""
        if self.first_timestamp is None or self.last_timestamp is None:
            return 0.0
        return self.last_timestamp - self.first_timestamp

    @property
    def events_per_second(self) -> float:
        """Return the average event rate over the observed time span."""
        if self.duration <= 0:
            return float(self.total_events)
        return self.total_events / self.duration

    @classmethod
    def from_stream(cls, stream: Iterable[Event]) -> "StreamStats":
        """Compute statistics by consuming an entire stream."""
        stats = cls()
        for event in stream:
            stats.observe(event)
        return stats


def collect(stream: Iterable[Event]) -> List[Event]:
    """Materialize a stream into a list (convenience for tests/examples)."""
    return list(stream)
