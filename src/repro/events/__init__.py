"""System monitoring data model.

This package defines the data substrate that the SAQL engine queries:
system *entities* (processes, files, network connections), system *events*
(SVO interactions between a subject process and an object entity), and the
*event stream* abstraction that carries events from data-collection agents
to the anomaly query engine.

The attribute names follow the conventions used in the paper's example
queries: ``exe_name``, ``pid`` for processes; ``name`` for files; ``srcip``,
``dstip``, ``srcport``, ``dstport`` for network connections; plus the
event-level attributes ``agentid`` (host), ``amount`` (bytes transferred)
and ``starttime``/``endtime``.
"""

from repro.events.entities import (
    Entity,
    EntityType,
    FileEntity,
    NetworkEntity,
    ProcessEntity,
    entity_from_dict,
)
from repro.events.event import Event, EventType, Operation
from repro.events.serialization import (
    decode_entity_dict,
    decode_float,
    encode_float,
    entity_to_dict,
    event_from_dict,
    event_from_json,
    event_to_dict,
    event_to_json,
    read_events_jsonl,
    write_events_jsonl,
)
from repro.events.stream import (
    EventStream,
    ListStream,
    MergedStream,
    StreamStats,
    collect,
    iter_batches,
)

__all__ = [
    "Entity",
    "EntityType",
    "Event",
    "EventStream",
    "EventType",
    "FileEntity",
    "ListStream",
    "MergedStream",
    "NetworkEntity",
    "Operation",
    "ProcessEntity",
    "StreamStats",
    "collect",
    "decode_entity_dict",
    "decode_float",
    "encode_float",
    "entity_from_dict",
    "entity_to_dict",
    "event_from_dict",
    "event_from_json",
    "event_to_dict",
    "event_to_json",
    "iter_batches",
    "read_events_jsonl",
    "write_events_jsonl",
]
