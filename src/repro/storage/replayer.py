"""The stream replayer (Fig. 4 of the paper).

The replayer turns a stored slice of monitoring data — selected by hosts
and start/end time — back into an event stream, so the attack data can be
replayed repeatedly to showcase different queries.  A speed factor allows
throttled ("real-time x N") replay; the default replays as fast as the
consumer can read, which is what the benchmarks use.

Selection is index-backed: the database prunes whole segments outside
the host/time slice and seeks inside the survivors, so replaying a
narrow slice of a long history reads a correspondingly narrow part of
the store.  :meth:`StreamReplayer.events_from_cursor` extends the same
pruning to checkpoint resume — replay starts *at* the cursor's
watermark instead of scanning the pre-cursor history.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.events.event import Event
from repro.events.stream import EventStream, iter_batches
from repro.storage.database import EventDatabase


@dataclass(frozen=True)
class ReplaySpec:
    """What to replay: the host set and the time range (Fig. 4's controls)."""

    hosts: Optional[Sequence[str]] = None
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    #: Replay speed factor: None = as fast as possible, 1.0 = real time,
    #: 10.0 = ten times faster than real time.
    speed: Optional[float] = None


class StreamReplayer(EventStream):
    """Replays a stored host/time slice of events as a stream."""

    def __init__(self, database: EventDatabase,
                 spec: Optional[ReplaySpec] = None,
                 sleep=_time.sleep):
        self._database = database
        self._spec = spec or ReplaySpec()
        self._sleep = sleep
        #: Number of events produced by the last replay run.
        self.events_replayed = 0

    @property
    def spec(self) -> ReplaySpec:
        """Return the replay specification."""
        return self._spec

    def with_spec(self, spec: ReplaySpec) -> "StreamReplayer":
        """Return a new replayer over the same database with another spec."""
        return StreamReplayer(self._database, spec, sleep=self._sleep)

    def selected_events(self) -> List[Event]:
        """Return the stored events selected by the replay specification."""
        return list(self.iter_selected())

    def iter_selected(self) -> Iterator[Event]:
        """Stream the selected slice lazily (disk segments stay on disk)."""
        return self._database.iter_query(
            start_time=self._spec.start_time,
            end_time=self._spec.end_time,
            hosts=self._spec.hosts,
        )

    def events_from_cursor(self, cursor) -> Iterator[Event]:
        """Stream the selected slice from a checkpoint cursor onward.

        This is the seek path :func:`repro.core.snapshot.resume_events`
        uses when the journal is a replayer: the replay starts at
        ``max(spec.start_time, cursor.watermark)`` through the segment
        indexes — pre-cursor history is pruned, not scanned — and the
        cursor's frontier ties are dropped exactly as a filtered full
        replay would drop them.
        """
        if cursor is None:
            return iter(self)
        start = cursor.watermark
        if self._spec.start_time is not None:
            start = max(start, self._spec.start_time)
        selected = self._database.iter_query(
            start_time=start,
            end_time=self._spec.end_time,
            hosts=self._spec.hosts,
        )
        return self._paced(event for event in selected
                           if not cursor.covers(event))

    def _paced(self, events: Iterator[Event]) -> Iterator[Event]:
        self.events_replayed = 0
        previous_timestamp: Optional[float] = None
        speed = self._spec.speed
        for event in events:
            if speed is not None and previous_timestamp is not None:
                gap = (event.timestamp - previous_timestamp) / speed
                if gap > 0:
                    self._sleep(gap)
            previous_timestamp = event.timestamp
            self.events_replayed += 1
            yield event

    def __iter__(self) -> Iterator[Event]:
        return self._paced(self.iter_selected())

    def iter_batches(self, size: int) -> Iterator[List[Event]]:
        """Replay the selected slice in timestamp-ordered batches.

        This is the replay entry point of the batch ingestion path (and of
        the sharded runtime, which feeds its shards in chunks).  The speed
        factor is honored per batch: each batch is yielded when its *last*
        event would have been delivered by per-event replay, so a
        throttled replay covers the same wall-clock span as per-event
        replay — it just advances in batch-sized steps.
        """
        self.events_replayed = 0
        previous_timestamp: Optional[float] = None
        speed = self._spec.speed
        for batch in iter_batches(self.iter_selected(), size):
            if speed is not None:
                if previous_timestamp is None:
                    previous_timestamp = batch[0].timestamp
                gap = (batch[-1].timestamp - previous_timestamp) / speed
                if gap > 0:
                    self._sleep(gap)
                previous_timestamp = batch[-1].timestamp
            self.events_replayed += len(batch)
            yield batch
