"""Event storage and the stream replayer.

The paper's demo stores the collected monitoring data in databases and uses
a *stream replayer* (Fig. 4) to replay any host/time slice of it as a live
stream, so the same attack data can be reused to showcase different
queries.  This package provides:

* :class:`EventDatabase` — an embedded, indexed event store with range
  queries by time, host and event type, and JSON-lines persistence;
* :class:`StreamReplayer` — replays a stored slice as an event stream,
  optionally throttled to a real-time speed factor;
* :class:`CheckpointStore` — crash-safe storage for the scheduler state
  snapshots the checkpoint/recovery subsystem writes
  (:mod:`repro.core.snapshot`).
"""

from repro.storage.checkpoints import CheckpointStore
from repro.storage.database import DatabaseStats, EventDatabase
from repro.storage.replayer import ReplaySpec, StreamReplayer

__all__ = [
    "CheckpointStore",
    "DatabaseStats",
    "EventDatabase",
    "ReplaySpec",
    "StreamReplayer",
]
