"""Event storage and the stream replayer.

The paper's demo stores the collected monitoring data in databases and uses
a *stream replayer* (Fig. 4) to replay any host/time slice of it as a live
stream, so the same attack data can be reused to showcase different
queries.  This package provides:

* :class:`EventDatabase` — an embedded, indexed event store with range
  queries by time, host and event type; in-memory or persisted as a
  segment store (JSON-lines file persistence also still supported);
* :class:`SegmentStore` — the backing store: an append-only journal
  sealed into immutable indexed segments, with crash recovery and
  compaction (:mod:`repro.storage.segments`);
* :class:`StreamReplayer` — replays a stored slice as an event stream,
  optionally throttled to a real-time speed factor, with index-backed
  seek to a checkpoint cursor;
* :class:`CheckpointStore` — crash-safe storage for the scheduler state
  snapshots the checkpoint/recovery subsystem writes
  (:mod:`repro.core.snapshot`), full or differential.
"""

from repro.storage.checkpoints import CheckpointStore
from repro.storage.database import DatabaseStats, EventDatabase
from repro.storage.replayer import ReplaySpec, StreamReplayer
from repro.storage.segments import SegmentFooter, SegmentStore, StoreStats

__all__ = [
    "CheckpointStore",
    "DatabaseStats",
    "EventDatabase",
    "ReplaySpec",
    "SegmentFooter",
    "SegmentStore",
    "StoreStats",
    "StreamReplayer",
]
