"""Segment-based historical event store (the durable-state scale layer).

The event journal is organized the way log-structured stores organize
theirs: an append-only JSON-lines *journal* holds the most recent
arrivals, and once the journal exceeds a size or event bound it is
*sealed* into an immutable, internally ``(timestamp, event_id)``-sorted
segment with an index sidecar (the *footer*).  The footer carries

* the segment's min/max timestamp (whole-segment time pruning),
* per-host and per-type row lists (a hash index: ``agentid`` -> rows),
* a sparse time index (one ``[timestamp, row]`` entry per
  ``time_index_stride`` rows, so a time-range scan seeks near its start
  row instead of reading the segment from row 0), and
* per-row byte offsets (disk mode), so indexed rows are fetched with
  ``seek`` instead of a sequential scan.

Range scans (``events_between``, host-set + time-range selection) prune
whole segments by footer, bound the row window inside each surviving
segment via the sparse time index, intersect the host/type row lists,
and k-way merge the per-segment results back into global
``(timestamp, event_id)`` order.  A :meth:`SegmentStore.compact` pass
merges runs of undersized or time-overlapping segments (out-of-order
arrivals land in overlapping segments) into full-sized sorted ones.

Two backings share all of this logic:

* ``directory=None`` — in-memory segments (sealed lists of events).
  This bounds the *sort* cost of ingestion and exercises the exact
  pruned query paths, but memory still holds every event — it is the
  compatibility mode behind :class:`~repro.storage.EventDatabase`'s
  historical constructor.
* ``directory=...`` — disk segments.  Memory holds only the bounded
  journal tail plus a small per-segment summary (count, time range,
  per-host counts); the row-level indexes live in the footer sidecars
  and are loaded on demand (LRU-bounded), so resident memory tracks the
  *tail*, not the stream length.

Crash safety:

* sealed segment data files and footers are written to a temporary name,
  fsynced and atomically renamed;
* a ``MANIFEST.json`` (also atomically replaced) names the live
  segments; segment files not in the manifest are leftovers of a crash
  mid-seal/mid-compaction and are deleted on open;
* the journal's torn tail (a crash mid-append) is truncated at the last
  intact line on open;
* a crash *between* manifest commit and journal truncation would leave
  the freshly sealed events duplicated in the journal — on open,
  journal events whose ``event_id`` already appears in the newest
  sealed segment are dropped;
* a missing or unreadable footer sidecar is rebuilt from the segment
  data file.
"""

from __future__ import annotations

import bisect
import heapq
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import (Any, Dict, Iterable, Iterator, List, Optional, Sequence,
                    Set, Tuple, Union)

from repro.events.event import Event
from repro.events.serialization import event_from_json, event_to_json
from repro.obs import MetricRegistry, StageTimers

#: Default journal size (bytes) at which the tail seals into a segment.
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024
#: Default journal length (events) at which the tail seals.
DEFAULT_SEGMENT_EVENTS = 8192
#: Sparse time index density: one entry per this many rows.
DEFAULT_TIME_INDEX_STRIDE = 64
#: Footer sidecars kept resident at once (disk mode).
FOOTER_CACHE_SEGMENTS = 8
#: On-disk names inside a store directory.
MANIFEST_NAME = "MANIFEST.json"
JOURNAL_NAME = "journal.jsonl"
SEGMENT_SUBDIR = "segments"
FOOTER_SUFFIX = ".idx.json"
#: Version stamped on manifests and footers.
STORE_FORMAT = 1


def event_key(event: Event) -> Tuple[float, int]:
    """The store's canonical total order: ``(timestamp, event_id)``."""
    return (event.timestamp, event.event_id)


# ---------------------------------------------------------------------------
# Footer (the index sidecar) and the in-memory segment summary
# ---------------------------------------------------------------------------

@dataclass
class SegmentFooter:
    """The full row-level index of one sealed segment.

    Rows are positions in the segment's ``(timestamp, event_id)``-sorted
    data; ``byte_offsets`` (disk segments only) maps each row to its byte
    position in the data file.
    """

    count: int
    min_timestamp: float
    max_timestamp: float
    host_rows: Dict[str, List[int]]
    type_rows: Dict[str, List[int]]
    time_index: List[List[float]]  # [timestamp, row] pairs, sparse
    stride: int
    data_bytes: int = 0
    byte_offsets: Optional[List[int]] = None

    @classmethod
    def build(cls, events: Sequence[Event], stride: int,
              byte_offsets: Optional[List[int]] = None,
              data_bytes: int = 0) -> "SegmentFooter":
        host_rows: Dict[str, List[int]] = {}
        type_rows: Dict[str, List[int]] = {}
        time_index: List[List[float]] = []
        for row, event in enumerate(events):
            host_rows.setdefault(event.agentid, []).append(row)
            type_rows.setdefault(event.event_type.value, []).append(row)
            if row % stride == 0:
                time_index.append([event.timestamp, row])
        return cls(
            count=len(events),
            min_timestamp=events[0].timestamp if events else 0.0,
            max_timestamp=events[-1].timestamp if events else 0.0,
            host_rows=host_rows,
            type_rows=type_rows,
            time_index=time_index,
            stride=stride,
            data_bytes=data_bytes,
            byte_offsets=byte_offsets,
        )

    def to_json(self) -> Dict[str, Any]:
        data = {
            "format": STORE_FORMAT,
            "count": self.count,
            "min_timestamp": self.min_timestamp,
            "max_timestamp": self.max_timestamp,
            "host_rows": self.host_rows,
            "type_rows": self.type_rows,
            "time_index": self.time_index,
            "stride": self.stride,
            "data_bytes": self.data_bytes,
        }
        if self.byte_offsets is not None:
            data["byte_offsets"] = self.byte_offsets
        return data

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "SegmentFooter":
        if data.get("format") != STORE_FORMAT:
            raise ValueError(
                f"unknown segment footer format {data.get('format')!r}")
        return cls(
            count=int(data["count"]),
            min_timestamp=float(data["min_timestamp"]),
            max_timestamp=float(data["max_timestamp"]),
            host_rows={host: [int(row) for row in rows]
                       for host, rows in data["host_rows"].items()},
            type_rows={kind: [int(row) for row in rows]
                       for kind, rows in data["type_rows"].items()},
            time_index=[[float(ts), int(row)]
                        for ts, row in data["time_index"]],
            stride=int(data["stride"]),
            data_bytes=int(data.get("data_bytes", 0)),
            byte_offsets=([int(offset) for offset in data["byte_offsets"]]
                          if "byte_offsets" in data else None),
        )

    def row_window(self, start_time: Optional[float],
                   end_time: Optional[float]) -> Tuple[int, int]:
        """Conservative ``[low, high)`` row bounds for a time range.

        Rows are timestamp-sorted; the sparse index narrows the scan to
        at most one stride of slack on each side, and the caller's exact
        per-event filter trims the rest.
        """
        low, high = 0, self.count
        timestamps = [entry[0] for entry in self.time_index]
        if start_time is not None:
            position = bisect.bisect_left(timestamps, start_time)
            if position > 0:
                low = int(self.time_index[position - 1][1])
        if end_time is not None:
            position = bisect.bisect_left(timestamps, end_time)
            if position < len(self.time_index):
                high = int(self.time_index[position][1])
        return low, high


@dataclass
class SegmentSummary:
    """The bounded per-segment state a store keeps resident (disk mode).

    Enough for whole-segment pruning (time range, host presence) and the
    store-level listings; the row-level indexes stay in the sidecar.
    """

    count: int
    min_timestamp: float
    max_timestamp: float
    host_counts: Dict[str, int]
    type_counts: Dict[str, int]
    data_bytes: int

    @classmethod
    def of(cls, footer: SegmentFooter) -> "SegmentSummary":
        return cls(
            count=footer.count,
            min_timestamp=footer.min_timestamp,
            max_timestamp=footer.max_timestamp,
            host_counts={host: len(rows)
                         for host, rows in footer.host_rows.items()},
            type_counts={kind: len(rows)
                         for kind, rows in footer.type_rows.items()},
            data_bytes=footer.data_bytes,
        )

    def may_match(self, start_time: Optional[float],
                  end_time: Optional[float],
                  hosts: Optional[Set[str]],
                  event_types: Optional[Set[str]]) -> bool:
        """Whole-segment pruning check (False = skip the segment)."""
        if self.count == 0:
            return False
        if start_time is not None and self.max_timestamp < start_time:
            return False
        if end_time is not None and self.min_timestamp >= end_time:
            return False
        if hosts is not None and not any(host in self.host_counts
                                         for host in hosts):
            return False
        if event_types is not None and not any(kind in self.type_counts
                                               for kind in event_types):
            return False
        return True


def _candidate_rows(footer: SegmentFooter,
                    start_time: Optional[float],
                    end_time: Optional[float],
                    hosts: Optional[Set[str]],
                    event_types: Optional[Set[str]]) -> List[int]:
    """Index-select the rows a filtered scan must read (sorted)."""
    low, high = footer.row_window(start_time, end_time)
    if low >= high:
        return []
    type_rows: Optional[Set[int]] = None
    if event_types is not None:
        type_rows = set()
        for kind in event_types:
            type_rows.update(footer.type_rows.get(kind, ()))
    if hosts is not None:
        # Host row lists are disjoint (each row has one host), so a heap
        # merge yields the sorted union directly.
        merged = heapq.merge(*(footer.host_rows.get(host, [])
                               for host in hosts))
        return [row for row in merged
                if low <= row < high
                and (type_rows is None or row in type_rows)]
    if type_rows is not None:
        return [row for row in sorted(type_rows) if low <= row < high]
    return list(range(low, high))


class _SealedSegment:
    """Common selection logic over one immutable sorted segment."""

    sequence: int

    @property
    def summary(self) -> SegmentSummary:
        raise NotImplementedError

    def footer(self) -> SegmentFooter:
        raise NotImplementedError

    def iter_events(self) -> Iterator[Event]:
        """Sequentially iterate the whole segment in stored order."""
        raise NotImplementedError

    def events_at(self, rows: List[int]) -> List[Event]:
        """Fetch the given (sorted) rows."""
        raise NotImplementedError

    def select(self, start_time: Optional[float],
               end_time: Optional[float],
               hosts: Optional[Set[str]],
               event_types: Optional[Set[str]]) -> List[Event]:
        """Index-pruned selection; result is in stored (sorted) order."""
        rows = _candidate_rows(self.footer(), start_time, end_time,
                               hosts, event_types)
        if not rows:
            return []
        events = self.events_at(rows)
        if start_time is None and end_time is None:
            return events
        return [event for event in events
                if (start_time is None or event.timestamp >= start_time)
                and (end_time is None or event.timestamp < end_time)]


class MemorySegment(_SealedSegment):
    """A sealed segment whose rows live in memory (directory-less mode)."""

    def __init__(self, events: List[Event], sequence: int, stride: int):
        self.sequence = sequence
        self._events = events
        self._footer = SegmentFooter.build(events, stride=stride)
        self._summary = SegmentSummary.of(self._footer)
        self.rows_read = 0

    @property
    def summary(self) -> SegmentSummary:
        return self._summary

    def footer(self) -> SegmentFooter:
        return self._footer

    def iter_events(self) -> Iterator[Event]:
        return iter(self._events)

    def events_at(self, rows: List[int]) -> List[Event]:
        self.rows_read += len(rows)
        return [self._events[row] for row in rows]


class DiskSegment(_SealedSegment):
    """A sealed segment backed by a JSONL data file + footer sidecar."""

    def __init__(self, path: Path, summary: SegmentSummary, sequence: int,
                 stride: int, footer: Optional[SegmentFooter] = None):
        self.path = path
        self.sequence = sequence
        self._stride = stride
        self._summary = summary
        self._footer = footer
        self.rows_read = 0

    # -- construction --------------------------------------------------------

    @staticmethod
    def footer_path(path: Path) -> Path:
        return path.with_name(path.name + FOOTER_SUFFIX)

    @classmethod
    def seal(cls, events: List[Event], path: Path, sequence: int,
             stride: int) -> "DiskSegment":
        """Atomically write a sorted segment + sidecar for ``events``."""
        lines = [event_to_json(event) + "\n" for event in events]
        offsets: List[int] = []
        position = 0
        for line in lines:
            offsets.append(position)
            position += len(line.encode("utf-8"))
        temporary = path.with_name(path.name + ".tmp")
        with open(temporary, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, path)
        footer = SegmentFooter.build(events, stride=stride,
                                     byte_offsets=offsets,
                                     data_bytes=position)
        cls._write_footer(path, footer)
        return cls(path, SegmentSummary.of(footer), sequence, stride,
                   footer=footer)

    @staticmethod
    def _write_footer(path: Path, footer: SegmentFooter) -> None:
        sidecar = DiskSegment.footer_path(path)
        temporary = sidecar.with_name(sidecar.name + ".tmp")
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(footer.to_json(), handle, allow_nan=False)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, sidecar)

    @classmethod
    def open(cls, path: Path, sequence: int,
             stride: int) -> Tuple["DiskSegment", bool]:
        """Open a sealed segment; returns ``(segment, footer_rebuilt)``.

        A missing, unreadable or wrong-format sidecar is rebuilt from
        the data file (and rewritten), so losing an index never loses
        data.
        """
        sidecar = cls.footer_path(path)
        try:
            with open(sidecar, "r", encoding="utf-8") as handle:
                footer = SegmentFooter.from_json(json.load(handle))
            return cls(path, SegmentSummary.of(footer), sequence, stride,
                       footer=footer), False
        except (OSError, ValueError, KeyError, TypeError):
            footer = cls._rebuild_footer(path, stride)
            cls._write_footer(path, footer)
            return cls(path, SegmentSummary.of(footer), sequence, stride,
                       footer=footer), True

    @classmethod
    def _rebuild_footer(cls, path: Path, stride: int) -> SegmentFooter:
        events: List[Event] = []
        offsets: List[int] = []
        position = 0
        with open(path, "rb") as handle:
            for raw in handle:
                if not raw.endswith(b"\n"):
                    break  # torn tail in a copied/damaged segment file
                stripped = raw.strip()
                if stripped:
                    try:
                        event = event_from_json(stripped.decode("utf-8"))
                    except (ValueError, UnicodeDecodeError):
                        break
                    events.append(event)
                    offsets.append(position)
                position += len(raw)
        if any(event_key(events[i]) > event_key(events[i + 1])
               for i in range(len(events) - 1)):
            # Foreign/hand-edited data: re-sort and rewrite so the
            # sparse time index stays valid.
            events.sort(key=event_key)
            segment = cls.seal(events, path, sequence=0, stride=stride)
            return segment.footer()
        return SegmentFooter.build(events, stride=stride,
                                   byte_offsets=offsets, data_bytes=position)

    # -- reads ---------------------------------------------------------------

    @property
    def summary(self) -> SegmentSummary:
        return self._summary

    def footer(self) -> SegmentFooter:
        if self._footer is None:
            sidecar = self.footer_path(self.path)
            try:
                with open(sidecar, "r", encoding="utf-8") as handle:
                    self._footer = SegmentFooter.from_json(json.load(handle))
            except (OSError, ValueError, KeyError, TypeError):
                self._footer = self._rebuild_footer(self.path, self._stride)
                self._write_footer(self.path, self._footer)
        return self._footer

    def drop_footer(self) -> None:
        """Release the resident row-level index (summary stays)."""
        self._footer = None

    def iter_events(self) -> Iterator[Event]:
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    self.rows_read += 1
                    yield event_from_json(line)

    def events_at(self, rows: List[int]) -> List[Event]:
        offsets = self.footer().byte_offsets
        events: List[Event] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            if (offsets is None
                    or rows == list(range(rows[0], rows[-1] + 1))):
                # Contiguous row window (the common time-range shape):
                # one seek, then a sequential read.
                if offsets is not None:
                    handle.seek(offsets[rows[0]])
                    wanted = len(rows)
                    for line in handle:
                        if len(events) >= wanted:
                            break
                        line = line.strip()
                        if line:
                            events.append(event_from_json(line))
                else:  # no offsets recorded: sequential scan fallback
                    want = set(rows)
                    for row, event in enumerate(self.iter_events()):
                        if row in want:
                            events.append(event)
            else:
                for row in rows:
                    handle.seek(offsets[row])
                    events.append(event_from_json(handle.readline()))
        self.rows_read += len(events)
        return events


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------

@dataclass
class StoreStats:
    """Observability counters for one :class:`SegmentStore`."""

    sealed_segments: int = 0
    sealed_events: int = 0
    tail_events: int = 0
    total_events: int = 0
    seals: int = 0
    compactions: int = 0
    rows_read: int = 0
    segments_pruned: int = 0
    segments_consulted: int = 0
    torn_bytes_truncated: int = 0
    footers_rebuilt: int = 0
    orphan_segments_removed: int = 0
    journal_duplicates_dropped: int = 0


class SegmentStore:
    """An event store of immutable sorted segments plus a journal tail.

    ``directory=None`` keeps everything in memory (sealing still bounds
    per-insert sort cost and exercises the indexed query paths); with a
    directory the journal and segments persist, queries are index seeks,
    and resident memory is bounded by the tail plus per-segment
    summaries.
    """

    def __init__(self, directory: Optional[Union[str, Path]] = None,
                 segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 segment_events: int = DEFAULT_SEGMENT_EVENTS,
                 time_index_stride: int = DEFAULT_TIME_INDEX_STRIDE,
                 metrics: Optional[MetricRegistry] = None):
        if segment_bytes < 1:
            raise ValueError("segment_bytes must be positive")
        if segment_events < 1:
            raise ValueError("segment_events must be positive")
        if time_index_stride < 1:
            raise ValueError("time_index_stride must be positive")
        self.directory = Path(directory) if directory is not None else None
        self._segment_bytes = segment_bytes
        self._segment_events = segment_events
        self._stride = time_index_stride
        self._segments: List[_SealedSegment] = []
        self._next_sequence = 1
        # The journal tail, kept (timestamp, event_id)-sorted in memory;
        # the on-disk journal file is in arrival order and re-sorts on
        # open.
        self._tail: List[Event] = []
        self._tail_keys: List[Tuple[float, int]] = []
        self._tail_bytes = 0
        self._tail_host_counts: Dict[str, int] = {}
        self._tail_type_counts: Dict[str, int] = {}
        self._journal = None
        self._footer_residency: List[DiskSegment] = []
        # Counters behind stats() (rows_read et al. accumulate across
        # segment instances, so compaction does not reset them).
        self._counters = StoreStats()
        # Stage timings (seal/compact/scan) land in the shared registry
        # as ``saql_stage_seconds{stage=store_*}`` when one is attached.
        self._timers = (StageTimers(metrics)
                        if metrics is not None and metrics.enabled
                        else None)
        if self.directory is not None:
            self._open_directory()

    # -- directory lifecycle -------------------------------------------------

    @property
    def _segment_dir(self) -> Path:
        return self.directory / SEGMENT_SUBDIR

    def _segment_path(self, sequence: int) -> Path:
        return self._segment_dir / f"segment-{sequence:08d}.jsonl"

    def _manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    def _write_manifest(self) -> None:
        manifest = {
            "format": STORE_FORMAT,
            "segments": [segment.path.name for segment in self._segments],
            "next_sequence": self._next_sequence,
        }
        temporary = self._manifest_path().with_suffix(".json.tmp")
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, self._manifest_path())

    def _open_directory(self) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        self._segment_dir.mkdir(parents=True, exist_ok=True)
        names = self._adopt_manifest()
        for name in names:
            path = self._segment_dir / name
            if not path.exists():
                continue  # listed but gone: nothing recoverable
            sequence = self._sequence_of(name)
            segment, rebuilt = DiskSegment.open(path, sequence, self._stride)
            if rebuilt:
                self._counters.footers_rebuilt += 1
            self._segments.append(segment)
            self._next_sequence = max(self._next_sequence, sequence + 1)
        self._load_journal()
        self._journal = open(self.directory / JOURNAL_NAME, "a",
                             encoding="utf-8")

    @staticmethod
    def _sequence_of(name: str) -> int:
        stem = name.split(".")[0]
        try:
            return int(stem.rsplit("-", 1)[1])
        except (IndexError, ValueError):
            return 0

    def _adopt_manifest(self) -> List[str]:
        """Read the manifest; delete segment files it does not name.

        A data file without a manifest entry is a leftover of a crash
        mid-seal or mid-compaction — its events are still in the journal
        (seal truncates the journal only *after* the manifest commit), so
        deleting it is the lossless choice.  A directory with no manifest
        (foreign or hand-built) adopts every segment file it finds.
        """
        on_disk = sorted(path.name for path in self._segment_dir.glob("*.jsonl")
                         if not path.name.endswith(".tmp"))
        try:
            with open(self._manifest_path(), "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
            names = [str(name) for name in manifest.get("segments", [])]
            self._next_sequence = max(
                self._next_sequence, int(manifest.get("next_sequence", 1)))
        except (OSError, ValueError, TypeError):
            return on_disk
        live = set(names)
        for name in on_disk:
            if name not in live:
                for stale in (self._segment_dir / name,
                              DiskSegment.footer_path(self._segment_dir
                                                      / name)):
                    try:
                        stale.unlink()
                    except OSError:
                        pass
                self._counters.orphan_segments_removed += 1
        return names

    def _load_journal(self) -> None:
        """Replay the journal into the tail, truncating a torn tail.

        Every line must parse as one event; the first torn or corrupt
        line (a crash mid-append) and everything after it is truncated —
        a journal append is only durable once its newline hit the disk.
        """
        journal = self.directory / JOURNAL_NAME
        if not journal.exists():
            return
        events: List[Event] = []
        valid_bytes = 0
        total_bytes = journal.stat().st_size
        with open(journal, "rb") as handle:
            for raw in handle:
                if not raw.endswith(b"\n"):
                    break
                stripped = raw.strip()
                if stripped:
                    try:
                        events.append(event_from_json(
                            stripped.decode("utf-8")))
                    except (ValueError, UnicodeDecodeError):
                        break
                valid_bytes += len(raw)
        if valid_bytes < total_bytes:
            self._counters.torn_bytes_truncated += total_bytes - valid_bytes
            with open(journal, "r+b") as handle:
                handle.truncate(valid_bytes)
        events = self._drop_resealed(events)
        events.sort(key=event_key)
        self._tail = events
        self._tail_keys = [event_key(event) for event in events]
        self._tail_bytes = valid_bytes
        for event in events:
            self._count_tail_event(event)

    def _drop_resealed(self, events: List[Event]) -> List[Event]:
        """Drop journal events already sealed into the newest segment.

        Covers the crash window between the seal's manifest commit and
        its journal truncation: the sealed events would otherwise load
        twice.  Only the newest segment can overlap (seals always drain
        the whole journal), and only when its key range overlaps the
        journal's do we pay one segment read to compare ids.
        """
        if not events or not self._segments:
            return events
        newest = self._segments[-1]
        low = min(event.timestamp for event in events)
        if low > newest.summary.max_timestamp:
            return events
        sealed_ids = {event.event_id for event in newest.iter_events()}
        kept = [event for event in events
                if event.event_id not in sealed_ids]
        self._counters.journal_duplicates_dropped += len(events) - len(kept)
        return kept

    def flush(self) -> None:
        """Flush (and fsync) the journal so appended events are durable."""
        if self._journal is not None:
            self._journal.flush()
            os.fsync(self._journal.fileno())

    def close(self) -> None:
        """Flush and release the journal handle (the store stays usable
        for reads; appends reopen nothing and will fail)."""
        if self._journal is not None:
            self.flush()
            self._journal.close()
            self._journal = None

    # -- ingestion -----------------------------------------------------------

    def _count_tail_event(self, event: Event) -> None:
        self._tail_host_counts[event.agentid] = (
            self._tail_host_counts.get(event.agentid, 0) + 1)
        kind = event.event_type.value
        self._tail_type_counts[kind] = (
            self._tail_type_counts.get(kind, 0) + 1)

    def append(self, event: Event) -> None:
        """Append one event (journaled, sealed once the tail fills)."""
        self.append_many((event,))

    def append_many(self, events: Iterable[Event]) -> int:
        """Append a batch; returns the number appended.

        The batch is journaled in arrival order, merged into the sorted
        tail (append-fast when it lands at or past the tail's end, the
        common live-stream case), and the tail seals into a segment when
        it crosses the size/length bound.  Batches larger than one
        segment are folded in segment-sized chunks so the size bound
        holds (a bulk load becomes several segments, not one giant one).
        """
        incoming = sorted(events, key=event_key)
        if not incoming:
            return 0
        chunk = self._segment_events
        if len(incoming) > chunk:
            for start in range(0, len(incoming), chunk):
                self._append_sorted(incoming[start:start + chunk])
        else:
            self._append_sorted(incoming)
        return len(incoming)

    def _append_sorted(self, incoming: List[Event]) -> None:
        if self._journal is not None:
            lines = [event_to_json(event) + "\n" for event in incoming]
            self._journal.writelines(lines)
            self._journal.flush()
            self._tail_bytes += sum(len(line.encode("utf-8"))
                                    for line in lines)
        for event in incoming:
            self._count_tail_event(event)
        if (not self._tail
                or event_key(incoming[0]) >= self._tail_keys[-1]):
            self._tail.extend(incoming)
            self._tail_keys.extend(event_key(event) for event in incoming)
        else:
            merged: List[Event] = []
            keys: List[Tuple[float, int]] = []
            position, total = 0, len(self._tail)
            for event in incoming:
                key = event_key(event)
                while (position < total
                       and self._tail_keys[position] <= key):
                    merged.append(self._tail[position])
                    keys.append(self._tail_keys[position])
                    position += 1
                merged.append(event)
                keys.append(key)
            merged.extend(self._tail[position:])
            keys.extend(self._tail_keys[position:])
            self._tail = merged
            self._tail_keys = keys
        self._maybe_seal()

    def _maybe_seal(self) -> None:
        if len(self._tail) >= self._segment_events:
            self.seal_tail()
        elif (self.directory is not None
              and self._tail_bytes >= self._segment_bytes):
            self.seal_tail()

    def seal_tail(self) -> Optional[_SealedSegment]:
        """Seal the journal tail into an immutable sorted segment."""
        if not self._tail:
            return None
        seal_started = perf_counter() if self._timers is not None else 0.0
        events = self._tail
        sequence = self._next_sequence
        self._next_sequence += 1
        if self.directory is None:
            segment: _SealedSegment = MemorySegment(events, sequence,
                                                    self._stride)
            self._segments.append(segment)
        else:
            path = self._segment_path(sequence)
            segment = DiskSegment.seal(events, path, sequence, self._stride)
            self._segments.append(segment)
            self._note_footer_resident(segment)
            # Commit order matters: manifest first, then journal
            # truncation — a crash in between duplicates events into the
            # journal, which _drop_resealed undoes on the next open
            # (truncating first would *lose* them instead).
            self._write_manifest()
            self._journal.flush()
            self._journal.truncate(0)
            self._journal.seek(0)
        self._tail = []
        self._tail_keys = []
        self._tail_bytes = 0
        self._tail_host_counts = {}
        self._tail_type_counts = {}
        self._counters.seals += 1
        if self._timers is not None:
            self._timers.observe("store_seal",
                                 perf_counter() - seal_started)
        return segment

    def _note_footer_resident(self, segment: DiskSegment) -> None:
        """LRU-bound how many row-level footers stay in memory."""
        if segment in self._footer_residency:
            self._footer_residency.remove(segment)
        self._footer_residency.append(segment)
        while len(self._footer_residency) > FOOTER_CACHE_SEGMENTS:
            self._footer_residency.pop(0).drop_footer()

    # -- compaction ----------------------------------------------------------

    def compact(self) -> int:
        """Merge runs of undersized or time-overlapping segments.

        Out-of-order arrivals seal into segments whose time ranges
        overlap; merging them restores disjoint ranges so time pruning
        regains its bite, and folding undersized segments (early seals,
        previous compactions' leftovers) keeps the segment count — and
        with it every query's pruning pass — bounded.  Returns the
        number of merges performed.
        """
        compact_started = (perf_counter() if self._timers is not None
                           else 0.0)
        merges = 0
        while True:
            group = self._next_compaction_group()
            if group is None:
                if self._timers is not None:
                    self._timers.observe("store_compact",
                                         perf_counter() - compact_started)
                return merges
            start, length = group
            self._merge_segments(start, length)
            merges += 1
            self._counters.compactions += 1

    def _next_compaction_group(self) -> Optional[Tuple[int, int]]:
        segments = self._segments
        for start in range(len(segments) - 1):
            count = segments[start].summary.count
            length = 1
            for follower in segments[start + 1:]:
                summary = follower.summary
                overlapping = (summary.min_timestamp
                               <= segments[start + length - 1]
                               .summary.max_timestamp)
                undersized = (summary.count < self._segment_events // 2
                              and count < self._segment_events)
                if not (overlapping or undersized):
                    break
                if count + summary.count > self._segment_events * 4:
                    break
                count += summary.count
                length += 1
            if length > 1:
                return start, length
        return None

    def _merge_segments(self, start: int, length: int) -> None:
        group = self._segments[start:start + length]
        merged_iter = heapq.merge(*(segment.iter_events()
                                    for segment in group), key=event_key)
        events = list(merged_iter)
        sequence = self._next_sequence
        self._next_sequence += 1
        if self.directory is None:
            replacement: _SealedSegment = MemorySegment(events, sequence,
                                                        self._stride)
            self._segments[start:start + length] = [replacement]
            return
        path = self._segment_path(sequence)
        replacement = DiskSegment.seal(events, path, sequence, self._stride)
        self._segments[start:start + length] = [replacement]
        self._note_footer_resident(replacement)
        self._write_manifest()  # commit point: the merged segment is live
        for segment in group:
            if segment in self._footer_residency:
                self._footer_residency.remove(segment)
            for stale in (segment.path,
                          DiskSegment.footer_path(segment.path)):
                try:
                    stale.unlink()
                except OSError:
                    pass  # manifest no longer names it; open() cleans up

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return sum(segment.summary.count
                   for segment in self._segments) + len(self._tail)

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    @property
    def segment_events(self) -> int:
        return self._segment_events

    @property
    def segment_bytes(self) -> int:
        return self._segment_bytes

    @property
    def hosts(self) -> List[str]:
        names: Set[str] = set(self._tail_host_counts)
        for segment in self._segments:
            names.update(segment.summary.host_counts)
        return sorted(names)

    def host_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = dict(self._tail_host_counts)
        for segment in self._segments:
            for host, count in segment.summary.host_counts.items():
                counts[host] = counts.get(host, 0) + count
        return counts

    def type_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = dict(self._tail_type_counts)
        for segment in self._segments:
            for kind, count in segment.summary.type_counts.items():
                counts[kind] = counts.get(kind, 0) + count
        return counts

    @property
    def time_range(self) -> Optional[Tuple[float, float]]:
        lows: List[float] = []
        highs: List[float] = []
        for segment in self._segments:
            if segment.summary.count:
                lows.append(segment.summary.min_timestamp)
                highs.append(segment.summary.max_timestamp)
        if self._tail:
            lows.append(self._tail_keys[0][0])
            highs.append(self._tail_keys[-1][0])
        if not lows:
            return None
        return (min(lows), max(highs))

    def _select_tail(self, start_time: Optional[float],
                     end_time: Optional[float],
                     hosts: Optional[Set[str]],
                     event_types: Optional[Set[str]]) -> List[Event]:
        low, high = 0, len(self._tail)
        if start_time is not None:
            low = bisect.bisect_left(self._tail_keys, (start_time,))
        if end_time is not None:
            high = bisect.bisect_left(self._tail_keys, (end_time,))
        selected = []
        for event in self._tail[low:high]:
            if hosts is not None and event.agentid not in hosts:
                continue
            if (event_types is not None
                    and event.event_type.value not in event_types):
                continue
            selected.append(event)
        self._counters.rows_read += high - low
        return selected

    def iter_query(self, start_time: Optional[float] = None,
                   end_time: Optional[float] = None,
                   hosts: Optional[Sequence[str]] = None,
                   event_types: Optional[Sequence[str]] = None
                   ) -> Iterator[Event]:
        """Stream events in ``[start_time, end_time)`` for the given
        hosts/types, in global ``(timestamp, event_id)`` order.

        Whole segments outside the time range (or containing none of the
        hosts/types) are pruned by summary; surviving segments are read
        through their row indexes; the per-segment results merge with
        the tail.
        """
        host_filter = set(hosts) if hosts else None
        type_filter = set(event_types) if event_types else None
        unfiltered = (start_time is None and end_time is None
                      and host_filter is None and type_filter is None)
        sources: List[Iterable[Event]] = []
        for segment in self._segments:
            if not segment.summary.may_match(start_time, end_time,
                                             host_filter, type_filter):
                self._counters.segments_pruned += 1
                continue
            self._counters.segments_consulted += 1
            if unfiltered:
                sources.append(segment.iter_events())
            else:
                selected = segment.select(start_time, end_time,
                                          host_filter, type_filter)
                if selected:
                    sources.append(selected)
        tail = self._select_tail(start_time, end_time, host_filter,
                                 type_filter)
        if tail:
            sources.append(tail)
        if not sources:
            return iter(())
        if len(sources) == 1:
            return iter(sources[0])
        return heapq.merge(*sources, key=event_key)

    def query(self, start_time: Optional[float] = None,
              end_time: Optional[float] = None,
              hosts: Optional[Sequence[str]] = None,
              event_types: Optional[Sequence[str]] = None) -> List[Event]:
        """Materialized form of :meth:`iter_query`."""
        return list(self.iter_query(start_time, end_time, hosts,
                                    event_types))

    def scan(self) -> Iterator[Event]:
        """Iterate every stored event in global order.

        With metrics attached the total time spent *producing* events
        (not the consumer's work between pulls) is observed as one
        ``store_scan`` stage sample when the iterator is exhausted.
        """
        iterator = self.iter_query()
        if self._timers is None:
            return iterator
        return self._timed_scan(iterator)

    def _timed_scan(self, iterator: Iterator[Event]) -> Iterator[Event]:
        elapsed = 0.0
        while True:
            pull_started = perf_counter()
            try:
                event = next(iterator)
            except StopIteration:
                elapsed += perf_counter() - pull_started
                break
            elapsed += perf_counter() - pull_started
            yield event
        self._timers.observe("store_scan", elapsed)

    def stats(self) -> StoreStats:
        """Return a snapshot of the store's observability counters."""
        rows_read = self._counters.rows_read + sum(
            getattr(segment, "rows_read", 0) for segment in self._segments)
        sealed = sum(segment.summary.count for segment in self._segments)
        return StoreStats(
            sealed_segments=len(self._segments),
            sealed_events=sealed,
            tail_events=len(self._tail),
            total_events=sealed + len(self._tail),
            seals=self._counters.seals,
            compactions=self._counters.compactions,
            rows_read=rows_read,
            segments_pruned=self._counters.segments_pruned,
            segments_consulted=self._counters.segments_consulted,
            torn_bytes_truncated=self._counters.torn_bytes_truncated,
            footers_rebuilt=self._counters.footers_rebuilt,
            orphan_segments_removed=self._counters.orphan_segments_removed,
            journal_duplicates_dropped=(
                self._counters.journal_duplicates_dropped),
        )
