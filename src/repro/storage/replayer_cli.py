"""Command-line front-end for the stream replayer (``saql-replay``).

The paper's replayer exposes a small web UI for choosing hosts and the
start/end time; this reproduction provides the same controls on the
command line and writes the selected slice either to stdout (as JSON
lines) or to an output file.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.events.serialization import event_to_json
from repro.storage.database import EventDatabase
from repro.storage.replayer import ReplaySpec, StreamReplayer


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the replayer CLI."""
    parser = argparse.ArgumentParser(
        prog="saql-replay",
        description="Replay stored system monitoring data as an event stream.")
    parser.add_argument("database",
                        help="JSON-lines file written by EventDatabase.save()")
    parser.add_argument("--hosts", nargs="*", default=None,
                        help="host identifiers to replay (default: all)")
    parser.add_argument("--start", type=float, default=None,
                        help="start timestamp (inclusive)")
    parser.add_argument("--end", type=float, default=None,
                        help="end timestamp (exclusive)")
    parser.add_argument("--speed", type=float, default=None,
                        help="replay speed factor (default: as fast as possible)")
    parser.add_argument("--output", default=None,
                        help="write the replayed events to this JSON-lines file")
    parser.add_argument("--stats", action="store_true",
                        help="print database statistics and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``saql-replay`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)

    database = EventDatabase.load(args.database)
    if args.stats:
        stats = database.stats()
        print(f"events: {stats.total_events}")
        print(f"hosts: {', '.join(stats.hosts)}")
        if stats.first_timestamp is not None:
            print(f"time range: [{stats.first_timestamp}, "
                  f"{stats.last_timestamp}]")
        for type_name, count in sorted(stats.by_type.items()):
            print(f"  {type_name} events: {count}")
        return 0

    spec = ReplaySpec(hosts=args.hosts, start_time=args.start,
                      end_time=args.end, speed=args.speed)
    replayer = StreamReplayer(database, spec)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            for event in replayer:
                handle.write(event_to_json(event))
                handle.write("\n")
    else:
        for event in replayer:
            sys.stdout.write(event_to_json(event))
            sys.stdout.write("\n")
    print(f"replayed {replayer.events_replayed} events", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
