"""An embedded event database for collected monitoring data.

Since PR 9 the database is a facade over the segment-based store in
:mod:`repro.storage.segments`: events live in an append-only journal
tail that seals into immutable, index-footed segments, and every range
scan (host set + time range) is a segment-pruned index seek instead of
a list scan.  Constructed without a directory the store is purely
in-memory (the historical behavior); :meth:`EventDatabase.open` puts it
on disk, where resident memory is bounded by the journal tail, crash
recovery truncates torn tails, and replay-after-checkpoint seeks
straight to the resume cursor via :meth:`events_from_cursor`.

Persistence keeps both shapes: :meth:`save`/:meth:`load` with a file
path speak the original plain JSON-lines format (a captured day of data
stays portable), and with a directory path they speak the segment-store
layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import (Dict, Iterable, Iterator, List, Optional, Sequence,
                    Union)

from repro.events.event import Event
from repro.events.serialization import read_events_jsonl, write_events_jsonl
from repro.storage.segments import SegmentStore, StoreStats


@dataclass
class DatabaseStats:
    """Summary statistics of a database's contents."""

    total_events: int = 0
    hosts: List[str] = field(default_factory=list)
    first_timestamp: Optional[float] = None
    last_timestamp: Optional[float] = None
    by_type: Dict[str, int] = field(default_factory=dict)
    #: Segment-level layout (sealed segment count, rows read, pruning
    #: counters); None only for stats objects built by old callers.
    storage: Optional[StoreStats] = None


class EventDatabase:
    """Stores monitoring events and answers host/time range queries.

    The canonical store order is ``(timestamp, event_id)`` — a total order
    over any journal, which the checkpoint/recovery subsystem relies on to
    resume a replay exactly after the last checkpointed event.  The
    backing :class:`~repro.storage.segments.SegmentStore` maintains it
    across the sorted journal tail and the sealed segments; queries merge
    the two back into global order.
    """

    def __init__(self, events: Iterable[Event] = (),
                 store: Optional[SegmentStore] = None):
        self._store = store if store is not None else SegmentStore()
        self.insert_many(events)

    # -- construction ------------------------------------------------------------

    @classmethod
    def open(cls, directory: Union[str, Path], *,
             segment_bytes: Optional[int] = None,
             segment_events: Optional[int] = None) -> "EventDatabase":
        """Open (or create) a persistent segment-store database.

        Re-opening an existing directory recovers it: torn journal tails
        are truncated, orphaned segment files from a crashed seal are
        removed, and missing index sidecars are rebuilt.
        """
        options: Dict[str, int] = {}
        if segment_bytes is not None:
            options["segment_bytes"] = segment_bytes
        if segment_events is not None:
            options["segment_events"] = segment_events
        return cls(store=SegmentStore(directory, **options))

    @property
    def store(self) -> SegmentStore:
        """The backing segment store (indexes, compaction, counters)."""
        return self._store

    @property
    def directory(self) -> Optional[Path]:
        """Where the store persists, or None for an in-memory database."""
        return self._store.directory

    # -- ingestion ---------------------------------------------------------------

    def insert(self, event: Event) -> None:
        """Insert one event, keeping the store order and indexes consistent."""
        self._store.append(event)

    def insert_many(self, events: Iterable[Event]) -> int:
        """Insert many events at once (faster than repeated single inserts)."""
        return self._store.append_many(events)

    def flush(self) -> None:
        """Make appended events durable (disk-backed stores; no-op in memory)."""
        self._store.flush()

    def close(self) -> None:
        """Flush and release the journal handle (disk-backed stores)."""
        self._store.close()

    def compact(self) -> int:
        """Merge undersized/overlapping segments; returns merges performed."""
        return self._store.compact()

    def __len__(self) -> int:
        return len(self._store)

    # -- queries ---------------------------------------------------------------------

    @property
    def hosts(self) -> List[str]:
        """Return the distinct host identifiers present in the store."""
        return self._store.hosts

    @property
    def time_range(self) -> Optional[tuple]:
        """Return (first, last) timestamps, or None when empty."""
        return self._store.time_range

    def query(self, start_time: Optional[float] = None,
              end_time: Optional[float] = None,
              hosts: Optional[Sequence[str]] = None,
              event_types: Optional[Sequence[str]] = None) -> List[Event]:
        """Return events in ``[start_time, end_time)`` for the given hosts.

        All filters are optional; omitted filters select everything.
        ``event_types`` accepts the category names ``process``, ``file``,
        ``network``.  Selection is index-backed: whole segments outside
        the range are pruned, surviving ones are read through their
        host/type/time indexes.
        """
        return self._store.query(start_time, end_time, hosts, event_types)

    def iter_query(self, start_time: Optional[float] = None,
                   end_time: Optional[float] = None,
                   hosts: Optional[Sequence[str]] = None,
                   event_types: Optional[Sequence[str]] = None
                   ) -> Iterator[Event]:
        """Streaming form of :meth:`query` (lazy over disk segments)."""
        return self._store.iter_query(start_time, end_time, hosts,
                                      event_types)

    def events_for_host(self, host: str,
                        start_time: Optional[float] = None,
                        end_time: Optional[float] = None) -> List[Event]:
        """Return one host's events (optionally time-bounded), index-backed."""
        return self._store.query(start_time, end_time, hosts=[host])

    def events_between(self, start_time: float,
                       end_time: float,
                       hosts: Optional[Sequence[str]] = None) -> List[Event]:
        """Return events in ``[start_time, end_time)``, index-backed."""
        return self._store.query(start_time, end_time, hosts=hosts)

    def events_from_cursor(self, cursor) -> Iterator[Event]:
        """Stream the events *after* a checkpoint's resume cursor.

        Seeks to ``cursor.watermark`` through the segment indexes —
        whole segments before the watermark are pruned unread — and
        drops the frontier ties the checkpointed run had already
        processed.  Equivalent to filtering a full scan through
        ``cursor.covers`` but without reading the pre-cursor history.
        """
        if cursor is None:
            return self.scan()
        return (event
                for event in self._store.iter_query(
                    start_time=cursor.watermark)
                if not cursor.covers(event))

    def scan(self) -> Iterator[Event]:
        """Iterate every stored event in time order."""
        return self._store.scan()

    def stats(self) -> DatabaseStats:
        """Return summary statistics of the stored data."""
        time_range = self.time_range
        return DatabaseStats(
            total_events=len(self._store),
            hosts=self.hosts,
            first_timestamp=time_range[0] if time_range else None,
            last_timestamp=time_range[1] if time_range else None,
            by_type=self._store.type_counts(),
            storage=self._store.stats(),
        )

    # -- persistence ---------------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> int:
        """Persist the store; returns the event count.

        A path with a file suffix (``captured.jsonl``) writes the
        original plain JSON-lines format; an existing directory — or a
        suffix-less path, which is created as one — writes a segment
        store (journal sealed, ready for :meth:`open`).
        """
        path = Path(path)
        if path.is_dir() or not path.suffix:
            return self.save_segments(path)
        return write_events_jsonl(self.scan(), path)

    def save_segments(self, directory: Union[str, Path]) -> int:
        """Persist the store as a segment directory; returns the count."""
        directory = Path(directory)
        if self.directory is not None and directory == self.directory:
            self._store.seal_tail()
            self._store.flush()
            return len(self._store)
        target = SegmentStore(directory,
                              segment_events=self._store.segment_events,
                              segment_bytes=self._store.segment_bytes)
        count = target.append_many(self.scan())
        target.seal_tail()
        target.close()
        return count

    @classmethod
    def load(cls, path: Union[str, Path],
             **open_options) -> "EventDatabase":
        """Load a store previously written by :meth:`save`.

        A plain JSON-lines file loads into memory (the legacy format);
        a directory opens as a persistent segment store.
        """
        path = Path(path)
        if path.is_dir():
            return cls.open(path, **open_options)
        return cls(read_events_jsonl(path))
