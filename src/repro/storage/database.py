"""An embedded event database for collected monitoring data.

Events are kept sorted by timestamp with secondary indexes by host
(``agentid``) and by event type, supporting the range scans the stream
replayer needs (host set + time range).  The store persists to JSON-lines
files via :mod:`repro.events.serialization`, so a captured day of data can
be saved and replayed later.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Union

from repro.events.event import Event
from repro.events.serialization import read_events_jsonl, write_events_jsonl


@dataclass
class DatabaseStats:
    """Summary statistics of a database's contents."""

    total_events: int = 0
    hosts: List[str] = field(default_factory=list)
    first_timestamp: Optional[float] = None
    last_timestamp: Optional[float] = None
    by_type: Dict[str, int] = field(default_factory=dict)


class EventDatabase:
    """Stores monitoring events and answers host/time range queries.

    The canonical store order is ``(timestamp, event_id)`` — a total order
    over any journal, which the checkpoint/recovery subsystem relies on to
    resume a replay exactly after the last checkpointed event.  Both
    ingestion paths maintain it incrementally: :meth:`insert` bisects into
    place, :meth:`insert_many` sorts only the incoming batch and merges it
    with the (already sorted) store — appending outright when the batch
    starts at or past the store's tail, the common journal-append case —
    and the per-host/per-type indexes are updated per event instead of
    being cleared and rebuilt.
    """

    def __init__(self, events: Iterable[Event] = ()):
        self._events: List[Event] = []
        #: Sort keys parallel to ``_events`` (bisect cannot take a key
        #: argument on the stored objects cheaply before 3.10's key=).
        self._keys: List[tuple] = []
        self._by_host: Dict[str, int] = {}
        self._by_type: Dict[str, int] = {}
        self.insert_many(events)

    @staticmethod
    def _key(event: Event) -> tuple:
        return (event.timestamp, event.event_id)

    def _index_event(self, event: Event) -> None:
        self._by_host[event.agentid] = self._by_host.get(event.agentid,
                                                         0) + 1
        type_key = event.event_type.value
        self._by_type[type_key] = self._by_type.get(type_key, 0) + 1

    # -- ingestion ---------------------------------------------------------------

    def insert(self, event: Event) -> None:
        """Insert one event, keeping the store order and indexes consistent."""
        key = self._key(event)
        if not self._keys or key >= self._keys[-1]:
            self._keys.append(key)
            self._events.append(event)
        else:
            position = bisect.bisect_right(self._keys, key)
            self._keys.insert(position, key)
            self._events.insert(position, event)
        self._index_event(event)

    def insert_many(self, events: Iterable[Event]) -> int:
        """Insert many events at once (faster than repeated single inserts).

        The incoming batch is sorted alone (``O(k log k)``) and merged
        with the store in one linear pass, instead of re-sorting the whole
        store per call.
        """
        incoming = sorted(events, key=self._key)
        if not incoming:
            return 0
        for event in incoming:
            self._index_event(event)
        if not self._events or self._key(incoming[0]) >= self._keys[-1]:
            # Pure append: the batch lies entirely at or past the tail.
            self._events.extend(incoming)
            self._keys.extend(self._key(event) for event in incoming)
            return len(incoming)
        merged: List[Event] = []
        keys: List[tuple] = []
        existing = self._events
        position = 0
        total = len(existing)
        for event in incoming:
            key = self._key(event)
            while position < total and self._keys[position] <= key:
                merged.append(existing[position])
                keys.append(self._keys[position])
                position += 1
            merged.append(event)
            keys.append(key)
        merged.extend(existing[position:])
        keys.extend(self._keys[position:])
        self._events = merged
        self._keys = keys
        return len(incoming)

    def __len__(self) -> int:
        return len(self._events)

    # -- queries ---------------------------------------------------------------------

    @property
    def hosts(self) -> List[str]:
        """Return the distinct host identifiers present in the store."""
        return sorted(self._by_host.keys())

    @property
    def time_range(self) -> Optional[tuple]:
        """Return (first, last) timestamps, or None when empty."""
        if not self._events:
            return None
        return (self._keys[0][0], self._keys[-1][0])

    def query(self, start_time: Optional[float] = None,
              end_time: Optional[float] = None,
              hosts: Optional[Sequence[str]] = None,
              event_types: Optional[Sequence[str]] = None) -> List[Event]:
        """Return events in ``[start_time, end_time)`` for the given hosts.

        All filters are optional; omitted filters select everything.
        ``event_types`` accepts the category names ``process``, ``file``,
        ``network``.
        """
        low = 0
        high = len(self._events)
        # A one-element tuple compares below every (timestamp, event_id)
        # key sharing its timestamp, so these bisects behave exactly like
        # bisect_left over a plain timestamp list.
        if start_time is not None:
            low = bisect.bisect_left(self._keys, (start_time,))
        if end_time is not None:
            high = bisect.bisect_left(self._keys, (end_time,))
        host_filter: Optional[Set[str]] = set(hosts) if hosts else None
        type_filter: Optional[Set[str]] = (set(event_types) if event_types
                                           else None)
        results: List[Event] = []
        for event in self._events[low:high]:
            if host_filter is not None and event.agentid not in host_filter:
                continue
            if (type_filter is not None
                    and event.event_type.value not in type_filter):
                continue
            results.append(event)
        return results

    def scan(self) -> Iterator[Event]:
        """Iterate every stored event in time order."""
        return iter(self._events)

    def stats(self) -> DatabaseStats:
        """Return summary statistics of the stored data."""
        time_range = self.time_range
        return DatabaseStats(
            total_events=len(self._events),
            hosts=self.hosts,
            first_timestamp=time_range[0] if time_range else None,
            last_timestamp=time_range[1] if time_range else None,
            by_type=dict(self._by_type),
        )

    # -- persistence ---------------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> int:
        """Persist the store to a JSON-lines file; returns the event count."""
        return write_events_jsonl(self._events, path)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "EventDatabase":
        """Load a store previously written by :meth:`save`."""
        return cls(read_events_jsonl(path))
