"""An embedded event database for collected monitoring data.

Events are kept sorted by timestamp with secondary indexes by host
(``agentid``) and by event type, supporting the range scans the stream
replayer needs (host set + time range).  The store persists to JSON-lines
files via :mod:`repro.events.serialization`, so a captured day of data can
be saved and replayed later.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Union

from repro.events.event import Event
from repro.events.serialization import read_events_jsonl, write_events_jsonl


@dataclass
class DatabaseStats:
    """Summary statistics of a database's contents."""

    total_events: int = 0
    hosts: List[str] = field(default_factory=list)
    first_timestamp: Optional[float] = None
    last_timestamp: Optional[float] = None
    by_type: Dict[str, int] = field(default_factory=dict)


class EventDatabase:
    """Stores monitoring events and answers host/time range queries."""

    def __init__(self, events: Iterable[Event] = ()):
        self._events: List[Event] = []
        self._timestamps: List[float] = []
        self._by_host: Dict[str, List[int]] = {}
        self._by_type: Dict[str, int] = {}
        self.insert_many(events)

    # -- ingestion ---------------------------------------------------------------

    def insert(self, event: Event) -> None:
        """Insert one event, keeping the time order and indexes consistent."""
        position = bisect.bisect_right(self._timestamps, event.timestamp)
        self._timestamps.insert(position, event.timestamp)
        self._events.insert(position, event)
        # Positional host indexes are rebuilt lazily; mark them stale.
        self._by_host.clear()
        type_key = event.event_type.value
        self._by_type[type_key] = self._by_type.get(type_key, 0) + 1

    def insert_many(self, events: Iterable[Event]) -> int:
        """Insert many events at once (faster than repeated single inserts)."""
        events = list(events)
        if not events:
            return 0
        self._events.extend(events)
        self._events.sort(key=lambda event: (event.timestamp, event.event_id))
        self._timestamps = [event.timestamp for event in self._events]
        self._by_host.clear()
        for event in events:
            type_key = event.event_type.value
            self._by_type[type_key] = self._by_type.get(type_key, 0) + 1
        return len(events)

    def __len__(self) -> int:
        return len(self._events)

    # -- queries ---------------------------------------------------------------------

    def _host_index(self) -> Dict[str, List[int]]:
        if not self._by_host and self._events:
            for position, event in enumerate(self._events):
                self._by_host.setdefault(event.agentid, []).append(position)
        return self._by_host

    @property
    def hosts(self) -> List[str]:
        """Return the distinct host identifiers present in the store."""
        return sorted(self._host_index().keys())

    @property
    def time_range(self) -> Optional[tuple]:
        """Return (first, last) timestamps, or None when empty."""
        if not self._events:
            return None
        return (self._timestamps[0], self._timestamps[-1])

    def query(self, start_time: Optional[float] = None,
              end_time: Optional[float] = None,
              hosts: Optional[Sequence[str]] = None,
              event_types: Optional[Sequence[str]] = None) -> List[Event]:
        """Return events in ``[start_time, end_time)`` for the given hosts.

        All filters are optional; omitted filters select everything.
        ``event_types`` accepts the category names ``process``, ``file``,
        ``network``.
        """
        low = 0
        high = len(self._events)
        if start_time is not None:
            low = bisect.bisect_left(self._timestamps, start_time)
        if end_time is not None:
            high = bisect.bisect_left(self._timestamps, end_time)
        host_filter: Optional[Set[str]] = set(hosts) if hosts else None
        type_filter: Optional[Set[str]] = (set(event_types) if event_types
                                           else None)
        results: List[Event] = []
        for event in self._events[low:high]:
            if host_filter is not None and event.agentid not in host_filter:
                continue
            if (type_filter is not None
                    and event.event_type.value not in type_filter):
                continue
            results.append(event)
        return results

    def scan(self) -> Iterator[Event]:
        """Iterate every stored event in time order."""
        return iter(self._events)

    def stats(self) -> DatabaseStats:
        """Return summary statistics of the stored data."""
        time_range = self.time_range
        return DatabaseStats(
            total_events=len(self._events),
            hosts=self.hosts,
            first_timestamp=time_range[0] if time_range else None,
            last_timestamp=time_range[1] if time_range else None,
            by_type=dict(self._by_type),
        )

    # -- persistence ---------------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> int:
        """Persist the store to a JSON-lines file; returns the event count."""
        return write_events_jsonl(self._events, path)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "EventDatabase":
        """Load a store previously written by :meth:`save`."""
        return cls(read_events_jsonl(path))
