"""Durable checkpoint storage for scheduler state snapshots.

A :class:`CheckpointStore` persists the JSON snapshots produced by
``ConcurrentQueryScheduler.export_state`` / ``ShardedScheduler`` so a
crashed run can restore its engines and resume the journal from the
checkpoint cursor (see :mod:`repro.core.snapshot`).

Writes are crash-safe: each checkpoint lands in a temporary file that is
atomically renamed into place, so :meth:`latest` never observes a torn
snapshot — a crash mid-write leaves only the previous checkpoints.  The
store keeps a bounded history (``keep`` most recent) and skips unreadable
files on load, so one corrupted checkpoint degrades recovery to the one
before it instead of failing it.

On-disk format (since format 2) wraps the snapshot in a checksummed
container — ``{"format": 2, "checksum": "sha256:...", "snapshot": ...}``
— where the digest covers the canonical JSON encoding of the snapshot.
A file that parses as JSON but whose content was silently damaged
(bit rot, a partial overwrite that still happens to parse, a filesystem
that reordered writes across a crash) therefore fails verification and
:meth:`latest` falls back to the previous checkpoint, exactly like a
parse error.  Checksum-less files written before format 2 (a bare
snapshot dict) are still read.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

_CHECKPOINT_PATTERN = re.compile(r"^checkpoint-(\d{8})\.json$")

#: On-disk container format version (bare, checksum-less snapshots
#: predate the field and load as "format 1").
CHECKPOINT_FORMAT = 2


def _canonical_encoding(snapshot: Dict[str, Any]) -> bytes:
    """The byte string the checksum covers: canonical strict JSON."""
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":"),
                      allow_nan=False).encode("utf-8")


def snapshot_checksum(snapshot: Dict[str, Any]) -> str:
    """Return the content checksum recorded alongside a snapshot."""
    return "sha256:" + hashlib.sha256(_canonical_encoding(snapshot)).hexdigest()


class CorruptCheckpoint(ValueError):
    """A checkpoint file parsed but failed content verification."""


class CheckpointStore:
    """Stores versioned scheduler snapshots as numbered JSON files."""

    def __init__(self, directory: Union[str, Path], keep: int = 3):
        if keep < 1:
            raise ValueError("checkpoint store must keep at least 1 snapshot")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._keep = keep

    def _sequence_numbers(self) -> List[int]:
        numbers = []
        for entry in self.directory.iterdir():
            match = _CHECKPOINT_PATTERN.match(entry.name)
            if match:
                numbers.append(int(match.group(1)))
        return sorted(numbers)

    def _path_for(self, sequence: int) -> Path:
        return self.directory / f"checkpoint-{sequence:08d}.json"

    def paths(self) -> List[Path]:
        """Return the stored checkpoint files, oldest first."""
        return [self._path_for(sequence)
                for sequence in self._sequence_numbers()]

    def __len__(self) -> int:
        return len(self._sequence_numbers())

    def save(self, snapshot: Dict[str, Any]) -> Path:
        """Persist one snapshot (checksummed container); returns its path.

        ``allow_nan=False`` enforces the wire-format contract: every
        non-finite float must have been marker-encoded by the snapshot
        codecs, so the stored file is strict JSON.
        """
        numbers = self._sequence_numbers()
        sequence = (numbers[-1] + 1) if numbers else 1
        path = self._path_for(sequence)
        temporary = path.with_suffix(".json.tmp")
        container = {
            "format": CHECKPOINT_FORMAT,
            "checksum": snapshot_checksum(snapshot),
            "snapshot": snapshot,
        }
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(container, handle, allow_nan=False)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, path)
        for stale in numbers[:max(0, len(numbers) + 1 - self._keep)]:
            try:
                self._path_for(stale).unlink()
            except OSError:
                pass  # pruning is best-effort; a leftover file is harmless
        return path

    def latest(self) -> Optional[Dict[str, Any]]:
        """Return the newest verified snapshot (None when the store is empty).

        Unreadable, truncated *or checksum-mismatched* files (a disk
        that lied about the fsync, bit rot, manual tampering, a partial
        write that still parses as JSON) are skipped in favour of the
        next-older checkpoint, trading recovery freshness for recovery
        success.
        """
        for sequence in reversed(self._sequence_numbers()):
            try:
                with open(self._path_for(sequence), "r",
                          encoding="utf-8") as handle:
                    return self._verify(json.load(handle))
            except (OSError, json.JSONDecodeError, CorruptCheckpoint):
                continue
        return None

    @staticmethod
    def _verify(payload: Dict[str, Any]) -> Dict[str, Any]:
        """Unwrap a stored container, verifying its content checksum.

        Pre-format-2 files are a bare snapshot dict with no checksum to
        verify; they pass through unchanged (the snapshot codecs still
        version-check the content itself).
        """
        if not isinstance(payload, dict):
            raise CorruptCheckpoint("checkpoint payload is not an object")
        if "format" not in payload:
            return payload
        snapshot = payload.get("snapshot")
        if not isinstance(snapshot, dict):
            raise CorruptCheckpoint("checkpoint container has no snapshot")
        recorded = payload.get("checksum")
        if recorded != snapshot_checksum(snapshot):
            raise CorruptCheckpoint(
                f"checkpoint content does not match its recorded checksum "
                f"({recorded!r})")
        return snapshot

    def clear(self) -> None:
        """Delete every stored checkpoint."""
        for path in self.paths():
            try:
                path.unlink()
            except OSError:
                pass
