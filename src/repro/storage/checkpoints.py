"""Durable checkpoint storage for scheduler state snapshots.

A :class:`CheckpointStore` persists the JSON snapshots produced by
``ConcurrentQueryScheduler.export_state`` / ``ShardedScheduler`` so a
crashed run can restore its engines and resume the journal from the
checkpoint cursor (see :mod:`repro.core.snapshot`).

Writes are crash-safe: each checkpoint lands in a temporary file that is
atomically renamed into place, so :meth:`latest` never observes a torn
snapshot — a crash mid-write leaves only the previous checkpoints.  The
store keeps a bounded history (``keep`` most recent) and skips unreadable
files on load, so one corrupted checkpoint degrades recovery to the one
before it instead of failing it.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

_CHECKPOINT_PATTERN = re.compile(r"^checkpoint-(\d{8})\.json$")


class CheckpointStore:
    """Stores versioned scheduler snapshots as numbered JSON files."""

    def __init__(self, directory: Union[str, Path], keep: int = 3):
        if keep < 1:
            raise ValueError("checkpoint store must keep at least 1 snapshot")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._keep = keep

    def _sequence_numbers(self) -> List[int]:
        numbers = []
        for entry in self.directory.iterdir():
            match = _CHECKPOINT_PATTERN.match(entry.name)
            if match:
                numbers.append(int(match.group(1)))
        return sorted(numbers)

    def _path_for(self, sequence: int) -> Path:
        return self.directory / f"checkpoint-{sequence:08d}.json"

    def paths(self) -> List[Path]:
        """Return the stored checkpoint files, oldest first."""
        return [self._path_for(sequence)
                for sequence in self._sequence_numbers()]

    def __len__(self) -> int:
        return len(self._sequence_numbers())

    def save(self, snapshot: Dict[str, Any]) -> Path:
        """Persist one snapshot; returns its path.

        ``allow_nan=False`` enforces the wire-format contract: every
        non-finite float must have been marker-encoded by the snapshot
        codecs, so the stored file is strict JSON.
        """
        numbers = self._sequence_numbers()
        sequence = (numbers[-1] + 1) if numbers else 1
        path = self._path_for(sequence)
        temporary = path.with_suffix(".json.tmp")
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, allow_nan=False)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, path)
        for stale in numbers[:max(0, len(numbers) + 1 - self._keep)]:
            try:
                self._path_for(stale).unlink()
            except OSError:
                pass  # pruning is best-effort; a leftover file is harmless
        return path

    def latest(self) -> Optional[Dict[str, Any]]:
        """Return the newest readable snapshot (None when the store is empty).

        Unreadable or truncated files (a disk that lied about the fsync,
        manual tampering) are skipped in favour of the next-older
        checkpoint, trading recovery freshness for recovery success.
        """
        for sequence in reversed(self._sequence_numbers()):
            try:
                with open(self._path_for(sequence), "r",
                          encoding="utf-8") as handle:
                    return json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
        return None

    def clear(self) -> None:
        """Delete every stored checkpoint."""
        for path in self.paths():
            try:
                path.unlink()
            except OSError:
                pass
