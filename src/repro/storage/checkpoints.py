"""Durable checkpoint storage for scheduler state snapshots.

A :class:`CheckpointStore` persists the JSON snapshots produced by
``ConcurrentQueryScheduler.export_state`` / ``ShardedScheduler`` so a
crashed run can restore its engines and resume the journal from the
checkpoint cursor (see :mod:`repro.core.snapshot`).

Writes are crash-safe: each checkpoint lands in a temporary file that is
atomically renamed into place, so :meth:`latest` never observes a torn
snapshot — a crash mid-write leaves only the previous checkpoints.  The
store keeps a bounded history and skips unreadable files on load, so one
corrupted checkpoint degrades recovery to the one before it instead of
failing it.

On-disk formats:

* **format 1** — a bare snapshot dict (pre-checksum files); still read.
* **format 2** — a checksummed container
  ``{"format": 2, "checksum": "sha256:...", "snapshot": ...}`` where the
  digest covers the canonical JSON encoding of the snapshot; still read.
* **format 3** — the same container shape for *full* snapshots
  (``"kind": "full"``), plus *differential* records
  (``"kind": "delta"``) holding only the structural difference against
  the previous checkpoint: ``{"format": 3, "kind": "delta", "base": B,
  "parent": P, "checksum": ..., "delta": [ops]}``.  ``base`` names the
  chain's full snapshot, ``parent`` the immediately preceding record,
  and ``checksum`` always covers the *reconstructed full snapshot* —
  so a damaged delta anywhere in a chain is detected exactly like a
  damaged full dump.

Differential mode (``mode="diff"``) writes a full base snapshot, then
deltas keyed off the snapshot codecs' stable keys (dict fields and the
``[[encoded_key, value], ...]`` association pair-lists the per-engine /
per-host state exports use), rebases to a fresh full snapshot every
``rebase_interval`` deltas, and verifies every delta *before* writing it
by applying it to the previous snapshot — a delta that would not
round-trip byte-identically falls back to a full write.  :meth:`latest`
reconstructs the newest chain and falls back chain-by-chain on checksum
or parse failure; pruning counts *restorable chains* (a base plus its
deltas), never orphaning a base some live delta still needs.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

_CHECKPOINT_PATTERN = re.compile(r"^checkpoint-(\d{8})\.json$")

#: On-disk container format version (bare, checksum-less snapshots
#: predate the field and load as "format 1").
CHECKPOINT_FORMAT = 3

#: Default number of deltas between full-base rebases in diff mode.
DEFAULT_REBASE_INTERVAL = 8


def _canonical_encoding(snapshot: Any) -> bytes:
    """The byte string the checksum covers: canonical strict JSON."""
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":"),
                      allow_nan=False).encode("utf-8")


def snapshot_checksum(snapshot: Dict[str, Any]) -> str:
    """Return the content checksum recorded alongside a snapshot."""
    return "sha256:" + hashlib.sha256(_canonical_encoding(snapshot)).hexdigest()


class CorruptCheckpoint(ValueError):
    """A checkpoint file parsed but failed content verification."""


# ---------------------------------------------------------------------------
# Structural snapshot deltas
# ---------------------------------------------------------------------------
#
# A delta is a list of ops ``{"p": path, "o": op, "v": value}``:
#
# * path steps are dict keys (strings) or ``[key]`` — a one-element list
#   naming an entry of an *association pair-list* (``[[key, value], ...]``
#   with structurally unique keys, the shape the snapshot codecs emit
#   for non-string-keyed maps and the engines emit for per-host state)
#   by its key's canonical JSON;
# * ``"set"`` writes a value at the path (creating dict keys /
#   appending association entries), ``"del"`` removes it, ``"ext"``
#   extends the *list at* the path with a suffix (append-only ledgers:
#   alert lists, distinct-ledgers).


def _json_equal(a: Any, b: Any) -> bool:
    """Structural equality that distinguishes what canonical JSON does.

    Plain ``==`` would call ``True == 1`` and ``1 == 1.0`` equal, but
    their canonical encodings (and so the snapshot checksums) differ —
    a delta built on ``==`` could drop a real change.
    """
    if type(a) is not type(b):
        return False
    if isinstance(a, dict):
        if a.keys() != b.keys():
            return False
        return all(_json_equal(value, b[key]) for key, value in a.items())
    if isinstance(a, list):
        return len(a) == len(b) and all(map(_json_equal, a, b))
    return a == b


def _assoc_keys(value: Any) -> Optional[List[str]]:
    """If ``value`` is an association pair-list, its canonical keys."""
    if not isinstance(value, list) or not value:
        return None
    keys: List[str] = []
    seen = set()
    for item in value:
        if not (isinstance(item, list) and len(item) == 2):
            return None
        try:
            key = json.dumps(item[0], sort_keys=True, separators=(",", ":"),
                             allow_nan=False)
        except (TypeError, ValueError):
            return None
        if key in seen:
            return None
        seen.add(key)
        keys.append(key)
    return keys


def snapshot_delta(old: Any, new: Any) -> List[Dict[str, Any]]:
    """Structural difference turning ``old`` into ``new`` (op list)."""
    ops: List[Dict[str, Any]] = []
    _diff(old, new, [], ops)
    return ops


def _diff(old: Any, new: Any, path: List[Any],
          ops: List[Dict[str, Any]]) -> None:
    if _json_equal(old, new):
        return
    if isinstance(old, dict) and isinstance(new, dict):
        for key in old:
            if key not in new:
                ops.append({"p": path + [key], "o": "del"})
        for key, value in new.items():
            if key not in old:
                ops.append({"p": path + [key], "o": "set", "v": value})
            else:
                _diff(old[key], value, path + [key], ops)
        return
    if isinstance(old, list) and isinstance(new, list):
        old_keys = _assoc_keys(old)
        new_keys = _assoc_keys(new)
        if old_keys is not None and new_keys is not None:
            new_set = set(new_keys)
            old_map = dict(zip(old_keys, (item[1] for item in old)))
            for key in old_keys:
                if key not in new_set:
                    ops.append({"p": path + [[json.loads(key)]], "o": "del"})
            for key, item in zip(new_keys, new):
                if key not in old_map:
                    ops.append({"p": path + [[item[0]]], "o": "set",
                                "v": item[1]})
                else:
                    _diff(old_map[key], item[1], path + [[item[0]]], ops)
            return
        if (len(new) > len(old)
                and _json_equal(old, new[:len(old)])):
            ops.append({"p": path, "o": "ext", "v": new[len(old):]})
            return
    ops.append({"p": path, "o": "set", "v": new})


def apply_delta(snapshot: Any, ops: List[Dict[str, Any]]) -> Any:
    """Apply a delta to a snapshot, returning the new snapshot.

    The input is not mutated.  Raises :class:`CorruptCheckpoint` when an
    op does not fit the snapshot's structure (a damaged delta record).
    """
    result = json.loads(json.dumps(snapshot, allow_nan=False))
    for op in ops:
        try:
            result = _apply_op(result, op)
        except (KeyError, IndexError, TypeError, ValueError) as error:
            raise CorruptCheckpoint(
                f"delta op does not fit snapshot: {error}") from error
    return result


def _assoc_index(node: List[Any], key: Any) -> Optional[int]:
    wanted = json.dumps(key, sort_keys=True, separators=(",", ":"))
    for index, item in enumerate(node):
        if (isinstance(item, list) and len(item) == 2
                and json.dumps(item[0], sort_keys=True,
                               separators=(",", ":")) == wanted):
            return index
    return None


def _apply_op(root: Any, op: Dict[str, Any]) -> Any:
    path = op["p"]
    kind = op["o"]
    if not path:
        if kind == "set":
            return op["v"]
        if kind == "ext":
            if not isinstance(root, list):
                raise CorruptCheckpoint("ext op targets a non-list root")
            return root + list(op["v"])
        raise CorruptCheckpoint(f"op {kind!r} cannot target the root")
    node = root
    for step in path[:-1]:
        node = _step_into(node, step)
    last = path[-1]
    if kind == "ext":
        target = _step_into(node, last)
        if not isinstance(target, list):
            raise CorruptCheckpoint("ext op targets a non-list")
        target.extend(op["v"])
        return root
    if isinstance(last, str):
        if not isinstance(node, dict):
            raise CorruptCheckpoint("string path step into a non-dict")
        if kind == "set":
            node[last] = op["v"]
        elif kind == "del":
            del node[last]
        else:
            raise CorruptCheckpoint(f"unknown delta op {kind!r}")
        return root
    if isinstance(last, list) and len(last) == 1:
        if not isinstance(node, list):
            raise CorruptCheckpoint("association path step into a non-list")
        index = _assoc_index(node, last[0])
        if kind == "set":
            if index is None:
                node.append([last[0], op["v"]])
            else:
                node[index][1] = op["v"]
        elif kind == "del":
            if index is None:
                raise CorruptCheckpoint("del of a missing association key")
            del node[index]
        else:
            raise CorruptCheckpoint(f"unknown delta op {kind!r}")
        return root
    raise CorruptCheckpoint(f"malformed delta path step {last!r}")


def _step_into(node: Any, step: Any) -> Any:
    if isinstance(step, str):
        if not isinstance(node, dict):
            raise CorruptCheckpoint("string path step into a non-dict")
        return node[step]
    if isinstance(step, list) and len(step) == 1:
        if not isinstance(node, list):
            raise CorruptCheckpoint("association path step into a non-list")
        index = _assoc_index(node, step[0])
        if index is None:
            raise CorruptCheckpoint("path names a missing association key")
        return node[index][1]
    raise CorruptCheckpoint(f"malformed delta path step {step!r}")


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------

class CheckpointStore:
    """Stores versioned scheduler snapshots as numbered JSON files.

    ``mode="full"`` (the default) writes every snapshot as a standalone
    checksummed container — each file is its own restorable chain, so
    ``keep`` behaves as a plain file count.  ``mode="diff"`` writes a
    full base then per-checkpoint deltas, rebasing every
    ``rebase_interval`` deltas; ``keep`` then counts restorable
    *chains*, and pruning only ever drops whole chains.
    """

    def __init__(self, directory: Union[str, Path], keep: int = 3,
                 mode: str = "full",
                 rebase_interval: int = DEFAULT_REBASE_INTERVAL):
        if keep < 1:
            raise ValueError("checkpoint store must keep at least 1 snapshot")
        if mode not in ("full", "diff"):
            raise ValueError(f"unknown checkpoint mode {mode!r}")
        if rebase_interval < 1:
            raise ValueError("rebase interval must be at least 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._keep = keep
        self.mode = mode
        self._rebase_interval = rebase_interval
        #: Writer-side chain state: sequence + normalized snapshot of the
        #: last record written/loaded, and how many deltas the open chain
        #: holds.  ``None`` until the first save (or disk probe).
        self._chain: Optional[Dict[str, Any]] = None
        self._chain_probed = False
        #: Classification cache (checkpoint files are immutable):
        #: sequence -> ("full" | "delta" | "opaque", base sequence).
        self._kinds: Dict[int, Tuple[str, Optional[int]]] = {}
        #: Cumulative container bytes written by this instance, and a
        #: breakdown of how each save landed — the benchmark/soak
        #: observability for "checkpoint cost tracks churn".
        self.bytes_written = 0
        self.full_writes = 0
        self.delta_writes = 0
        self.delta_fallbacks = 0
        #: Details of the most recent save: sequence, path, kind, bytes.
        self.last_save: Optional[Dict[str, Any]] = None

    def _sequence_numbers(self) -> List[int]:
        numbers = []
        for entry in self.directory.iterdir():
            match = _CHECKPOINT_PATTERN.match(entry.name)
            if match:
                numbers.append(int(match.group(1)))
        return sorted(numbers)

    def _path_for(self, sequence: int) -> Path:
        return self.directory / f"checkpoint-{sequence:08d}.json"

    def paths(self) -> List[Path]:
        """Return the stored checkpoint files, oldest first."""
        return [self._path_for(sequence)
                for sequence in self._sequence_numbers()]

    def __len__(self) -> int:
        return len(self._sequence_numbers())

    # -- writing -------------------------------------------------------------

    def save(self, snapshot: Dict[str, Any]) -> Path:
        """Persist one snapshot; returns its path.

        In diff mode the record written is a delta against the previous
        checkpoint whenever that is both smaller and provably exact —
        the delta is applied back onto the previous snapshot before
        anything hits disk, and any mismatch with the canonical encoding
        of ``snapshot`` (or a delta bigger than the full dump) falls
        back to a full write.

        ``allow_nan=False`` enforces the wire-format contract: every
        non-finite float must have been marker-encoded by the snapshot
        codecs, so the stored file is strict JSON.
        """
        # Normalize through the canonical encoding so the writer diffs
        # exactly what a reader will reconstruct (tuples become lists,
        # non-string dict keys would fail loudly here, not at recovery).
        normalized = json.loads(_canonical_encoding(snapshot))
        numbers = self._sequence_numbers()
        sequence = (numbers[-1] + 1) if numbers else 1
        checksum = snapshot_checksum(normalized)
        container = self._build_container(normalized, checksum, sequence)
        path = self._path_for(sequence)
        temporary = path.with_suffix(".json.tmp")
        payload = json.dumps(container, allow_nan=False)
        with open(temporary, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, path)
        self._kinds[sequence] = (container.get("kind", "full"),
                                 container.get("base"))
        if container.get("kind") == "delta":
            self._chain["tip"] = sequence
            self._chain["deltas"] += 1
            self.delta_writes += 1
        else:
            self._chain = {"base": sequence, "tip": sequence, "deltas": 0}
            self.full_writes += 1
        self._chain["snapshot"] = normalized
        self._chain_probed = True
        self.bytes_written += len(payload)
        self.last_save = {
            "sequence": sequence,
            "path": path,
            "kind": container.get("kind", "full"),
            "bytes": len(payload),
            "base": container.get("base", sequence),
        }
        self._prune(numbers + [sequence])
        return path

    def _build_container(self, normalized: Dict[str, Any], checksum: str,
                         sequence: int) -> Dict[str, Any]:
        full = {
            "format": CHECKPOINT_FORMAT,
            "kind": "full",
            "checksum": checksum,
            "snapshot": normalized,
        }
        if self.mode != "diff":
            return full
        chain = self._writer_chain()
        if chain is None or chain["deltas"] >= self._rebase_interval:
            return full  # first record of a fresh chain, or a rebase
        ops = snapshot_delta(chain["snapshot"], normalized)
        delta_container = {
            "format": CHECKPOINT_FORMAT,
            "kind": "delta",
            "base": chain["base"],
            "parent": chain["tip"],
            "checksum": checksum,
            "delta": ops,
        }
        if (len(_canonical_encoding(delta_container))
                >= len(_canonical_encoding(full))):
            return full  # high churn: the delta would not be smaller
        # Prove the delta reconstructs the snapshot byte-identically
        # before committing to it; association reordering or exotic
        # structure differences fall back to a full dump.
        try:
            rebuilt = apply_delta(chain["snapshot"], ops)
        except CorruptCheckpoint:
            rebuilt = None
        if (rebuilt is None
                or _canonical_encoding(rebuilt) !=
                _canonical_encoding(normalized)):
            self.delta_fallbacks += 1
            return full
        return delta_container

    def _writer_chain(self) -> Optional[Dict[str, Any]]:
        """The open chain to extend, probing the directory once.

        A fresh store instance pointed at an existing directory resumes
        the chain on disk when its tip reconstructs; anything damaged or
        unreadable starts a new chain with a full write instead.
        """
        if self._chain is not None or self._chain_probed:
            return self._chain
        self._chain_probed = True
        numbers = self._sequence_numbers()
        if not numbers:
            return None
        tip = numbers[-1]
        try:
            snapshot = self._reconstruct(tip, set())
        except (OSError, json.JSONDecodeError, CorruptCheckpoint,
                RecursionError):
            return None
        kind, base = self._classify(tip)
        if kind == "opaque":
            return None
        if kind != "delta" or base is None:
            base = tip
        self._chain = {"base": base, "tip": tip,
                       "deltas": max(0, tip - base),
                       "snapshot": snapshot}
        return self._chain

    # -- pruning -------------------------------------------------------------

    def _classify(self, sequence: int) -> Tuple[str, Optional[int]]:
        """Return ``(kind, base)`` for a stored file (cached; immutable).

        ``kind`` is "full" (standalone record: format 1/2/3-full),
        "delta", or "opaque" (unreadable/unparseable — never counted as
        a restorable chain).
        """
        cached = self._kinds.get(sequence)
        if cached is not None:
            return cached
        try:
            with open(self._path_for(sequence), "r",
                      encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            result = ("opaque", None)
        else:
            if not isinstance(payload, dict):
                result = ("opaque", None)
            elif payload.get("kind") == "delta":
                base = payload.get("base")
                result = ("delta", base if isinstance(base, int) else None)
            else:
                result = ("full", None)
        self._kinds[sequence] = result
        return result

    def _chains(self, numbers: List[int]) -> List[List[int]]:
        """Group stored files into restorable chains, oldest first.

        A chain is a full record plus the deltas based on it.  Deltas
        whose base is missing (already orphaned) and opaque files attach
        to the preceding group so pruning treats them as dead weight of
        that era, not as restorable history.
        """
        groups: List[List[int]] = []
        base_of: Dict[int, int] = {}
        for sequence in numbers:
            kind, base = self._classify(sequence)
            if kind == "full":
                base_of[sequence] = sequence
                groups.append([sequence])
                continue
            if (kind == "delta" and base is not None and groups
                    and base_of.get(groups[-1][0]) == base):
                groups[-1].append(sequence)
                continue
            if groups:
                groups[-1].append(sequence)
            else:
                groups.append([sequence])
        return groups

    def _restorable(self, group: List[int]) -> bool:
        return self._classify(group[0])[0] == "full"

    def _prune(self, numbers: List[int]) -> None:
        """Drop the oldest chains beyond ``keep`` restorable ones.

        Only whole chains are deleted — a delta's base (and every link
        between the base and that delta) survives as long as the delta
        does, so everything kept stays reconstructable.
        """
        groups = self._chains(numbers)
        restorable = [group for group in groups if self._restorable(group)]
        if len(restorable) <= self._keep:
            kept_oldest = restorable[0][0] if restorable else None
        else:
            kept_oldest = restorable[-self._keep][0]
        if kept_oldest is None:
            return
        for group in groups:
            if group[0] >= kept_oldest:
                continue
            for sequence in group:
                if sequence >= kept_oldest:
                    continue
                try:
                    self._path_for(sequence).unlink()
                except OSError:
                    pass  # pruning is best-effort; a leftover is harmless
                self._kinds.pop(sequence, None)

    # -- reading -------------------------------------------------------------

    def latest(self) -> Optional[Dict[str, Any]]:
        """Return the newest verified snapshot (None when the store is empty).

        Unreadable, truncated *or checksum-mismatched* records (a disk
        that lied about the fsync, bit rot, manual tampering, a partial
        write that still parses as JSON) are skipped in favour of the
        next-older checkpoint; a damaged delta mid-chain drops the
        records after it but recovers the state just before it, and a
        damaged base drops its whole chain in favour of the previous
        one — trading recovery freshness for recovery success.
        """
        for sequence in reversed(self._sequence_numbers()):
            try:
                return self._reconstruct(sequence, set())
            except (OSError, json.JSONDecodeError, CorruptCheckpoint):
                continue
        return None

    def _reconstruct(self, sequence: int,
                     visiting: set) -> Dict[str, Any]:
        """Rebuild the full snapshot a stored record represents."""
        if sequence in visiting:
            raise CorruptCheckpoint(
                f"delta parent cycle at sequence {sequence}")
        visiting.add(sequence)
        with open(self._path_for(sequence), "r",
                  encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict):
            raise CorruptCheckpoint("checkpoint payload is not an object")
        if payload.get("kind") != "delta":
            return self._verify(payload)
        parent = payload.get("parent")
        if not isinstance(parent, int) or parent >= sequence:
            raise CorruptCheckpoint(
                f"delta record has invalid parent {parent!r}")
        base_snapshot = self._reconstruct(parent, visiting)
        ops = payload.get("delta")
        if not isinstance(ops, list):
            raise CorruptCheckpoint("delta record has no op list")
        snapshot = apply_delta(base_snapshot, ops)
        recorded = payload.get("checksum")
        if recorded != snapshot_checksum(snapshot):
            raise CorruptCheckpoint(
                f"reconstructed snapshot does not match the recorded "
                f"checksum ({recorded!r})")
        return snapshot

    @staticmethod
    def _verify(payload: Dict[str, Any]) -> Dict[str, Any]:
        """Unwrap a stored full container, verifying its content checksum.

        Pre-format-2 files are a bare snapshot dict with no checksum to
        verify; they pass through unchanged (the snapshot codecs still
        version-check the content itself).
        """
        if not isinstance(payload, dict):
            raise CorruptCheckpoint("checkpoint payload is not an object")
        if "format" not in payload:
            return payload
        snapshot = payload.get("snapshot")
        if not isinstance(snapshot, dict):
            raise CorruptCheckpoint("checkpoint container has no snapshot")
        recorded = payload.get("checksum")
        if recorded != snapshot_checksum(snapshot):
            raise CorruptCheckpoint(
                f"checkpoint content does not match its recorded checksum "
                f"({recorded!r})")
        return snapshot

    def clear(self) -> None:
        """Delete every stored checkpoint."""
        for path in self.paths():
            try:
                path.unlink()
            except OSError:
                pass
        self._chain = None
        self._chain_probed = False
        self._kinds.clear()
