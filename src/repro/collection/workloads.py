"""Workload profiles: what "normal" looks like on each kind of host.

A :class:`WorkloadProfile` is a declarative description of the benign
activity a host exhibits: which applications run, which files they touch,
which peers they talk to and at what volumes.  The host agents sample from
these descriptions to synthesize background monitoring events; the demo
queries must see through this background noise to the injected attack.

The stock profiles mirror the machines in the paper's demonstration setup
(Fig. 2): a Windows client, a mail server, a database server, a Windows
domain controller, and (for scale experiments) generic web servers and
desktops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class ApplicationActivity:
    """One application's steady-state behaviour on a host.

    Rates are expressed in expected events per minute; amounts in bytes per
    event (the agent adds jitter around these values).
    """

    exe_name: str
    #: files the application reads, with events/minute and bytes/event
    reads: Tuple[Tuple[str, float, float], ...] = ()
    #: files the application writes, with events/minute and bytes/event
    writes: Tuple[Tuple[str, float, float], ...] = ()
    #: destination IPs the application sends to, events/minute, bytes/event
    sends: Tuple[Tuple[str, float, float], ...] = ()
    #: destination IPs the application receives from, events/min, bytes/event
    receives: Tuple[Tuple[str, float, float], ...] = ()
    #: child executables the application starts, with events/minute
    spawns: Tuple[Tuple[str, float], ...] = ()


@dataclass(frozen=True)
class WorkloadProfile:
    """The full benign workload of one host role."""

    role: str
    applications: Tuple[ApplicationActivity, ...]

    def exe_names(self) -> List[str]:
        """Return the executables this profile runs."""
        return [app.exe_name for app in self.applications]


def desktop_profile(subnet: str = "10.0.2") -> WorkloadProfile:
    """An employee Windows desktop: Office, browser, background services."""
    return WorkloadProfile(
        role="desktop",
        applications=(
            ApplicationActivity(
                exe_name="outlook.exe",
                writes=((r"C:\Users\employee\mail\inbox.pst", 2.0, 60000.0),
                        (r"C:\Users\employee\Downloads\attachment.xls", 0.2,
                         45000.0)),
                reads=((r"C:\Users\employee\mail\inbox.pst", 3.0, 40000.0),),
                sends=((f"{subnet}.20", 1.5, 8000.0),),
                receives=((f"{subnet}.20", 2.0, 20000.0),),
            ),
            ApplicationActivity(
                exe_name="excel.exe",
                reads=((r"C:\Users\employee\Documents\report.xlsx", 1.0,
                        30000.0),
                       (r"C:\Users\employee\Downloads\attachment.xls", 0.3,
                        45000.0)),
                writes=((r"C:\Users\employee\Documents\report.xlsx", 0.5,
                         30000.0),),
                spawns=(("splwow64.exe", 0.4),),
            ),
            ApplicationActivity(
                exe_name="chrome.exe",
                sends=(("93.184.216.34", 6.0, 2000.0),
                       ("151.101.1.69", 4.0, 1500.0)),
                receives=(("93.184.216.34", 6.0, 60000.0),
                          ("151.101.1.69", 4.0, 80000.0)),
                writes=((r"C:\Users\employee\AppData\cache.dat", 3.0,
                         20000.0),),
            ),
            ApplicationActivity(
                exe_name="svchost.exe",
                reads=((r"C:\Windows\System32\config\SOFTWARE", 1.0,
                        4000.0),),
                sends=((f"{subnet}.10", 0.5, 1000.0),),
                spawns=(("taskhostw.exe", 0.2),),
            ),
        ),
    )


def mail_server_profile() -> WorkloadProfile:
    """The enterprise mail server: exchange-like delivery and storage."""
    return WorkloadProfile(
        role="mail-server",
        applications=(
            ApplicationActivity(
                exe_name="exchange.exe",
                writes=(("/var/mail/store/mailbox.db", 12.0, 50000.0),),
                reads=(("/var/mail/store/mailbox.db", 15.0, 45000.0),),
                sends=(("10.0.2.11", 8.0, 30000.0), ("10.0.2.12", 6.0,
                                                     30000.0)),
                receives=(("203.0.113.25", 10.0, 40000.0),),
            ),
            ApplicationActivity(
                exe_name="spamfilter.exe",
                reads=(("/var/mail/queue/incoming", 10.0, 30000.0),),
                writes=(("/var/mail/queue/clean", 9.0, 30000.0),),
            ),
        ),
    )


def database_server_profile(client_subnet: str = "10.0.2",
                            client_count: int = 12) -> WorkloadProfile:
    """The SQL database server the APT attack ultimately targets.

    ``sqlservr.exe`` answers queries from many internal clients with
    broadly similar per-client volumes — that homogeneity is what the
    outlier query's DBSCAN peer-comparison relies on.
    """
    client_sends = tuple(
        (f"{client_subnet}.{10 + index}", 2.5, 26000.0)
        for index in range(client_count))
    client_receives = tuple(
        (f"{client_subnet}.{10 + index}", 2.0, 3000.0)
        for index in range(client_count))
    return WorkloadProfile(
        role="database-server",
        applications=(
            ApplicationActivity(
                exe_name="sqlservr.exe",
                reads=((r"D:\data\enterprise.mdf", 20.0, 80000.0),),
                writes=((r"D:\data\enterprise.ldf", 10.0, 60000.0),),
                sends=client_sends,
                receives=client_receives,
            ),
            ApplicationActivity(
                exe_name="sqlagent.exe",
                writes=((r"D:\backup\nightly.bak", 0.5, 400000.0),),
                spawns=(("sqlcmd.exe", 0.1),),
            ),
            ApplicationActivity(
                exe_name="services.exe",
                spawns=(("svchost.exe", 0.3),),
            ),
        ),
    )


def domain_controller_profile() -> WorkloadProfile:
    """The Windows domain controller: authentication traffic."""
    return WorkloadProfile(
        role="domain-controller",
        applications=(
            ApplicationActivity(
                exe_name="lsass.exe",
                reads=((r"C:\Windows\NTDS\ntds.dit", 8.0, 20000.0),),
                sends=(("10.0.2.11", 4.0, 2000.0), ("10.0.2.12", 4.0,
                                                    2000.0)),
                receives=(("10.0.2.11", 4.0, 1500.0),
                          ("10.0.2.12", 4.0, 1500.0)),
            ),
            ApplicationActivity(
                exe_name="dns.exe",
                receives=(("10.0.2.11", 10.0, 300.0),
                          ("10.0.2.12", 8.0, 300.0)),
                sends=(("10.0.2.11", 10.0, 500.0),
                       ("10.0.2.12", 8.0, 500.0)),
            ),
        ),
    )


def web_server_profile() -> WorkloadProfile:
    """A Linux web server running Apache with a small set of CGI helpers."""
    return WorkloadProfile(
        role="web-server",
        applications=(
            ApplicationActivity(
                exe_name="apache.exe",
                reads=(("/var/www/html/index.html", 20.0, 15000.0),),
                writes=(("/var/log/apache/access.log", 20.0, 500.0),),
                sends=(("198.51.100.7", 15.0, 20000.0),),
                receives=(("198.51.100.7", 15.0, 1500.0),),
                spawns=(("php-cgi.exe", 2.0), ("rotatelogs.exe", 0.2)),
            ),
        ),
    )


#: Convenience registry of the stock profiles by role name.
PROFILES: Dict[str, WorkloadProfile] = {
    "desktop": desktop_profile(),
    "mail-server": mail_server_profile(),
    "database-server": database_server_profile(),
    "domain-controller": domain_controller_profile(),
    "web-server": web_server_profile(),
}
