"""Simulated enterprise data collection.

The paper deploys kernel-level data-collection agents (auditd on Linux,
ETW on Windows, DTrace on macOS) on ~150 hosts and aggregates their events
at a central server.  This reproduction cannot run kernel auditing, so this
package simulates it: each :class:`HostAgent` synthesizes a realistic SVO
event stream for one host from a :class:`WorkloadProfile`, and
:class:`Enterprise` assembles the multi-host deployment of Fig. 2 and
merges the per-host streams into the single enterprise-wide event feed the
SAQL engine consumes.

All generators are deterministic given their seed, so benchmarks and tests
are reproducible.
"""

from repro.collection.agent import HostAgent, MonitoringBackend
from repro.collection.enterprise import Enterprise, EnterpriseConfig, HostSpec
from repro.collection.workloads import (
    WorkloadProfile,
    database_server_profile,
    desktop_profile,
    domain_controller_profile,
    mail_server_profile,
    web_server_profile,
)

__all__ = [
    "Enterprise",
    "EnterpriseConfig",
    "HostAgent",
    "HostSpec",
    "MonitoringBackend",
    "WorkloadProfile",
    "database_server_profile",
    "desktop_profile",
    "domain_controller_profile",
    "mail_server_profile",
    "web_server_profile",
]
