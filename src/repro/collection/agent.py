"""Simulated data-collection agents.

A :class:`HostAgent` stands in for the kernel-level monitoring agent the
paper deploys on every host (auditd / ETW / DTrace).  Given a workload
profile it synthesizes the host's benign SVO events over a time range:
file reads/writes, network sends/receives and process starts, with
Poisson-like arrival jitter and log-normal-ish volume jitter, all from a
seeded PRNG so runs are reproducible.
"""

from __future__ import annotations

import enum
import random
from typing import Dict, Iterable, List, Optional, Tuple

from repro.collection.workloads import ApplicationActivity, WorkloadProfile
from repro.events.entities import FileEntity, NetworkEntity, ProcessEntity
from repro.events.event import Event, Operation


class MonitoringBackend(enum.Enum):
    """The kernel framework a host's agent would use (metadata only)."""

    AUDITD = "auditd"
    ETW = "etw"
    DTRACE = "dtrace"


class HostAgent:
    """Synthesizes one host's benign monitoring events."""

    def __init__(self, host_id: str, profile: WorkloadProfile,
                 ip_address: str = "10.0.0.1",
                 backend: MonitoringBackend = MonitoringBackend.ETW,
                 seed: int = 1):
        self.host_id = host_id
        self.profile = profile
        self.ip_address = ip_address
        self.backend = backend
        self._seed = seed
        self._pid_counter = 1000 + (seed % 97) * 13
        self._processes: Dict[str, ProcessEntity] = {}

    # -- entity helpers ------------------------------------------------------

    def process(self, exe_name: str) -> ProcessEntity:
        """Return the host's long-running process entity for an executable."""
        existing = self._processes.get(exe_name)
        if existing is not None:
            return existing
        self._pid_counter += 1
        entity = ProcessEntity.make(exe_name, self._pid_counter,
                                    host=self.host_id, user="svc")
        self._processes[exe_name] = entity
        return entity

    def new_process(self, exe_name: str) -> ProcessEntity:
        """Create a fresh (short-lived) process entity for an executable."""
        self._pid_counter += 1
        return ProcessEntity.make(exe_name, self._pid_counter,
                                  host=self.host_id, user="svc")

    def file(self, name: str) -> FileEntity:
        """Return the file entity for a path on this host."""
        return FileEntity.make(name, host=self.host_id)

    def connection(self, dstip: str, dstport: int = 443) -> NetworkEntity:
        """Return a network-connection entity from this host to ``dstip``."""
        return NetworkEntity.make(self.ip_address, dstip, srcport=49152,
                                  dstport=dstport)

    # -- event synthesis -------------------------------------------------------

    def generate_events(self, start_time: float, duration: float,
                        rate_scale: float = 1.0) -> List[Event]:
        """Generate this host's benign events for ``[start, start+duration)``.

        ``rate_scale`` multiplies every activity rate, which the throughput
        benchmarks use to densify the stream without changing its shape.
        """
        rng = random.Random(f"{self._seed}:{self.host_id}:{int(start_time)}")
        events: List[Event] = []
        for app in self.profile.applications:
            events.extend(self._events_for_application(
                app, start_time, duration, rate_scale, rng))
        events.sort(key=lambda event: event.timestamp)
        return events

    def _events_for_application(self, app: ApplicationActivity,
                                start_time: float, duration: float,
                                rate_scale: float,
                                rng: random.Random) -> List[Event]:
        subject = self.process(app.exe_name)
        events: List[Event] = []

        for name, rate, amount in app.reads:
            events.extend(self._emit(
                subject, Operation.READ, self.file(name), rate * rate_scale,
                amount, start_time, duration, rng))
        for name, rate, amount in app.writes:
            events.extend(self._emit(
                subject, Operation.WRITE, self.file(name), rate * rate_scale,
                amount, start_time, duration, rng))
        for dstip, rate, amount in app.sends:
            events.extend(self._emit(
                subject, Operation.WRITE, self.connection(dstip),
                rate * rate_scale, amount, start_time, duration, rng))
        for dstip, rate, amount in app.receives:
            events.extend(self._emit(
                subject, Operation.READ, self.connection(dstip),
                rate * rate_scale, amount, start_time, duration, rng))
        for child, rate in app.spawns:
            for timestamp in self._arrival_times(rate * rate_scale,
                                                 start_time, duration, rng):
                events.append(Event(
                    subject=subject,
                    operation=Operation.START,
                    obj=self.new_process(child),
                    timestamp=timestamp,
                    agentid=self.host_id,
                ))
        return events

    def _emit(self, subject: ProcessEntity, operation: Operation, obj,
              rate_per_minute: float, amount: float, start_time: float,
              duration: float, rng: random.Random) -> Iterable[Event]:
        for timestamp in self._arrival_times(rate_per_minute, start_time,
                                             duration, rng):
            jitter = rng.uniform(0.7, 1.3)
            yield Event(
                subject=subject,
                operation=operation,
                obj=obj,
                timestamp=timestamp,
                agentid=self.host_id,
                amount=max(amount * jitter, 1.0),
            )

    @staticmethod
    def _arrival_times(rate_per_minute: float, start_time: float,
                       duration: float, rng: random.Random) -> List[float]:
        """Sample Poisson-process arrival times for one activity."""
        if rate_per_minute <= 0 or duration <= 0:
            return []
        rate_per_second = rate_per_minute / 60.0
        times: List[float] = []
        current = start_time
        while True:
            current += rng.expovariate(rate_per_second)
            if current >= start_time + duration:
                return times
            times.append(current)
