"""The simulated enterprise: hosts, agents and the aggregated event feed.

:class:`Enterprise` models the deployment of Fig. 2 in the paper: a
Windows client, a mail server, a SQL database server and a Windows domain
controller behind a firewall, optionally padded with additional desktops
and web servers for scale experiments.  Each host runs a
:class:`~repro.collection.agent.HostAgent`; the enterprise merges their
per-host streams (by timestamp) into the single event feed the central
SAQL server would receive, and can inject attack traces into that feed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.collection.agent import HostAgent, MonitoringBackend
from repro.collection.workloads import (
    WorkloadProfile,
    database_server_profile,
    desktop_profile,
    domain_controller_profile,
    mail_server_profile,
    web_server_profile,
)
from repro.events.event import Event
from repro.events.stream import ListStream, MergedStream

#: Host names used throughout the demo scenario and queries.
CLIENT_HOST = "client-01"
MAIL_HOST = "mail-server"
DB_HOST = "db-server"
DC_HOST = "dc-01"


@dataclass(frozen=True)
class HostSpec:
    """Configuration of one simulated host."""

    host_id: str
    profile: WorkloadProfile
    ip_address: str
    backend: MonitoringBackend = MonitoringBackend.ETW


@dataclass
class EnterpriseConfig:
    """Configuration of the simulated enterprise."""

    extra_desktops: int = 0
    extra_web_servers: int = 0
    seed: int = 7
    rate_scale: float = 1.0


class Enterprise:
    """A small enterprise whose hosts emit synthetic monitoring events."""

    def __init__(self, config: Optional[EnterpriseConfig] = None):
        self.config = config or EnterpriseConfig()
        self._agents: Dict[str, HostAgent] = {}
        for spec in self._default_hosts():
            self.add_host(spec)
        for index in range(self.config.extra_desktops):
            self.add_host(HostSpec(
                host_id=f"desktop-{index + 2:02d}",
                profile=desktop_profile(),
                ip_address=f"10.0.2.{50 + index}",
            ))
        for index in range(self.config.extra_web_servers):
            self.add_host(HostSpec(
                host_id=f"web-{index + 1:02d}",
                profile=web_server_profile(),
                ip_address=f"10.0.3.{10 + index}",
                backend=MonitoringBackend.AUDITD,
            ))

    @staticmethod
    def _default_hosts() -> List[HostSpec]:
        return [
            HostSpec(host_id=CLIENT_HOST, profile=desktop_profile(),
                     ip_address="10.0.2.11"),
            HostSpec(host_id=MAIL_HOST, profile=mail_server_profile(),
                     ip_address="10.0.1.20",
                     backend=MonitoringBackend.AUDITD),
            HostSpec(host_id=DB_HOST, profile=database_server_profile(),
                     ip_address="10.0.1.30"),
            HostSpec(host_id=DC_HOST, profile=domain_controller_profile(),
                     ip_address="10.0.1.10"),
        ]

    # -- host management ------------------------------------------------------

    def add_host(self, spec: HostSpec) -> HostAgent:
        """Register one host and return its agent."""
        agent = HostAgent(
            host_id=spec.host_id,
            profile=spec.profile,
            ip_address=spec.ip_address,
            backend=spec.backend,
            seed=self.config.seed + len(self._agents),
        )
        self._agents[spec.host_id] = agent
        return agent

    @property
    def hosts(self) -> List[str]:
        """Return the registered host identifiers."""
        return list(self._agents.keys())

    def agent(self, host_id: str) -> HostAgent:
        """Return the agent of one host."""
        return self._agents[host_id]

    # -- event feed ------------------------------------------------------------

    def background_events(self, start_time: float,
                          duration: float) -> List[Event]:
        """Generate every host's benign events for the given time range."""
        events: List[Event] = []
        for agent in self._agents.values():
            events.extend(agent.generate_events(
                start_time, duration, rate_scale=self.config.rate_scale))
        events.sort(key=lambda event: event.timestamp)
        return events

    def event_feed(self, start_time: float, duration: float,
                   injected: Sequence[Event] = ()) -> ListStream:
        """Return the aggregated enterprise feed, with optional injections.

        ``injected`` carries attack-trace events (or any other extra
        events); they are merged into the benign background by timestamp,
        exactly as the central server would interleave agent uploads.
        """
        events = self.background_events(start_time, duration)
        events.extend(injected)
        return ListStream(events)

    def per_host_streams(self, start_time: float,
                         duration: float) -> MergedStream:
        """Return the same feed built as an explicit k-way host merge."""
        streams = [
            ListStream(agent.generate_events(
                start_time, duration, rate_scale=self.config.rate_scale))
            for agent in self._agents.values()
        ]
        return MergedStream(streams)
