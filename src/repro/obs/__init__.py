"""`repro.obs` — unified metrics, stage timing, and exposition.

One registry design serves every layer: shard schedulers, the parallel
backends, the always-on service, sinks, and the segment store all record
into :class:`MetricRegistry` instances whose snapshots merge
deterministically (counters summed, gauges maxed/lasted, histogram
buckets added — boundaries are fixed, so merges are exact).  Exposition
is Prometheus text or JSON via :mod:`repro.obs.exposition`.

See ``docs/observability.md`` for the catalog of exported metrics.
"""

from .exposition import (PROMETHEUS_CONTENT_TYPE, parse_json,
                         parse_prometheus, render_json, render_prometheus)
from .metrics import (DEFAULT_BUCKETS, Counter, Gauge, Histogram,
                      MetricRegistry, merge_snapshots)
from .spans import STAGE_HISTOGRAM, Span, StageTimers

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "merge_snapshots",
    "STAGE_HISTOGRAM",
    "Span",
    "StageTimers",
    "PROMETHEUS_CONTENT_TYPE",
    "render_prometheus",
    "parse_prometheus",
    "render_json",
    "parse_json",
]
