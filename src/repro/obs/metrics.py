"""Dependency-free metrics core: counters, gauges, histograms, registry.

The pipeline spans several execution domains (shard threads, worker
processes, the service pump, sink-dispatcher threads), so the primitives
here are built around one constraint: **snapshots must merge
deterministically**.  Counters merge by summation, gauges by an explicit
``max``/``last`` mode, and histograms use *fixed* log-scale bucket
boundaries shared by every instance — merging is plain bucket-wise
addition, so the merged view across N shards is bucket-for-bucket
identical to a single instance that observed the same values.

Everything is JSON-safe: :meth:`MetricRegistry.snapshot` produces plain
dicts/lists/numbers that cross process boundaries (the sharded runtime
piggybacks them on its existing stats rounds) and serialize straight
into the service's wire protocol.

A disabled registry hands out no-op metric singletons and reports
``enabled=False`` so hot paths can skip ``perf_counter`` calls entirely;
the per-batch cost of disabled metrics is one attribute check.
"""

from bisect import bisect_left
from threading import Lock
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "merge_snapshots",
]

#: Fixed log-scale (power-of-two) latency bucket upper bounds, in seconds:
#: ~1 microsecond (2**-20) through ~68 minutes (2**12), plus the implicit
#: +Inf bucket.  Fixed boundaries are what make cross-shard histogram
#: merges exact — every instance bins identically, so merged buckets are
#: sums, never re-interpolations.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(2.0 ** e for e in range(-20, 13))


def _canonical_labels(labels: Mapping[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonic counter; merges by summation."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """Point-in-time value with an explicit cross-shard merge mode.

    ``merge="max"`` keeps the largest value across lanes (peaks);
    ``merge="last"`` keeps the most recently merged value — lanes that
    need their own series should label it (e.g. ``shard=``) instead of
    relying on ``last``.
    """

    __slots__ = ("value", "merge", "_lock")

    def __init__(self, merge: str = "last") -> None:
        if merge not in ("last", "max"):
            raise ValueError(f"unknown gauge merge mode {merge!r}")
        self.value = 0.0
        self.merge = merge
        self._lock = Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


class Histogram:
    """Fixed-boundary histogram (Prometheus ``le`` semantics).

    ``buckets[i]`` counts observations ``<= bounds[i]``; the final slot
    counts the +Inf overflow.  ``sum``/``count``/``min``/``max`` ride
    along for exact averages and range reporting.
    """

    __slots__ = ("bounds", "buckets", "count", "sum", "min", "max", "_lock")

    def __init__(self, bounds: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be sorted and distinct")
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.buckets[index] += 1
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def percentile(self, q: float) -> float:
        """Upper-bound estimate of the ``q`` quantile (0 < q <= 1).

        Returns the bucket boundary at or above the quantile rank — an
        upper bound, which is the conservative direction for latency
        reporting.  The overflow bucket reports the observed maximum.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket in enumerate(self.buckets):
            cumulative += bucket
            if cumulative >= rank:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max if self.max is not None else float("inf")
        return self.max if self.max is not None else float("inf")


class _NoopMetric:
    """Shared do-nothing stand-in handed out by a disabled registry."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0
    bounds: Tuple[float, ...] = ()
    buckets: List[int] = []

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0


_NOOP = _NoopMetric()

_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One named metric family: shared type/help plus labeled children."""

    __slots__ = ("name", "kind", "help", "merge", "bounds", "series")

    def __init__(self, name: str, kind: str, help_text: str,
                 merge: str = "last",
                 bounds: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.merge = merge
        self.bounds = bounds
        self.series: Dict[Tuple[Tuple[str, str], ...], Any] = {}

    def child(self, labels: Mapping[str, Any]):
        key = _canonical_labels(labels)
        metric = self.series.get(key)
        if metric is None:
            if self.kind == "counter":
                metric = Counter()
            elif self.kind == "gauge":
                metric = Gauge(self.merge)
            else:
                metric = Histogram(self.bounds)
            self.series[key] = metric
        return metric


class MetricRegistry:
    """Labeled registry of counters/gauges/histograms.

    Accessors are get-or-create and cached by ``(name, labels)``; callers
    on hot paths should hold on to the returned child rather than
    re-resolving per event.  When ``enabled`` is false every accessor
    returns the shared no-op metric, and callers can consult
    ``registry.enabled`` to skip clock reads altogether.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._families: Dict[str, _Family] = {}
        self._lock = Lock()

    # -- accessors -------------------------------------------------------

    def _family(self, name: str, kind: str, help_text: str,
                merge: str = "last",
                bounds: Tuple[float, ...] = DEFAULT_BUCKETS) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, merge, bounds)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}")
            return family

    def counter(self, name: str, help_text: str = "", **labels) -> Counter:
        if not self.enabled:
            return _NOOP  # type: ignore[return-value]
        return self._family(name, "counter", help_text).child(labels)

    def gauge(self, name: str, help_text: str = "", merge: str = "last",
              **labels) -> Gauge:
        if not self.enabled:
            return _NOOP  # type: ignore[return-value]
        return self._family(name, "gauge", help_text, merge).child(labels)

    def histogram(self, name: str, help_text: str = "",
                  bounds: Iterable[float] = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        if not self.enabled:
            return _NOOP  # type: ignore[return-value]
        return self._family(name, "histogram", help_text,
                            bounds=tuple(float(b) for b in bounds)
                            ).child(labels)

    # -- snapshots -------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe point-in-time copy of every family and series."""
        families: Dict[str, Any] = {}
        with self._lock:
            items = list(self._families.items())
        for name, family in items:
            series = []
            for key, metric in list(family.series.items()):
                entry: Dict[str, Any] = {"labels": dict(key)}
                if family.kind == "histogram":
                    with metric._lock:
                        entry.update(buckets=list(metric.buckets),
                                     count=metric.count, sum=metric.sum,
                                     min=metric.min, max=metric.max)
                else:
                    entry["value"] = metric.value
                series.append(entry)
            families[name] = {
                "type": family.kind,
                "help": family.help,
                "merge": family.merge,
                "bounds": list(family.bounds)
                if family.kind == "histogram" else None,
                "series": series,
            }
        return {"families": families}

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a snapshot (e.g. from a shard worker) into this registry.

        Counters add, gauges apply their merge mode, histograms add
        bucket-for-bucket.  Unknown families/series are created, so a
        fresh registry merged with N lane snapshots equals the lane-wise
        aggregate.
        """
        for name, family in snapshot.get("families", {}).items():
            kind = family["type"]
            merge = family.get("merge", "last")
            bounds = tuple(family["bounds"]) if family.get("bounds") \
                else DEFAULT_BUCKETS
            target = self._family(name, kind, family.get("help", ""),
                                  merge, bounds)
            for entry in family["series"]:
                metric = target.child(entry["labels"])
                if kind == "counter":
                    metric.inc(entry["value"])
                elif kind == "gauge":
                    with metric._lock:
                        if merge == "max":
                            metric.value = max(metric.value, entry["value"])
                        else:
                            metric.value = float(entry["value"])
                else:
                    if tuple(bounds) != metric.bounds:
                        raise ValueError(
                            f"histogram {name!r} bucket boundaries differ; "
                            "snapshots are not mergeable")
                    with metric._lock:
                        for index, count in enumerate(entry["buckets"]):
                            metric.buckets[index] += count
                        metric.count += entry["count"]
                        metric.sum += entry["sum"]
                        for bound, pick in ((entry.get("min"), min),
                                            (entry.get("max"), max)):
                            if bound is None:
                                continue
                            current = (metric.min if pick is min
                                       else metric.max)
                            merged = (bound if current is None
                                      else pick(current, bound))
                            if pick is min:
                                metric.min = merged
                            else:
                                metric.max = merged


def merge_snapshots(snapshots: Iterable[Mapping[str, Any]]
                    ) -> Dict[str, Any]:
    """Merge snapshot dicts into one (counters summed, gauges by mode,
    histogram buckets added) without needing a live registry."""
    registry = MetricRegistry(enabled=True)
    for snapshot in snapshots:
        if snapshot:
            registry.merge_snapshot(snapshot)
    return registry.snapshot()
