"""Exposition: render registry snapshots as Prometheus text or JSON.

The text renderer follows the Prometheus exposition format (text
version 0.0.4): ``# HELP``/``# TYPE`` headers, one sample per line,
histogram families expanded into cumulative ``_bucket{le=...}`` samples
plus ``_sum``/``_count``, and label values escaped per the spec
(backslash, double quote, newline).  A matching minimal parser lives
here too so tests and the CI smoke scrape can assert on structure
instead of string-matching raw text.

The JSON form is simply the snapshot dict — already JSON-safe — wrapped
by :func:`render_json`/:func:`parse_json` for symmetric round-trips.
"""

import json
import re
from typing import Any, Dict, List, Mapping, Tuple

__all__ = [
    "render_prometheus",
    "parse_prometheus",
    "render_json",
    "parse_json",
    "PROMETHEUS_CONTENT_TYPE",
]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4"

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)$")
_LABEL_RE = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(,|$)')


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\")
            .replace("\n", "\\n")
            .replace('"', '\\"'))


def _unescape_label(value: str) -> str:
    out: List[str] = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            follow = value[index + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(follow,
                                                            "\\" + follow))
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_le(bound: float) -> str:
    return "+Inf" if bound == float("inf") else _format_value(bound)


def _label_block(labels: Mapping[str, str],
                 extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = [(key, str(value)) for key, value in sorted(labels.items())]
    pairs.extend(extra)
    if not pairs:
        return ""
    body = ",".join(f'{key}="{_escape_label(value)}"'
                    for key, value in pairs)
    return "{" + body + "}"


def render_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Render a registry snapshot in the Prometheus text format."""
    lines: List[str] = []
    families = snapshot.get("families", {})
    for name in sorted(families):
        family = families[name]
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        kind = family["type"]
        help_text = family.get("help") or name
        lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for entry in family["series"]:
            labels = entry["labels"]
            if kind == "histogram":
                bounds = list(family["bounds"] or []) + [float("inf")]
                cumulative = 0
                for bound, count in zip(bounds, entry["buckets"]):
                    cumulative += count
                    block = _label_block(labels,
                                         (("le", _format_le(bound)),))
                    lines.append(f"{name}_bucket{block} {cumulative}")
                block = _label_block(labels)
                lines.append(f"{name}_sum{block} "
                             f"{_format_value(entry['sum'])}")
                lines.append(f"{name}_count{block} {entry['count']}")
            else:
                block = _label_block(labels)
                lines.append(f"{name}{block} "
                             f"{_format_value(entry['value'])}")
    return "\n".join(lines) + "\n"


def _parse_labels(body: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    index = 0
    while index < len(body):
        match = _LABEL_RE.match(body, index)
        if match is None:
            raise ValueError(f"malformed label block at {body[index:]!r}")
        labels[match.group("key")] = _unescape_label(match.group("value"))
        index = match.end()
    return labels


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def parse_prometheus(text: str) -> Dict[str, Any]:
    """Parse exposition text into ``{"types": ..., "samples": ...}``.

    ``samples`` maps each sample name (including the expanded
    ``_bucket``/``_sum``/``_count`` names) to a list of
    ``(labels, value)`` pairs.  Raises ``ValueError`` on malformed
    names, label blocks, or values — the test suite and the CI scrape
    use this as the format conformance check.
    """
    types: Dict[str, str] = {}
    samples: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if not _NAME_RE.match(name):
                raise ValueError(f"invalid metric name {name!r}")
            types[name] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed sample line {line!r}")
        labels = (_parse_labels(match.group("labels"))
                  if match.group("labels") is not None else {})
        samples.setdefault(match.group("name"), []).append(
            (labels, _parse_value(match.group("value"))))
    return {"types": types, "samples": samples}


def render_json(snapshot: Mapping[str, Any], indent: int = None) -> str:
    """Serialize a snapshot as JSON (``Infinity``-free: bounds are
    finite; the +Inf bucket is positional, never a JSON value)."""
    return json.dumps(snapshot, indent=indent, sort_keys=True,
                      allow_nan=False)


def parse_json(text: str) -> Dict[str, Any]:
    return json.loads(text)
