"""Lightweight span/stage-timing API over the metrics registry.

Stages across the pipeline (columnar pivot, predicate evaluation,
pattern match, window close, checkpoint write/restore, segment-store
seal/compact/scan, service pump) all record into one histogram family,
``saql_stage_seconds{stage=...}``, so a single scrape answers "where
does the time go" layer by layer.

Two usage shapes:

* ``timers.time("window_close")`` — a context manager for code where a
  ``with`` block reads naturally;
* ``timers.observe("pattern_match", seconds)`` — direct observation for
  hot paths that already hold ``perf_counter`` stamps (pairs with
  ``registry.enabled`` checks so disabled metrics skip the clock
  entirely).

Timers cache the per-stage histogram children, so steady-state cost is
one dict hit plus the histogram observe.
"""

from time import perf_counter
from typing import Dict

from .metrics import Histogram, MetricRegistry

__all__ = ["STAGE_HISTOGRAM", "StageTimers", "Span"]

#: The shared per-stage latency family name.
STAGE_HISTOGRAM = "saql_stage_seconds"


class Span:
    """One timed region; observes its duration on exit."""

    __slots__ = ("_histogram", "_started")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._started = 0.0

    def __enter__(self) -> "Span":
        self._started = perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(perf_counter() - self._started)


class _NoopSpan:
    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class StageTimers:
    """Per-stage timing facade bound to one registry."""

    __slots__ = ("enabled", "_registry", "_stages")

    def __init__(self, registry: MetricRegistry) -> None:
        self.enabled = registry.enabled
        self._registry = registry
        self._stages: Dict[str, Histogram] = {}

    def _histogram(self, stage: str) -> Histogram:
        histogram = self._stages.get(stage)
        if histogram is None:
            histogram = self._registry.histogram(
                STAGE_HISTOGRAM,
                "Per-stage pipeline latency in seconds.", stage=stage)
            self._stages[stage] = histogram
        return histogram

    def time(self, stage: str):
        """Context manager timing one stage occurrence."""
        if not self.enabled:
            return _NOOP_SPAN
        return Span(self._histogram(stage))

    def observe(self, stage: str, seconds: float) -> None:
        """Record an externally measured stage duration."""
        if self.enabled:
            self._histogram(stage).observe(seconds)
