"""The demo SAQL queries (Section III of the paper).

The paper constructs 8 SAQL queries in advance of the demonstration: one
rule-based query per attack step (c1-c5, built with knowledge of the
attack), plus three advanced anomaly queries that assume no knowledge of
the attack details (an invariant-based query over Excel's child processes,
a time-series/SMA query over per-process network volume on the database
server, and an outlier-based DBSCAN query over per-destination network
volume on the database server).
"""

from repro.queries.demo_queries import (
    ADVANCED_QUERY_NAMES,
    DEMO_QUERIES,
    RULE_QUERY_NAMES,
    demo_query,
    demo_query_names,
    invariant_excel_children,
    outlier_exfiltration,
    rule_c1_initial_compromise,
    rule_c2_malware_infection,
    rule_c3_privilege_escalation,
    rule_c4_penetration,
    rule_c5_data_exfiltration,
    timeseries_network_spike,
)

__all__ = [
    "ADVANCED_QUERY_NAMES",
    "DEMO_QUERIES",
    "RULE_QUERY_NAMES",
    "demo_query",
    "demo_query_names",
    "invariant_excel_children",
    "outlier_exfiltration",
    "rule_c1_initial_compromise",
    "rule_c2_malware_infection",
    "rule_c3_privilege_escalation",
    "rule_c4_penetration",
    "rule_c5_data_exfiltration",
    "timeseries_network_spike",
]
