"""SAQL text of the 8 demo queries and helpers to access them.

The rule-based queries (c1-c5) encode knowledge of the specific attack
artifacts, exactly as the paper's demonstration does; the three advanced
anomaly queries encode only generic models of abnormality (a new Excel
child process, a spike in per-process network volume, a per-destination
volume outlier) and therefore also work without attack knowledge.

Host identifiers refer to the simulated enterprise
(:mod:`repro.collection.enterprise`): the victim desktop is ``client-01``
and the SQL database server is ``db-server``.  The attacker host is
``203.0.113.129`` (the paper obfuscates it as ``XXX.129``).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.language import ast, parse_query

CLIENT_AGENT = "client-01"
DB_AGENT = "db-server"
ATTACKER_IP = "203.0.113.129"


def rule_c1_initial_compromise() -> str:
    """Rule query for step c1: a suspicious attachment written then opened."""
    return f'''
// c1: Outlook stores a crafted spreadsheet which Excel then opens
agentid = "{CLIENT_AGENT}"
proc p1["%outlook.exe"] write file f1["%invoice%"] as evt1
proc p2["%excel.exe"] read file f1 as evt2
with evt1 -> evt2
return distinct p1, f1, p2
'''


def rule_c2_malware_infection() -> str:
    """Rule query for step c2: the macro drops and starts a backdoor."""
    return f'''
// c2: Excel spawns a shell, the script host downloads and runs a backdoor
agentid = "{CLIENT_AGENT}"
proc p1["%excel.exe"] start proc p2["%cmd.exe"] as evt1
proc p2 start proc p3["%wscript.exe"] as evt2
proc p3 write file f1["%backdoor.exe"] as evt3
proc p3 start proc p4["%backdoor.exe"] as evt4
with evt1 -> evt2 -> evt3 -> evt4
return distinct p1, p2, p3, f1, p4
'''


def rule_c3_privilege_escalation() -> str:
    """Rule query for step c3: the credential-dumping tool is run."""
    return f'''
// c3: the backdoor runs gsecdump to steal database credentials
agentid = "{CLIENT_AGENT}"
proc p1["%backdoor.exe"] start proc p2["%gsecdump.exe"] as evt1
proc p2 read file f1["%SAM%"] as evt2
proc p2 write file f2["%creds%"] as evt3
with evt1 -> evt2 -> evt3
return distinct p1, p2, f1, f2
'''


def rule_c4_penetration() -> str:
    """Rule query for step c4: a VBScript drops a backdoor on the DB server."""
    return f'''
// c4: cscript drops sbblv.exe on the database server and starts it
agentid = "{DB_AGENT}"
proc p1["%cmd.exe"] start proc p2["%cscript.exe"] as evt1
proc p2 write file f1["%sbblv.exe"] as evt2
proc p2 start proc p3["%sbblv.exe"] as evt3
with evt1 -> evt2 -> evt3
return distinct p1, p2, f1, p3
'''


def rule_c5_data_exfiltration(agent: str = DB_AGENT) -> str:
    """Rule query for step c5 (Query 1 of the paper): the database dump.

    ``agent`` re-pins the query to another host, which the scaling
    benchmarks use to spread per-host copies of the workload across shards.
    """
    return f'''
// c5: the database is dumped via osql and shipped to the attacker's host
agentid = "{agent}"
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
proc p4["%sbblv.exe"] read file f1 as evt3
proc p4 read || write ip i1[dstip="{ATTACKER_IP}"] as evt4
with evt1 -> evt2 -> evt3 -> evt4
return distinct p1, p2, p3, f1, p4, i1
'''


def invariant_excel_children(training_windows: int = 3,
                             window_minutes: int = 5) -> str:
    """Invariant query: Excel starts a process it has never started before.

    The invariant is the set of child executables Excel spawned during the
    first ``training_windows`` sliding windows; later additions (the
    malicious shell of step c2) are reported.
    """
    return f'''
// advanced #1: learn the set of processes Excel normally starts
agentid = "{CLIENT_AGENT}"
proc p1["%excel.exe"] start proc p2 as evt #time({window_minutes} min)
state ss {{
  set_proc := set(p2.exe_name)
}} group by p1
invariant[{training_windows}][offline] {{
  a := empty_set
  a = a union ss.set_proc
}}
alert |ss.set_proc diff a| > 0
return p1, ss.set_proc
'''


def timeseries_network_spike(window_minutes: int = 10,
                             floor_bytes: float = 500000,
                             agent: str = DB_AGENT) -> str:
    """Time-series (SMA) query: abnormally high per-process network volume.

    Query 2 of the paper: compare each process's average outbound transfer
    size in the current window against the simple moving average of the
    last three windows, with an absolute floor to ignore small talkers.
    """
    floor_text = (str(int(floor_bytes)) if float(floor_bytes).is_integer()
                  else str(floor_bytes))
    return f'''
// advanced #2: SMA spike detection on the database server's network volume
agentid = "{agent}"
proc p write ip i as evt #time({window_minutes} min)
state[3] ss {{
  avg_amount := avg(evt.amount)
}} group by p
alert (ss[0].avg_amount > (ss[0].avg_amount + ss[1].avg_amount + ss[2].avg_amount) / 3) && (ss[0].avg_amount > {floor_text})
return p, ss[0].avg_amount, ss[1].avg_amount, ss[2].avg_amount
'''


def outlier_exfiltration(window_minutes: int = 10, eps: float = 500000,
                         min_pts: int = 3,
                         floor_bytes: float = 5000000,
                         agent: str = DB_AGENT) -> str:
    """Outlier query (Query 4 of the paper): per-destination volume outlier.

    Per sliding window, the total bytes moved to each destination IP on the
    database server form the comparison points; DBSCAN labels destinations
    far from the dense cluster of normal client traffic as outliers.  The
    paper's Query 4 pins the subject to ``sqlservr.exe``; here the subject
    is left open because in the reproduced scenario the dropped malware
    (``sbblv.exe``) performs the transfer — the peer-comparison model is
    unchanged.
    """
    eps_text = str(int(eps)) if float(eps).is_integer() else str(eps)
    floor_text = (str(int(floor_bytes)) if float(floor_bytes).is_integer()
                  else str(floor_bytes))
    return f'''
// advanced #3: DBSCAN peer comparison of per-destination network volume
agentid = "{agent}"
proc p read || write ip i as evt #time({window_minutes} min)
state ss {{
  amt := sum(evt.amount)
}} group by i.dstip
cluster(points=all(ss.amt), distance="ed", method="DBSCAN({eps_text}, {min_pts})")
alert cluster.outlier && ss.amt > {floor_text}
return i.dstip, ss.amt
'''


#: The five rule-based query names, in attack-step order.
RULE_QUERY_NAMES: List[str] = [
    "rule-c1-initial-compromise",
    "rule-c2-malware-infection",
    "rule-c3-privilege-escalation",
    "rule-c4-penetration",
    "rule-c5-data-exfiltration",
]

#: The three advanced anomaly query names.
ADVANCED_QUERY_NAMES: List[str] = [
    "invariant-excel-children",
    "timeseries-network-spike",
    "outlier-exfiltration",
]

#: All 8 demo queries: name -> SAQL text.
DEMO_QUERIES: Dict[str, str] = {
    "rule-c1-initial-compromise": rule_c1_initial_compromise(),
    "rule-c2-malware-infection": rule_c2_malware_infection(),
    "rule-c3-privilege-escalation": rule_c3_privilege_escalation(),
    "rule-c4-penetration": rule_c4_penetration(),
    "rule-c5-data-exfiltration": rule_c5_data_exfiltration(),
    "invariant-excel-children": invariant_excel_children(),
    "timeseries-network-spike": timeseries_network_spike(),
    "outlier-exfiltration": outlier_exfiltration(),
}


def demo_query_names() -> List[str]:
    """Return the names of all 8 demo queries, rule queries first."""
    return RULE_QUERY_NAMES + ADVANCED_QUERY_NAMES


def demo_query(name: str) -> ast.Query:
    """Parse one demo query by name into a checked query AST."""
    text = DEMO_QUERIES.get(name)
    if text is None:
        raise KeyError(f"unknown demo query {name!r}; "
                       f"known: {', '.join(demo_query_names())}")
    query = parse_query(text)
    query.name = name
    return query
