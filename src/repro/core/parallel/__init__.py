"""Sharded multi-core execution for the concurrent query scheduler.

This package opens the multi-core scaling axis the single-process design
caps: the enterprise stream is partitioned by ``agentid`` and one full
:class:`~repro.core.scheduler.concurrent.ConcurrentQueryScheduler` runs per
shard, with per-shard alerts merged back into one deterministically-ordered
stream and per-shard statistics merged into one aggregate.

**The shardability rule.**  Partitioning by host is only correct for
queries whose unit of state is host-local — every set of events that must
be observed together to produce one alert comes from a single host.  The
static analysis in :mod:`repro.core.parallel.shardability` proves this from
the query AST: a query qualifies when it is pinned to one host by an
``agentid =`` global constraint, when every ``group by`` key is host-local
(the ``host``/``entity_id`` attributes of process and file entities embed
the originating host; bare event aliases and ``agentid`` attributes are
host-local by construction),
or — for rule queries — when shared host-scoped entity variables connect
all of its patterns, forcing each matched sequence onto one host.  Queries
whose state is not host-local (cluster peer comparison, group-by over
network-entity attributes, cross-host ``return distinct``, stateful queries
without ``group by``, count windows — whose boundaries follow the
engine-global match ordinal) automatically fall back to a single-shard
lane that observes the full stream, so sharded execution never changes
any query's alerts.

See :class:`ShardedScheduler` for the runtime and its serial / thread /
process backends.
"""

from repro.core.parallel.shardability import (
    ShardabilityReport,
    analyze_shardability,
    analyze_steal_safety,
)
from repro.core.parallel.sharded import (
    DEFAULT_BATCH_SIZE,
    MigrationRecord,
    ProcessShard,
    SerialShard,
    ShardedScheduler,
    ThreadShard,
    merge_stats,
    shard_index,
)
from repro.core.parallel.stealing import (
    DEFAULT_REBALANCE_RATIO,
    StealDecision,
    StealEligibility,
    WorkStealingBalancer,
    steal_eligibility,
)
from repro.core.parallel.supervision import (
    BackoffPolicy,
    RecoveryRecord,
    ShardFailure,
    SupervisionPolicy,
)

__all__ = [
    "BackoffPolicy",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_REBALANCE_RATIO",
    "MigrationRecord",
    "ProcessShard",
    "RecoveryRecord",
    "SerialShard",
    "ShardFailure",
    "ShardabilityReport",
    "ShardedScheduler",
    "StealDecision",
    "StealEligibility",
    "SupervisionPolicy",
    "ThreadShard",
    "WorkStealingBalancer",
    "analyze_shardability",
    "analyze_steal_safety",
    "merge_stats",
    "shard_index",
    "steal_eligibility",
]
