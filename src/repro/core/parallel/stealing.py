"""Mid-stream shard rebalancing: the work-stealing balancer.

The static ``shard_map="auto"`` assignment fixes skew that is visible in
the observed stream prefix, but load that shifts *mid-stream* — a burst
host, an attack scenario ramping up on one agent — still serializes on
whatever shard the prefix assigned it to.  This module holds the policy
half of the fix: at each rebalance epoch the sharded runtime collects one
:class:`~repro.core.scheduler.concurrent.ShardLoadReport` per shard and
asks :class:`WorkStealingBalancer` which agentids to migrate.  The
balancer compares the shards' epoch loads, and when the hottest shard
exceeds the configured ratio of the mean it proposes moving the hottest
*stealable* agentids from the most- to the least-loaded shard, heaviest
first, while each move still narrows the gap.

The mechanics — window-aligned cut times, handoff buffers, and the
drain-and-handoff confirmation protocol — live with the router in
:mod:`repro.core.parallel.sharded`; whether any migration is legal at all
is decided statically per query by
:func:`repro.core.parallel.shardability.analyze_steal_safety`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Sequence

from repro.core.parallel.shardability import ShardabilityReport

#: Default imbalance trigger: rebalance once the hottest shard's epoch
#: load exceeds this multiple of the mean shard load.
DEFAULT_REBALANCE_RATIO = 1.25

#: Epoch loads below this many events are ignored entirely — tiny epochs
#: are routing noise, not a load signal worth migrating for.
DEFAULT_MIN_EPOCH_EVENTS = 64


@dataclass(frozen=True)
class StealDecision:
    """One planned migration: move ``agentid`` from ``source`` to ``target``.

    ``observed_events`` is the victim's event count in the epoch that
    motivated the steal (the balancer's estimate of the load being moved).
    """

    agentid: str
    source: int
    target: int
    observed_events: int


@dataclass(frozen=True)
class StealEligibility:
    """Whether (and how) a registered query set permits work stealing.

    Stealing moves an agentid's events between shards, and every unpinned
    sharded query observes every agentid — so a single hard-vetoed
    unpinned query (count windows, invariants, clustering) disables
    stealing for the whole sharded lane.  Pinned queries never veto (they
    live only on their pin's shard and filter other hosts); their pinned
    agentids are simply never chosen as victims.  Single-shard-lane
    queries observe the full stream regardless of routing and are never
    affected.

    ``mode`` selects the lane's migration protocol: ``"aligned"`` (every
    unpinned query tolerates a window-aligned cut with drain-and-wait —
    nothing is copied) or ``"transfer"`` (at least one query keeps
    per-host state that spans every cut — sliding windows, state
    histories, partial sequences, ``distinct`` — so the donor exports the
    victim's state slice and the thief imports it before the held events
    flow).

    ``alignment`` is the aligned-mode cut granularity in seconds:
    migrations cut at a common multiple of every aligned query's window
    hop, so no window spans the cut.  ``None`` alignment means any cut
    time works (stateless queries, or transfer mode — where the exported
    slice carries whatever spans the cut).
    """

    eligible: bool
    reason: str
    alignment: Optional[int] = None
    mode: str = "aligned"

    def cut_after(self, watermark: float) -> float:
        """Return the earliest safe cut time strictly aligned past ``watermark``.

        With an alignment the cut is the next multiple strictly greater
        than the watermark, so every already-routed event (all of which
        carry timestamps at or below the watermark) stays below the cut.
        Without one (stateless queries only) the watermark itself is safe:
        same-timestamp ties may split across the cut, but stateless
        queries alert per event, so the merged alert stream is unchanged.
        """
        if self.alignment is None:
            return watermark
        return (math.floor(watermark / self.alignment) + 1) * self.alignment


def steal_eligibility(
        reports: Mapping[str, ShardabilityReport]) -> StealEligibility:
    """Combine per-query shardability reports into a lane-wide verdict."""
    unpinned = {name: report for name, report in reports.items()
                if report.shardable and report.pinned_agentid is None}
    if not unpinned:
        return StealEligibility(
            eligible=False,
            reason="no unpinned sharded queries: every shard's query set "
                   "is host-pinned, so migrating an agentid would route "
                   "its events to shards with nothing to run")
    for name, report in unpinned.items():
        if not report.steal_safe:
            return StealEligibility(
                eligible=False,
                reason=f"query {name!r} is not steal-safe: "
                       f"{report.steal_reason}")
    if any(report.steal_mode == "transfer"
           for report in unpinned.values()):
        # One transfer-mode query switches the whole lane to the
        # state-transfer protocol: the donor's export covers *every*
        # engine's victim slice, so the aligned queries' cut alignment
        # becomes unnecessary.
        return StealEligibility(
            eligible=True,
            reason="every unpinned sharded query is steal-safe; at least "
                   "one keeps cut-spanning state, so migrations use the "
                   "state-transfer protocol",
            alignment=None,
            mode="transfer")
    alignments = [report.steal_alignment for report in unpinned.values()
                  if report.steal_alignment is not None]
    alignment = math.lcm(*alignments) if alignments else None
    return StealEligibility(
        eligible=True,
        reason="every unpinned sharded query is steal-safe",
        alignment=alignment,
        mode="aligned")


class WorkStealingBalancer:
    """Plans migrations from per-shard epoch load reports.

    Pure policy, no runtime state beyond configuration: given the epoch's
    per-shard ``agentid -> event count`` loads it returns the migrations
    to start (possibly none).  One donor/thief pair per epoch — the most-
    and least-loaded shards — keeps decisions conservative; sustained skew
    across several hosts resolves over successive epochs.
    """

    def __init__(self, ratio: float = DEFAULT_REBALANCE_RATIO,
                 min_epoch_events: int = DEFAULT_MIN_EPOCH_EVENTS):
        if ratio < 1.0:
            raise ValueError("rebalance ratio must be at least 1.0")
        if min_epoch_events < 0:
            raise ValueError("minimum epoch events must be non-negative")
        self.ratio = ratio
        self.min_epoch_events = min_epoch_events

    def plan(self, loads: Sequence[Mapping[str, int]],
             stealable: Optional[Callable[[str], bool]] = None
             ) -> List[StealDecision]:
        """Return the migrations for one epoch.

        ``loads[i]`` maps agentid -> events shard ``i`` ingested this
        epoch.  ``stealable`` filters candidate victims (the sharded
        runtime excludes pin-satisfying agentids and agentids already
        migrating).  Moves are planned hottest-victim-first and only while
        moving the victim still narrows the donor/thief gap, so a single
        dominant host — which cannot be split below host granularity —
        never ping-pongs between shards.
        """
        if len(loads) < 2:
            return []
        totals = [sum(load.values()) for load in loads]
        total = sum(totals)
        if total < self.min_epoch_events:
            return []
        mean = total / len(loads)
        source = max(range(len(loads)), key=lambda i: (totals[i], -i))
        target = min(range(len(loads)), key=lambda i: (totals[i], i))
        if source == target or totals[source] <= self.ratio * mean:
            return []
        decisions: List[StealDecision] = []
        donor_load = totals[source]
        thief_load = totals[target]
        # Hottest first; names break ties so plans are reproducible.
        candidates = sorted(loads[source].items(),
                            key=lambda item: (-item[1], item[0]))
        for agentid, weight in candidates:
            if weight <= 0:
                break
            if stealable is not None and not stealable(agentid):
                continue
            # Moving the victim must strictly narrow the gap: a victim
            # heavier than half the gap would overshoot and invite the
            # reverse steal next epoch.
            if 2 * weight >= donor_load - thief_load:
                continue
            decisions.append(StealDecision(
                agentid=agentid, source=source, target=target,
                observed_events=weight))
            donor_load -= weight
            thief_load += weight
            if donor_load <= self.ratio * mean:
                break
        return decisions
